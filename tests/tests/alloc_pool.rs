//! Property tests for the pooled tensor workspace: recycling value,
//! gradient, and index buffers through the training hot path is pure
//! mechanics — with the pool on or off (`--no-pool`), at any thread
//! width, every per-epoch loss and every final parameter must match bit
//! for bit. Aggregators are exercised individually because each routes
//! through different pooled kernels (fused mean, segment max over a
//! learned transform, bucketed LSTM unrolling).

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::AggregatorSpec;
use proptest::prelude::*;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.12)
        .with_feature_dim(16)
        .generate(5)
}

fn config(aggregator: AggregatorSpec, pool: bool) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator,
        dropout: 0.3,
        capacity_bytes: gib(8),
        pool,
        ..ExperimentConfig::default()
    }
}

/// Two epochs of training (the second runs against a warm pool) →
/// per-epoch loss bits plus the final parameter bits.
fn trajectory(
    ds: &Dataset,
    aggregator: AggregatorSpec,
    pool: bool,
    k: usize,
    seed: u64,
    threads: usize,
) -> (Vec<u64>, Vec<u32>) {
    betty_runtime::set_thread_override(Some(threads));
    let mut runner = Runner::new(ds, &config(aggregator, pool), seed);
    let losses: Vec<u64> = (0..2)
        .map(|_| {
            runner
                .train_epoch_betty(ds, StrategyKind::Betty, k)
                .expect("capacity is ample")
                .loss
                .to_bits()
        })
        .collect();
    betty_runtime::set_thread_override(None);
    let params: Vec<u32> = runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect();
    (losses, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pooling_never_moves_a_bit(
        agg_idx in 0usize..3,
        k_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let aggregator = [
            AggregatorSpec::Mean,
            AggregatorSpec::Pool,
            AggregatorSpec::Lstm,
        ][agg_idx];
        let k = [1usize, 2, 4][k_idx];
        let ds = dataset();
        let reference = trajectory(&ds, aggregator, true, k, seed, 1);
        for pool in [true, false] {
            for threads in [1usize, 4] {
                let run = trajectory(&ds, aggregator, pool, k, seed, threads);
                prop_assert_eq!(
                    &reference.0, &run.0,
                    "losses diverged: {:?} pool={} threads={} k={}",
                    aggregator.name(), pool, threads, k
                );
                prop_assert_eq!(
                    &reference.1, &run.1,
                    "params diverged: {:?} pool={} threads={} k={}",
                    aggregator.name(), pool, threads, k
                );
            }
        }
    }
}

/// Deterministic sweep of every aggregator × micro-batch count the
/// proptest samples from, so CI covers each combination at least once.
#[test]
fn pool_toggle_matrix_is_bit_identical() {
    let ds = dataset();
    for aggregator in [
        AggregatorSpec::Mean,
        AggregatorSpec::Pool,
        AggregatorSpec::Lstm,
    ] {
        for k in [1usize, 2, 4] {
            let pooled = trajectory(&ds, aggregator, true, k, 7, 1);
            let plain = trajectory(&ds, aggregator, false, k, 7, 4);
            assert_eq!(
                pooled, plain,
                "{} k={k}: pooled serial run diverged from unpooled 4-thread run",
                aggregator.name()
            );
        }
    }
}

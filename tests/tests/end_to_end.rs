//! End-to-end training: Betty micro-batch training reaches the same
//! accuracy and follows the same convergence curve as full-batch training
//! (the basis of Fig. 13 and Table 5).

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::AggregatorSpec;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.15)
        .with_feature_dim(24)
        .generate(3)
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![5, 10],
        hidden_dim: 24,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        learning_rate: 5e-3,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

fn train_and_eval(k: usize, epochs: usize) -> (Vec<f64>, f64) {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 42);
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let stats = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, k)
            .expect("capacity is ample");
        losses.push(stats.loss);
    }
    let acc = runner.evaluate(&ds, &ds.test_idx);
    (losses, acc)
}

#[test]
fn betty_training_learns_the_task() {
    let (losses, acc) = train_and_eval(4, 25);
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.5),
        "loss barely moved: {losses:?}"
    );
    // Planted communities with separable features: well above chance
    // (1/7 ≈ 0.14) after a short run.
    assert!(acc > 0.5, "test accuracy {acc}");
}

#[test]
fn micro_batch_counts_converge_alike() {
    // Fig. 13's claim: the convergence curve is independent of K.
    let (full, acc_full) = train_and_eval(1, 15);
    let (micro4, acc_4) = train_and_eval(4, 15);
    let (micro8, acc_8) = train_and_eval(8, 15);
    // Identical seeds → near-identical loss trajectories (sampling and
    // init are shared; only the partition differs, and gradients are
    // equivalent up to float association).
    for (epoch, ((a, b), c)) in full.iter().zip(&micro4).zip(&micro8).enumerate() {
        assert!(
            (a - b).abs() < 0.05 * a.abs().max(0.1) && (a - c).abs() < 0.05 * a.abs().max(0.1),
            "epoch {epoch}: losses diverged: full {a}, k4 {b}, k8 {c}"
        );
    }
    let spread = (acc_full - acc_4).abs().max((acc_full - acc_8).abs());
    assert!(spread < 0.08, "accuracy spread {spread}");
}

#[test]
fn all_strategies_reach_similar_accuracy() {
    // Table 5's implicit claim: the partitioner affects memory/time, not
    // learning outcome.
    let ds = dataset();
    let mut accs = Vec::new();
    for strategy in StrategyKind::ALL {
        let mut runner = Runner::new(&ds, &config(), 42);
        for _ in 0..12 {
            runner.train_epoch_betty(&ds, strategy, 4).unwrap();
        }
        accs.push(runner.evaluate(&ds, &ds.test_idx));
    }
    let max = accs.iter().cloned().fold(0.0f64, f64::max);
    let min = accs.iter().cloned().fold(1.0f64, f64::min);
    assert!(min > 0.4, "worst strategy accuracy {min} ({accs:?})");
    assert!(max - min < 0.15, "accuracy spread too wide: {accs:?}");
}

#[test]
fn gcn_model_trains_with_betty() {
    use betty::ModelKind;
    let ds = dataset();
    let cfg = ExperimentConfig {
        model: ModelKind::Gcn,
        ..config()
    };
    let mut runner = Runner::new(&ds, &cfg, 42);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..12 {
        let stats = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 4)
            .unwrap();
        first.get_or_insert(stats.loss);
        last = stats.loss;
    }
    assert!(last < first.unwrap() * 0.7, "GCN loss barely moved");
    let acc = runner.evaluate(&ds, &ds.test_idx);
    assert!(acc > 0.4, "GCN accuracy {acc}");
}

#[test]
fn cached_partitioning_trains_like_fresh() {
    let ds = dataset();
    let mut fresh = Runner::new(&ds, &config(), 42);
    let mut cached = Runner::new(&ds, &config(), 42);
    let mut fresh_losses = Vec::new();
    let mut cached_losses = Vec::new();
    let mut paid = 0usize;
    for _ in 0..6 {
        fresh_losses.push(
            fresh
                .train_epoch_betty(&ds, StrategyKind::Betty, 4)
                .unwrap()
                .loss,
        );
        let (stats, was_fresh) = cached
            .train_epoch_betty_cached(&ds, StrategyKind::Betty, 4, 5)
            .unwrap();
        cached_losses.push(stats.loss);
        paid += was_fresh as usize;
    }
    // Partitioning paid for only on refresh epochs: epoch 0 and epoch 5.
    assert_eq!(paid, 2);
    // Same sampling stream, same gradients (partition identity is
    // irrelevant to accumulated gradients) → identical losses.
    for (a, b) in fresh_losses.iter().zip(&cached_losses) {
        assert!((a - b).abs() < 1e-6, "fresh {a} vs cached {b}");
    }
}

#[test]
fn cached_partitioning_invalidates_on_config_change() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 1);
    let (_, first) = runner
        .train_epoch_betty_cached(&ds, StrategyKind::Betty, 4, 100)
        .unwrap();
    assert!(first);
    let (_, reused) = runner
        .train_epoch_betty_cached(&ds, StrategyKind::Betty, 4, 100)
        .unwrap();
    assert!(!reused);
    // Different K → fresh partitioning.
    let (_, changed_k) = runner
        .train_epoch_betty_cached(&ds, StrategyKind::Betty, 8, 100)
        .unwrap();
    assert!(changed_k);
    // Different strategy → fresh partitioning.
    let (_, changed_strategy) = runner
        .train_epoch_betty_cached(&ds, StrategyKind::Random, 8, 100)
        .unwrap();
    assert!(changed_strategy);
}

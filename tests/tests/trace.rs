//! The observability layer end to end: tracing must be invisible to the
//! training math, the JSONL export must be schema-valid, the estimator
//! drift report must certify admissible estimates for the fused
//! aggregators, and the memory timeline must be a consistent replay of the
//! device ledger.

use betty::{
    validate_jsonl, EpochStats, ExperimentConfig, Runner, SpanKind, StrategyKind, TraceRecorder,
};
use betty_data::{Dataset, DatasetSpec};
use betty_nn::AggregatorSpec;

const EPOCHS: usize = 3;
const K: usize = 4;

fn dataset() -> Dataset {
    DatasetSpec::ogbn_arxiv()
        .scaled(0.004)
        .with_feature_dim(16)
        .generate(8)
}

fn config(aggregator: AggregatorSpec) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![5, 10],
        hidden_dim: 16,
        aggregator,
        dropout: 0.0,
        ..ExperimentConfig::default()
    }
}

/// The deterministic subset of [`EpochStats`] — everything except
/// wall-clock timings, which can never be bit-identical across runs.
fn deterministic_fields(s: &EpochStats) -> (u64, usize, usize, usize, u64, usize) {
    (
        s.loss.to_bits(),
        s.num_steps,
        s.max_peak_bytes,
        s.estimated_peak_bytes,
        s.estimator_drift.to_bits(),
        s.host_bytes,
    )
}

fn traced_run(aggregator: AggregatorSpec) -> (Vec<EpochStats>, TraceRecorder) {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(aggregator), 0);
    runner.enable_tracing();
    let stats: Vec<EpochStats> = (0..EPOCHS)
        .map(|_| {
            runner
                .train_epoch_betty(&ds, StrategyKind::Betty, K)
                .expect("default capacity fits the test batch")
        })
        .collect();
    let trace = runner.take_trace().expect("tracing was enabled");
    (stats, trace)
}

#[test]
fn tracing_on_and_off_produce_identical_epoch_stats() {
    let ds = dataset();
    let mut plain = Runner::new(&ds, &config(AggregatorSpec::Mean), 0);
    let (traced_stats, trace) = traced_run(AggregatorSpec::Mean);
    for (epoch, traced) in traced_stats.iter().enumerate() {
        let untraced = plain
            .train_epoch_betty(&ds, StrategyKind::Betty, K)
            .expect("default capacity fits the test batch");
        assert_eq!(
            deterministic_fields(traced),
            deterministic_fields(&untraced),
            "epoch {epoch}: tracing changed the training outcome"
        );
    }
    assert!(!trace.is_empty());
}

#[test]
fn jsonl_export_is_valid_and_covers_every_event_type() {
    let (_, trace) = traced_run(AggregatorSpec::Mean);
    let jsonl = trace.to_jsonl();
    let lines = validate_jsonl(&jsonl)
        .unwrap_or_else(|(line, msg)| panic!("invalid JSONL at line {line}: {msg}"));
    assert_eq!(lines, jsonl.lines().count());
    for needle in [
        "\"type\":\"span\"",
        "\"type\":\"mem\"",
        "\"type\":\"peak\"",
        "\"type\":\"drift\"",
    ] {
        assert!(jsonl.contains(needle), "export is missing {needle} events");
    }
    // Every pipeline phase shows up, each once per epoch or once per step.
    for kind in SpanKind::ALL {
        let count = trace.spans().iter().filter(|s| s.kind == kind).count();
        match kind {
            SpanKind::Sample | SpanKind::Partition | SpanKind::Plan => {
                assert_eq!(count, EPOCHS, "{} spans", kind.name());
            }
            SpanKind::Transfer | SpanKind::Forward | SpanKind::Backward => {
                assert_eq!(count, trace.drift_records().len(), "{} spans", kind.name());
            }
            // Single-device epochs never all-reduce, fail over, or
            // retry a sync link — this run plans synchronously
            // (`plan_ahead: 0`), and with no storage faults armed
            // nothing is ever repaired from parity.
            SpanKind::Allreduce
            | SpanKind::Failover
            | SpanKind::LinkRetry
            | SpanKind::PlanAhead
            | SpanKind::StorageRepair => {
                assert_eq!(count, 0, "{} spans", kind.name());
            }
        }
    }
}

#[test]
fn pipelined_partition_work_overlaps_training_spans() {
    // Partition-ahead in action: epoch e's staging window (the
    // `plan_ahead` span, from sampling start to bundle consumption)
    // must contain epoch e−1's forward/backward spans — the partition
    // work literally ran while the previous epoch trained. And the
    // losses must still match the synchronous run bit for bit.
    betty_runtime::set_thread_override(Some(4));
    let ds = dataset();
    let pipelined_cfg = ExperimentConfig {
        plan_ahead: 2,
        ..config(AggregatorSpec::Mean)
    };
    let mut runner = Runner::new(&ds, &pipelined_cfg, 0);
    runner.enable_tracing();
    let losses: Vec<u64> = (0..EPOCHS)
        .map(|_| {
            runner
                .train_epoch_betty(&ds, StrategyKind::Betty, K)
                .expect("default capacity fits the test batch")
                .loss
                .to_bits()
        })
        .collect();
    assert!(runner.plan_ahead_active(), "pipeline must be live at depth 2");
    let trace = runner.take_trace().expect("tracing was enabled");
    betty_runtime::set_thread_override(None);

    let spans = trace.spans();
    let staging: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::PlanAhead)
        .collect();
    // Epoch 0 spawns the pipeline and consumes its first bundle without
    // overlap; epochs 1.. consume bundles staged during the previous
    // epoch.
    assert_eq!(staging.len(), EPOCHS, "one staging window per epoch");
    for window in staging.iter().filter(|s| s.epoch > 0) {
        let trained_before: Vec<_> = spans
            .iter()
            .filter(|s| {
                s.epoch == window.epoch - 1
                    && matches!(s.kind, SpanKind::Forward | SpanKind::Backward)
            })
            .collect();
        assert!(!trained_before.is_empty(), "epoch {} trained", window.epoch - 1);
        for span in trained_before {
            assert!(
                window.start_sec <= span.start_sec
                    && span.start_sec + span.dur_sec
                        <= window.start_sec + window.dur_sec,
                "epoch {}'s staging window [{:.6}, {:.6}] must contain epoch {}'s \
                 {} span [{:.6}, {:.6}]",
                window.epoch,
                window.start_sec,
                window.start_sec + window.dur_sec,
                span.epoch,
                span.kind.name(),
                span.start_sec,
                span.start_sec + span.dur_sec,
            );
        }
    }

    // The staged run's losses are bit-identical to the synchronous one.
    let mut sync = Runner::new(&ds, &config(AggregatorSpec::Mean), 0);
    let sync_losses: Vec<u64> = (0..EPOCHS)
        .map(|_| {
            sync.train_epoch_betty(&ds, StrategyKind::Betty, K)
                .expect("default capacity fits the test batch")
                .loss
                .to_bits()
        })
        .collect();
    assert_eq!(losses, sync_losses, "pipelining changed the math");
}

#[test]
fn drift_report_certifies_admissible_estimates_for_fused_aggregators() {
    for aggregator in [AggregatorSpec::Mean, AggregatorSpec::Sum] {
        let (stats, trace) = traced_run(aggregator);
        assert!(!trace.drift_records().is_empty());
        assert!(
            trace.all_admissible(),
            "{aggregator:?}: worst drift {:.4}",
            trace.max_drift_ratio()
        );
        for (epoch, s) in stats.iter().enumerate() {
            assert!(
                s.estimated_peak_bytes >= s.max_peak_bytes,
                "{aggregator:?} epoch {epoch}: estimated {} < measured {}",
                s.estimated_peak_bytes,
                s.max_peak_bytes
            );
            assert!(s.estimator_drift > 0.0 && s.estimator_drift <= 1.0);
        }
    }
}

#[test]
fn memory_timeline_replays_the_ledger_consistently() {
    let (_, trace) = traced_run(AggregatorSpec::Mean);
    let events = trace.mem_events();
    assert!(!events.is_empty());
    // Sequence numbers are strictly increasing and each event's running
    // total is the previous total plus its delta — the timeline is a
    // gap-free replay of every ledger mutation.
    let mut prev_seq = None;
    let mut prev_total = 0i64;
    for (_, e) in events {
        if let Some(p) = prev_seq {
            assert!(e.seq > p, "seq went backwards: {} after {p}", e.seq);
        }
        assert_eq!(
            prev_total + e.delta_bytes,
            e.total_bytes as i64,
            "running total diverged at seq {}",
            e.seq
        );
        prev_seq = Some(e.seq);
        prev_total = e.total_bytes as i64;
    }
    // The per-step maximum of the timeline's running total is exactly the
    // step peak the recorder captured (with its at-peak category snapshot
    // summing to the same number).
    for peak in trace.peaks() {
        let step = peak.step;
        let step_max = events
            .iter()
            .filter(|(s, _)| *s == step)
            .map(|(_, e)| e.total_bytes)
            .max()
            .expect("peaked step has timeline events");
        assert_eq!(step_max, peak.peak_bytes, "step {step}");
        let breakdown_sum: usize = peak.breakdown.iter().map(|(_, b)| b).sum();
        assert_eq!(breakdown_sum, peak.peak_bytes, "step {step} breakdown");
    }
}

//! Property tests for the out-of-core paged feature store: training over
//! disk-resident feature shards must be bit-identical to the dense
//! in-memory backend — same losses, same final parameter bits, same
//! deterministic epoch stats — at any thread count, under any cache
//! budget, through OOM recovery, and across an export/import resume.
//! The only sanctioned differences are the paging counters (the dense
//! backend never misses) and the memory accounting, which must shift by
//! *exactly* the cache reservation, on both the measured and the
//! estimated side of the ledger.

use betty::{EpochStats, ExperimentConfig, RecoveryLog, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::{gib, FaultPlan};
use betty_nn::AggregatorSpec;
use proptest::prelude::*;

/// Tests that mutate the process-global thread override serialize on
/// this lock (same discipline as `parallel_determinism.rs`).
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.12)
        .with_feature_dim(16)
        .generate(5)
}

fn config(fault_plan: Option<FaultPlan>) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.3,
        capacity_bytes: gib(8),
        fault_plan,
        ..ExperimentConfig::default()
    }
}

/// The value-determined subset of [`EpochStats`]: everything except
/// wall-clock timings, the paging counters (defined to differ between
/// backends), and the memory accounting (compared separately, exactly).
fn value_stats(stats: &EpochStats) -> Vec<u64> {
    vec![
        stats.loss.to_bits(),
        stats.num_steps as u64,
        stats.total_input_nodes as u64,
        stats.total_src_nodes as u64,
        stats.host_bytes as u64,
        stats.oom_retries as u64,
        stats.anomaly_rollbacks as u64,
        stats.injected_faults as u64,
    ]
}

/// Final parameter bits, for trajectory-equality comparisons.
fn param_bits(runner: &Runner) -> Vec<u32> {
    runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect()
}

/// One full trajectory over `ds`: three recovering epochs, a mid-run
/// session export, one more epoch, then an import into a *fresh* runner
/// that must replay that last epoch bit-for-bit (the resume path paged
/// training has to survive). Returns the per-epoch value stats, the
/// per-epoch (measured peak, estimated peak) pairs, the validation
/// accuracy bits, the final parameter bits, and the summed paging
/// counters (hits, misses, pages in).
#[allow(clippy::type_complexity)]
fn trajectory(
    ds: &Dataset,
    cfg: &ExperimentConfig,
    seed: u64,
    threads: usize,
) -> (
    Vec<Vec<u64>>,
    Vec<(usize, usize)>,
    u64,
    Vec<u32>,
    (u64, u64, u64),
) {
    betty_runtime::set_thread_override(Some(threads));
    let mut runner = Runner::new(ds, cfg, seed);
    let mut log = RecoveryLog::new();
    let mut epochs = Vec::new();
    let mut peaks = Vec::new();
    let mut counters = (0u64, 0u64, 0u64);
    let train = |runner: &mut Runner, log: &mut RecoveryLog| {
        let (stats, _k) = runner
            .train_epoch_auto_recovering(ds, StrategyKind::Betty, log)
            .expect("retry budget covers the single injected OOM");
        stats
    };
    for _ in 0..3 {
        let stats = train(&mut runner, &mut log);
        epochs.push(value_stats(&stats));
        peaks.push((stats.max_peak_bytes, stats.estimated_peak_bytes));
        counters.0 += stats.feature_hits;
        counters.1 += stats.feature_misses;
        counters.2 += stats.feature_pages_in;
    }
    let saved = runner.export_session();
    let live = train(&mut runner, &mut log);
    epochs.push(value_stats(&live));
    peaks.push((live.max_peak_bytes, live.estimated_peak_bytes));
    // Resume: a fresh runner over the same (possibly paged) dataset must
    // replay the post-checkpoint epoch bit-identically.
    let mut resumed = Runner::new(ds, cfg, seed);
    resumed
        .import_session(&saved)
        .expect("same config and dataset shape");
    let replay = train(&mut resumed, &mut log);
    assert_eq!(
        value_stats(&replay),
        *epochs.last().unwrap(),
        "the resumed epoch diverged from the uninterrupted run"
    );
    let accuracy = runner.evaluate(ds, &ds.val_idx).to_bits();
    let params = param_bits(&runner);
    betty_runtime::set_thread_override(None);
    (epochs, peaks, accuracy, params, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Paged ≡ dense across cache budgets {starved, unbounded} × threads
    /// {1, 4}, with and without an injected mid-run OOM: identical value
    /// stats, accuracy, and parameter bits; measured and estimated peaks
    /// shifted by exactly the cache reservation.
    #[test]
    fn paged_training_reproduces_dense_bitwise(
        seed in 0u64..500,
        inject_oom in (0u8..2).prop_map(|b| b == 1),
    ) {
        let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ds = dataset();
        let total_bytes = ds.features.size_bytes();
        let fault_plan = inject_oom.then(|| FaultPlan {
            // Global step 1 lands mid-run: that epoch OOMs, rolls back,
            // and recovery escalates K. The paged store's extra cache
            // alloc must not shift the scheduled fault off its step.
            oom_steps: vec![1],
            ..FaultPlan::default()
        });
        let cfg = config(fault_plan);
        let reference = trajectory(&ds, &cfg, seed, 1);
        prop_assert_eq!(reference.4.1, 0, "the dense backend never misses");

        // 8 rows/shard keeps even the starved budget above one shard.
        let page_rows = 8usize;
        for (label, budget) in [("starved", total_bytes / 16), ("unbounded", usize::MAX)] {
            for threads in [1usize, 4] {
                // A fresh spill per run: a store left warm by the
                // previous run would (legitimately) stop paging, and the
                // exercised-the-machinery assertions below are about a
                // cold cache.
                let dir = std::env::temp_dir().join(format!(
                    "betty-fse-{}-{seed}-{}-{label}-{threads}",
                    std::process::id(),
                    inject_oom
                ));
                let mut paged_ds = ds.clone();
                paged_ds.features = paged_ds
                    .features
                    .to_paged(&dir, page_rows, budget)
                    .expect("spilling test features");
                let reserved = paged_ds.features.cache_reservation_bytes();
                prop_assert_eq!(reserved, budget.min(total_bytes));
                let paged = trajectory(&paged_ds, &cfg, seed, threads);
                prop_assert_eq!(
                    &reference.0, &paged.0,
                    "cache '{}' at {} threads changed the training math (oom: {})",
                    label, threads, inject_oom
                );
                prop_assert_eq!(reference.2, paged.2, "validation accuracy diverged");
                prop_assert_eq!(
                    &reference.3, &paged.3,
                    "final parameter bits diverged ('{}', {} threads)",
                    label, threads
                );
                for (epoch, (&(dm, de), &(pm, pe))) in
                    reference.1.iter().zip(&paged.1).enumerate()
                {
                    prop_assert_eq!(
                        pm, dm + reserved,
                        "epoch {} measured peak must shift by exactly the reservation",
                        epoch
                    );
                    prop_assert_eq!(
                        pe, de + reserved,
                        "epoch {} estimated peak must shift by exactly the reservation",
                        epoch
                    );
                }
                // The trajectory must actually exercise the paging
                // machinery, not degenerate into a dense run.
                prop_assert!(paged.4.2 > 0, "no shard was ever paged in");
                if label == "starved" {
                    // More page-ins than shards exist ⇒ shards were
                    // evicted and re-read: the LRU actually churned.
                    let shards = ds.features.rows().div_ceil(page_rows) as u64;
                    prop_assert!(
                        paged.4.2 > shards,
                        "a starved cache must evict and re-page ({} page-ins over {} shards)",
                        paged.4.2, shards
                    );
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

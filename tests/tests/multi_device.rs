//! Simulated multi-device training (paper §7 future work): scheduling and
//! equivalence guarantees, including elastic failover.

use betty::{lpt_assignment, DeviceGroup, ExperimentConfig, RecoveryLog, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::{gib, FaultPlan};
use betty_nn::AggregatorSpec;
use proptest::prelude::*;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.1)
        .with_feature_dim(16)
        .generate(6)
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

#[test]
fn every_micro_batch_is_assigned_and_loss_matches_single_device() {
    let ds = dataset();
    let k = 8;
    let mut single = Runner::new(&ds, &config(), 3);
    let single_stats = single
        .train_epoch_betty(&ds, StrategyKind::Betty, k)
        .unwrap();

    let mut multi = Runner::new(&ds, &config(), 3);
    let epoch = multi
        .train_epoch_multi_device(&ds, StrategyKind::Betty, k, &DeviceGroup::new(4))
        .unwrap();
    assert_eq!(epoch.assignment.len(), epoch.combined.num_steps);
    assert!(epoch.assignment.iter().all(|&d| d < 4));
    // Same seed, same plan, same math: identical epoch loss.
    assert!(
        (epoch.combined.loss - single_stats.loss).abs() < 1e-6,
        "multi {} vs single {}",
        epoch.combined.loss,
        single_stats.loss
    );
}

#[test]
fn model_parameters_identical_to_single_device_after_epoch() {
    // The all-reduce is simulated; the real accumulation is shared — so
    // trained parameters must agree bit-for-bit between runs.
    let ds = dataset();
    let run = |devices: usize| -> f64 {
        let mut runner = Runner::new(&ds, &config(), 9);
        for _ in 0..3 {
            runner
                .train_epoch_multi_device(
                    &ds,
                    StrategyKind::Betty,
                    6,
                    &DeviceGroup::new(devices),
                )
                .unwrap();
        }
        runner.evaluate(&ds, &ds.test_idx)
    };
    let acc1 = run(1);
    let acc4 = run(4);
    assert_eq!(acc1, acc4, "device count must not affect learning");
}

#[test]
fn wall_time_improves_with_devices() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 0);
    let one = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(1))
        .unwrap();
    let four = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(4))
        .unwrap();
    // Wall times are measured, hence noisy; require a clear improvement.
    assert!(
        four.wall_sec() < one.wall_sec(),
        "4 devices {} vs 1 device {}",
        four.wall_sec(),
        one.wall_sec()
    );
    assert!(four.speedup_vs_serial() > 1.0);
    assert!((one.speedup_vs_serial() - 1.0).abs() < 1e-9);
}

/// Parameter bits of a runner's model, for exact identity checks.
fn param_bits(runner: &Runner) -> Vec<u32> {
    runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect()
}

/// The headline elastic guarantee: killing devices mid-epoch changes
/// scheduling and timing attribution but never the numerics — losses
/// and post-epoch parameters are bit-identical with and without
/// injected device failures, at 1 and at 4 worker threads.
#[test]
fn failover_is_bit_identical_to_fault_free_run_across_thread_counts() {
    let ds = dataset();
    let faulty = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            seed: 11,
            device_fail_steps: vec![(1, 1), (3, 0)],
            straggler_factors: vec![(0, 2.0)],
            link_stall_rate: 0.5,
            link_stall_sec: 0.4,
            ..FaultPlan::default()
        }),
        ..config()
    };
    let run = |cfg: &ExperimentConfig, threads: usize| {
        betty_runtime::set_thread_override(Some(threads));
        let mut runner = Runner::new(&ds, cfg, 21);
        let mut log = RecoveryLog::new();
        let mut losses = Vec::new();
        for epoch in 0..2 {
            log.set_epoch(epoch);
            let multi = runner
                .train_epoch_elastic(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(4), &mut log)
                .unwrap();
            losses.push(multi.combined.loss.to_bits());
        }
        betty_runtime::set_thread_override(None);
        (losses, param_bits(&runner))
    };
    let (clean_losses, clean_params) = run(&config(), 1);
    for threads in [1usize, 4] {
        let (losses, params) = run(&faulty, threads);
        assert_eq!(
            losses, clean_losses,
            "losses must be bit-identical under failover at {threads} threads"
        );
        assert_eq!(
            params, clean_params,
            "parameters must be bit-identical under failover at {threads} threads"
        );
        let (losses, params) = run(&config(), threads);
        assert_eq!(losses, clean_losses, "thread count changed losses");
        assert_eq!(params, clean_params, "thread count changed parameters");
    }
}

#[test]
fn elastic_epoch_reports_failover_in_stats_and_log() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            seed: 5,
            device_fail_steps: vec![(1, 0)],
            ..FaultPlan::default()
        }),
        ..config()
    };
    let mut runner = Runner::new(&ds, &cfg, 21);
    let mut log = RecoveryLog::new();
    let multi = runner
        .train_epoch_elastic(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(4), &mut log)
        .unwrap();
    assert_eq!(multi.combined.devices_lost, 1);
    assert!(multi.combined.migrated_steps > 0, "device 1 died before any step");
    assert_eq!(multi.live_ranks, 3);
    assert_eq!(multi.health[1], betty::DeviceHealth::Failed);
    assert!(multi.assignment.iter().all(|&d| d != 1), "nothing ran on the dead device");
    assert_eq!(log.devices_lost(), 1);
    assert_eq!(log.work_migrations(), 1);
    assert_eq!(log.ring_rebuilds(), 1);
    assert!(multi.failover_overhead_sec() >= 0.0);
}

#[test]
fn elastic_epoch_without_faults_matches_multi_device_path() {
    let ds = dataset();
    let mut plain = Runner::new(&ds, &config(), 7);
    let a = plain
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 6, &DeviceGroup::new(3))
        .unwrap();
    let mut elastic = Runner::new(&ds, &config(), 7);
    let mut log = RecoveryLog::new();
    let b = elastic
        .train_epoch_elastic(&ds, StrategyKind::Betty, 6, &DeviceGroup::new(3), &mut log)
        .unwrap();
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.combined.loss.to_bits(), b.combined.loss.to_bits());
    assert_eq!(b.live_ranks, 3);
    // Straggler detection works off measured wall clocks, so a noisy
    // scheduler may flag one even without injected slowdowns; every
    // *deterministic* failover category must stay silent.
    assert_eq!(log.devices_lost(), 0);
    assert_eq!(log.work_migrations(), 0);
    assert_eq!(log.ring_rebuilds(), 0);
    assert_eq!(log.link_retries(), 0);
    assert_eq!(b.combined.injected_faults, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LPT scheduling properties: every job lands on a real device, and
    /// relabeling devices by any rotation leaves the sorted per-device
    /// load profile (and thus the combined work) unchanged.
    #[test]
    fn lpt_loads_are_invariant_under_device_relabeling(
        work in proptest::collection::vec(1.0f64..100.0, 1..24),
        devices in 1usize..6,
        rotate in 0usize..6,
    ) {
        let assignment = lpt_assignment(&work, devices);
        prop_assert_eq!(assignment.len(), work.len());
        prop_assert!(assignment.iter().all(|&d| d < devices));
        let loads = |assign: &[usize]| {
            let mut l = vec![0.0f64; devices];
            for (job, &d) in assign.iter().enumerate() {
                l[d] += work[job];
            }
            l.sort_by(f64::total_cmp);
            l
        };
        let base = loads(&assignment);
        // Relabel device d → (d + rotate) mod devices: a permutation of
        // the device identities must not change the load profile.
        let relabeled: Vec<usize> = assignment
            .iter()
            .map(|&d| (d + rotate) % devices)
            .collect();
        prop_assert_eq!(base, loads(&relabeled));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Combined epoch stats are a device-agnostic aggregate: identical
    /// bits whatever the group size or worker-thread count.
    #[test]
    fn combined_stats_invariant_under_devices_and_threads(
        devices in 2usize..5,
        threads in 1usize..5,
        k in 4usize..9,
    ) {
        let ds = dataset();
        let run = |devices: usize, threads: usize| {
            betty_runtime::set_thread_override(Some(threads));
            let mut runner = Runner::new(&ds, &config(), 13);
            let epoch = runner
                .train_epoch_multi_device(&ds, StrategyKind::Betty, k, &DeviceGroup::new(devices))
                .unwrap();
            betty_runtime::set_thread_override(None);
            epoch
        };
        let base = run(1, 1);
        let other = run(devices, threads);
        prop_assert_eq!(base.combined.loss.to_bits(), other.combined.loss.to_bits());
        prop_assert_eq!(base.combined.num_steps, other.combined.num_steps);
        prop_assert_eq!(base.combined.total_src_nodes, other.combined.total_src_nodes);
    }
}

#[test]
fn more_devices_than_micro_batches_is_fine() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 0);
    let epoch = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 2, &DeviceGroup::new(8))
        .unwrap();
    // Some devices idle; wall time is still the busiest device.
    assert!(epoch.wall_sec() > 0.0);
    assert_eq!(epoch.per_device.len(), 8);
}

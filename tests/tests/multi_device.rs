//! Simulated multi-device training (paper §7 future work): scheduling and
//! equivalence guarantees.

use betty::{DeviceGroup, ExperimentConfig, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::AggregatorSpec;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.1)
        .with_feature_dim(16)
        .generate(6)
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

#[test]
fn every_micro_batch_is_assigned_and_loss_matches_single_device() {
    let ds = dataset();
    let k = 8;
    let mut single = Runner::new(&ds, &config(), 3);
    let single_stats = single
        .train_epoch_betty(&ds, StrategyKind::Betty, k)
        .unwrap();

    let mut multi = Runner::new(&ds, &config(), 3);
    let epoch = multi
        .train_epoch_multi_device(&ds, StrategyKind::Betty, k, &DeviceGroup::new(4))
        .unwrap();
    assert_eq!(epoch.assignment.len(), epoch.combined.num_steps);
    assert!(epoch.assignment.iter().all(|&d| d < 4));
    // Same seed, same plan, same math: identical epoch loss.
    assert!(
        (epoch.combined.loss - single_stats.loss).abs() < 1e-6,
        "multi {} vs single {}",
        epoch.combined.loss,
        single_stats.loss
    );
}

#[test]
fn model_parameters_identical_to_single_device_after_epoch() {
    // The all-reduce is simulated; the real accumulation is shared — so
    // trained parameters must agree bit-for-bit between runs.
    let ds = dataset();
    let run = |devices: usize| -> f64 {
        let mut runner = Runner::new(&ds, &config(), 9);
        for _ in 0..3 {
            runner
                .train_epoch_multi_device(
                    &ds,
                    StrategyKind::Betty,
                    6,
                    &DeviceGroup::new(devices),
                )
                .unwrap();
        }
        runner.evaluate(&ds, &ds.test_idx)
    };
    let acc1 = run(1);
    let acc4 = run(4);
    assert_eq!(acc1, acc4, "device count must not affect learning");
}

#[test]
fn wall_time_improves_with_devices() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 0);
    let one = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(1))
        .unwrap();
    let four = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 8, &DeviceGroup::new(4))
        .unwrap();
    // Wall times are measured, hence noisy; require a clear improvement.
    assert!(
        four.wall_sec() < one.wall_sec(),
        "4 devices {} vs 1 device {}",
        four.wall_sec(),
        one.wall_sec()
    );
    assert!(four.speedup_vs_serial() > 1.0);
    assert!((one.speedup_vs_serial() - 1.0).abs() < 1e-9);
}

#[test]
fn more_devices_than_micro_batches_is_fine() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 0);
    let epoch = runner
        .train_epoch_multi_device(&ds, StrategyKind::Betty, 2, &DeviceGroup::new(8))
        .unwrap();
    // Some devices idle; wall time is still the busiest device.
    assert!(epoch.wall_sec() > 0.0);
    assert_eq!(epoch.per_device.len(), 8);
}

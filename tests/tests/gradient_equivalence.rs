//! The paper's central correctness claim (§4.2): training K micro-batches
//! with gradient accumulation is mathematically equivalent to full-batch
//! training — for *any* partitioning of the output nodes.

use betty_data::{Dataset, DatasetSpec};
use betty_graph::{sample_batch, Batch};
use betty_nn::{AggregatorSpec, GnnModel, GraphSage, Param, Session};

use betty_partition::{OutputPartitioner, RegPartitioner};
use betty_tensor::{Reduction, Tensor};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.04)
        .with_feature_dim(10)
        .generate(11)
}

fn full_batch(ds: &Dataset) -> Batch {
    let mut rng = Pcg64Mcg::seed_from_u64(1);
    let seeds: Vec<_> = ds.train_idx.iter().copied().take(40).collect();
    sample_batch(&ds.graph, &seeds, &[4, 6], &mut rng)
}

/// Runs forward/backward on `batch` and returns summed gradients per param,
/// with the loss scaled by `1/effective` (Sum reduction).
fn accumulate(
    model: &mut dyn GnnModel,
    ds: &Dataset,
    batches: &[Batch],
    effective: usize,
) -> Vec<Tensor> {
    for p in model.params_mut() {
        p.zero_grad();
    }
    for batch in batches {
        let mut sess = Session::new();
        let idx: Vec<usize> = batch.input_nodes().iter().map(|&v| v as usize).collect();
        let x = sess.graph.leaf(ds.features.gather_rows(&idx));
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let logits = model.forward(&mut sess, batch.blocks(), x, false, &mut rng);
        let targets = ds.labels_of(batch.output_nodes());
        let sum = sess.graph.cross_entropy(logits, &targets, Reduction::Sum);
        let loss = sess.graph.scale(sum, 1.0 / effective as f32);
        sess.backward(loss, model);
    }
    model.params().iter().map(|p| p.grad().clone()).collect()
}

/// Equivalence for an arbitrary model: accumulate over a REG split and
/// compare against the full batch.
fn check_model_equivalence(model: &mut dyn GnnModel, tol: f32) {
    let ds = dataset();
    let batch = full_batch(&ds);
    let effective = batch.output_nodes().len();
    let full = accumulate(model, &ds, std::slice::from_ref(&batch), effective);
    let parts = RegPartitioner::new(3).split_outputs(&batch, 4);
    let micros: Vec<Batch> = parts
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| batch.restrict(p))
        .collect();
    let micro = accumulate(model, &ds, &micros, effective);
    let gap = max_grad_gap(&full, &micro);
    assert!(gap < tol, "gradient gap {gap} exceeds {tol}");
}

fn max_grad_gap(a: &[Tensor], b: &[Tensor]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            x.data()
                .iter()
                .zip(y.data())
                .map(|(u, v)| (u - v).abs())
                .fold(0.0f32, f32::max)
        })
        .fold(0.0, f32::max)
}

fn check_equivalence(aggregator: AggregatorSpec, k: usize, tol: f32) {
    let ds = dataset();
    let batch = full_batch(&ds);
    let effective = batch.output_nodes().len();
    let mut rng = Pcg64Mcg::seed_from_u64(99);
    let mut model = GraphSage::new(ds.feature_dim(), 8, ds.num_classes, 2, aggregator, 0.0, &mut rng);

    let full_grads = accumulate(&mut model, &ds, std::slice::from_ref(&batch), effective);

    let parts = RegPartitioner::new(3).split_outputs(&batch, k);
    let micros: Vec<Batch> = parts
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| batch.restrict(p))
        .collect();
    assert!(micros.len() > 1, "partitioning must actually split");
    let micro_grads = accumulate(&mut model, &ds, &micros, effective);

    let gap = max_grad_gap(&full_grads, &micro_grads);
    assert!(
        gap < tol,
        "{}, k={k}: gradient gap {gap} exceeds {tol}",
        aggregator.name()
    );
}

#[test]
fn mean_aggregator_k2() {
    check_equivalence(AggregatorSpec::Mean, 2, 2e-5);
}

#[test]
fn mean_aggregator_k5() {
    check_equivalence(AggregatorSpec::Mean, 5, 2e-5);
}

#[test]
fn sum_aggregator_k3() {
    check_equivalence(AggregatorSpec::Sum, 3, 5e-5);
}

#[test]
fn pool_aggregator_k3() {
    check_equivalence(AggregatorSpec::Pool, 3, 5e-5);
}

#[test]
fn lstm_aggregator_k2() {
    check_equivalence(AggregatorSpec::Lstm, 2, 5e-5);
}

#[test]
fn gcn_model_equivalence() {
    let ds = dataset();
    let mut model = betty_nn::Gcn::new(
        ds.feature_dim(),
        8,
        ds.num_classes,
        2,
        0.0,
        &mut Pcg64Mcg::seed_from_u64(21),
    );
    check_model_equivalence(&mut model, 2e-5);
}

#[test]
fn gin_model_equivalence() {
    let ds = dataset();
    let mut model = betty_nn::Gin::new(
        ds.feature_dim(),
        8,
        ds.num_classes,
        2,
        0.0,
        &mut Pcg64Mcg::seed_from_u64(22),
    );
    check_model_equivalence(&mut model, 5e-5);
}

#[test]
fn gat_model_equivalence() {
    let ds = dataset();
    let mut model = betty_nn::Gat::new(
        ds.feature_dim(),
        8,
        ds.num_classes,
        2,
        2,
        0.0,
        &mut Pcg64Mcg::seed_from_u64(23),
    );
    check_model_equivalence(&mut model, 5e-5);
}

#[test]
fn losses_match_too() {
    // Beyond gradients: the scaled micro losses must sum to the full loss.
    let ds = dataset();
    let batch = full_batch(&ds);
    let effective = batch.output_nodes().len();
    let mut rng = Pcg64Mcg::seed_from_u64(5);
    let model = GraphSage::new(
        ds.feature_dim(),
        8,
        ds.num_classes,
        2,
        AggregatorSpec::Mean,
        0.0,
        &mut rng,
    );
    let loss_of = |b: &Batch| -> f32 {
        let mut sess = Session::new();
        let idx: Vec<usize> = b.input_nodes().iter().map(|&v| v as usize).collect();
        let x = sess.graph.leaf(ds.features.gather_rows(&idx));
        let mut rng = Pcg64Mcg::seed_from_u64(0);
        let logits = model.forward(&mut sess, b.blocks(), x, false, &mut rng);
        let targets = ds.labels_of(b.output_nodes());
        let sum = sess.graph.cross_entropy(logits, &targets, Reduction::Sum);
        let scaled = sess.graph.scale(sum, 1.0 / effective as f32);
        sess.graph.value(scaled).item()
    };
    let full = loss_of(&batch);
    let parts = RegPartitioner::new(3).split_outputs(&batch, 4);
    let micro_sum: f32 = parts
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| loss_of(&batch.restrict(p)))
        .sum();
    assert!(
        (full - micro_sum).abs() < 1e-4,
        "full {full} vs micro sum {micro_sum}"
    );
}

#[test]
fn equivalence_holds_for_any_random_split() {
    // Not just REG: an arbitrary random partition must accumulate to the
    // same gradients (the math does not depend on the partitioner).
    use betty_partition::{OutputGraphPartitioner, RandomPartitioner};
    let ds = dataset();
    let batch = full_batch(&ds);
    let effective = batch.output_nodes().len();
    let mut rng = Pcg64Mcg::seed_from_u64(13);
    let mut model = GraphSage::new(
        ds.feature_dim(),
        8,
        ds.num_classes,
        2,
        AggregatorSpec::Mean,
        0.0,
        &mut rng,
    );
    let full = accumulate(&mut model, &ds, std::slice::from_ref(&batch), effective);
    for seed in 0..3 {
        let parts =
            OutputGraphPartitioner::new(RandomPartitioner::new(seed)).split_outputs(&batch, 4);
        let micros: Vec<Batch> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let grads = accumulate(&mut model, &ds, &micros, effective);
        let gap = max_grad_gap(&full, &grads);
        assert!(gap < 2e-5, "seed {seed}: gap {gap}");
    }
}

#[test]
fn optimizer_trajectories_identical() {
    // Full-batch Adam vs micro-batch Adam from identical init: parameter
    // values stay (numerically) identical across several updates.
    use betty_nn::{Adam, Optimizer};
    let ds = dataset();
    let batch = full_batch(&ds);
    let effective = batch.output_nodes().len();
    let make_model = || {
        let mut rng = Pcg64Mcg::seed_from_u64(17);
        GraphSage::new(ds.feature_dim(), 8, ds.num_classes, 2, AggregatorSpec::Mean, 0.0, &mut rng)
    };
    let mut full_model = make_model();
    let mut micro_model = make_model();
    let parts = RegPartitioner::new(1).split_outputs(&batch, 3);
    let micros: Vec<Batch> = parts
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| batch.restrict(p))
        .collect();
    let mut opt_full = Adam::new(0.01);
    let mut opt_micro = Adam::new(0.01);
    for _ in 0..3 {
        accumulate(&mut full_model, &ds, std::slice::from_ref(&batch), effective);
        opt_full.step(&mut full_model.params_mut());
        accumulate(&mut micro_model, &ds, &micros, effective);
        opt_micro.step(&mut micro_model.params_mut());
    }
    let gap = full_model
        .params()
        .into_iter()
        .zip(micro_model.params())
        .map(|(a, b): (&Param, &Param)| {
            a.value()
                .data()
                .iter()
                .zip(b.value().data())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max)
        })
        .fold(0.0, f32::max);
    assert!(gap < 1e-4, "parameter divergence {gap}");
}

//! Estimator-vs-ledger agreement (the basis of Table 7) and OOM behaviour
//! (the basis of Figs. 2 and 10).

use betty::{ExperimentConfig, ModelKind, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::AggregatorSpec;

fn dataset() -> Dataset {
    DatasetSpec::ogbn_arxiv()
        .scaled(0.003)
        .with_feature_dim(16)
        .generate(8)
}

fn config(aggregator: AggregatorSpec) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![5, 10],
        hidden_dim: 16,
        aggregator,
        dropout: 0.0,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

/// Relative error between the planner's estimate and the device ledger's
/// measured peak for each micro-batch.
fn estimation_errors(aggregator: AggregatorSpec, k: usize) -> Vec<f64> {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(aggregator), 0);
    let batch = runner.sample_full_batch(&ds);
    let plan = runner.plan_fixed(&batch, StrategyKind::Betty, k);
    let mut errors = Vec::new();
    for (mb, est) in plan.micro_batches.iter().zip(&plan.estimates) {
        // Execute exactly this micro-batch and read the measured peak.
        let mut solo = Runner::new(&ds, &config(aggregator), 0);
        let stats = solo
            .train_micro_batches(&ds, std::slice::from_ref(mb))
            .expect("8 GiB fits the test batch");
        let measured = stats.max_peak_bytes as f64;
        let predicted = est.peak_bytes() as f64;
        errors.push((predicted - measured).abs() / measured);
    }
    errors
}

#[test]
fn mean_estimation_error_is_small() {
    for err in estimation_errors(AggregatorSpec::Mean, 4) {
        assert!(err < 0.15, "mean-aggregator estimation error {err}");
    }
}

#[test]
fn lstm_estimation_error_within_paper_band() {
    // Table 7 reports < 8% for the LSTM aggregator; allow modest slack for
    // our engine.
    for err in estimation_errors(AggregatorSpec::Lstm, 4) {
        assert!(err < 0.15, "lstm estimation error {err}");
    }
}

#[test]
fn pool_estimation_error_is_bounded() {
    for err in estimation_errors(AggregatorSpec::Pool, 4) {
        assert!(err < 0.20, "pool estimation error {err}");
    }
}

#[test]
fn tight_capacity_triggers_oom_and_betty_rescues_it() {
    // Fig. 2 → Fig. 10 in miniature: full batch OOMs at a capacity that a
    // memory-aware plan satisfies.
    let ds = dataset();
    let mut probe = Runner::new(&ds, &config(AggregatorSpec::Mean), 0);
    let batch = probe.sample_full_batch(&ds);
    let full_peak = probe
        .plan_fixed(&batch, StrategyKind::Betty, 1)
        .max_estimated_peak();
    let quarter_peak = probe
        .plan_fixed(&batch, StrategyKind::Betty, 4)
        .max_estimated_peak();
    assert!(quarter_peak < full_peak);

    let tight = ExperimentConfig {
        capacity_bytes: (full_peak + quarter_peak) / 2,
        ..config(AggregatorSpec::Mean)
    };
    // Full-batch training OOMs…
    let mut full_runner = Runner::new(&ds, &tight, 0);
    match full_runner.train_epoch_betty(&ds, StrategyKind::Betty, 1) {
        Err(e) => assert!(e.oom().is_some(), "expected OOM, got {e:?}"),
        Ok(other) => panic!("expected OOM, got {other:?}"),
    }
    // …while the memory-aware loop finds a K that fits and trains.
    let mut auto_runner = Runner::new(&ds, &tight, 0);
    let (stats, k) = auto_runner
        .train_epoch_auto(&ds, StrategyKind::Betty)
        .expect("memory-aware planning must rescue");
    assert!(k > 1);
    assert!(stats.max_peak_bytes <= tight.capacity_bytes);
}

#[test]
fn gat_runner_memory_accounting_works() {
    let ds = dataset();
    let cfg = ExperimentConfig {
        model: ModelKind::Gat,
        num_heads: 4,
        hidden_dim: 16,
        ..config(AggregatorSpec::Mean)
    };
    let mut runner = Runner::new(&ds, &cfg, 0);
    let batch = runner.sample_full_batch(&ds);
    let plan = runner.plan_fixed(&batch, StrategyKind::Betty, 2);
    // The attention estimator must be in the right ballpark (within 2× of
    // measured) so that planning with GAT is meaningful.
    let stats = runner.train_micro_batches(&ds, &plan.micro_batches).unwrap();
    let est = plan.max_estimated_peak() as f64;
    let meas = stats.max_peak_bytes as f64;
    let ratio = est / meas;
    assert!((0.5..2.0).contains(&ratio), "estimate/measured ratio {ratio}");
}

//! Library-surface features composing end to end: LR schedules,
//! checkpointing, dataset I/O, and exact full-graph inference.

use betty::{accuracy_full_graph, ExperimentConfig, Runner, StrategyKind};
use betty_data::{load_dataset, save_dataset, DatasetSpec};
use betty_device::gib;
use betty_nn::{
    load_checkpoint, save_checkpoint, AggregatorSpec, CosineAnnealing, GraphSage, LrSchedule,
};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

fn dataset() -> betty_data::Dataset {
    DatasetSpec::cora()
        .scaled(0.1)
        .with_feature_dim(16)
        .generate(12)
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        learning_rate: 1e-2,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

#[test]
fn cosine_schedule_trains_through_runner() {
    let ds = dataset();
    let mut runner = Runner::new(&ds, &config(), 1);
    let schedule = CosineAnnealing {
        total_epochs: 10,
        min_factor: 0.1,
    };
    let mut losses = Vec::new();
    for epoch in 0..10 {
        runner.set_learning_rate(schedule.lr_at(1e-2, epoch));
        let stats = runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 2)
            .unwrap();
        losses.push(stats.loss);
    }
    assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
}

#[test]
fn dataset_roundtrips_through_disk_and_trains_identically() {
    let ds = dataset();
    let path = std::env::temp_dir().join(format!("betty-it-ds-{}", std::process::id()));
    save_dataset(&ds, &path).unwrap();
    let loaded = load_dataset(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let run = |d: &betty_data::Dataset| -> f64 {
        let mut runner = Runner::new(d, &config(), 4);
        let mut loss = 0.0;
        for _ in 0..3 {
            loss = runner
                .train_epoch_betty(d, StrategyKind::Betty, 2)
                .unwrap()
                .loss;
        }
        loss
    };
    assert_eq!(run(&ds), run(&loaded), "identical bytes ⇒ identical run");
}

#[test]
fn checkpoint_preserves_full_graph_accuracy() {
    let ds = dataset();
    let mut rng = Pcg64Mcg::seed_from_u64(2);
    let mut model = GraphSage::new(
        ds.feature_dim(),
        16,
        ds.num_classes,
        2,
        AggregatorSpec::Mean,
        0.0,
        &mut rng,
    );
    // Scramble-restore: train a runner? Keep it focused — checkpoint an
    // untrained model, reload into a differently-initialized clone, and
    // verify exact-inference agreement.
    let path = std::env::temp_dir().join(format!("betty-it-ckpt-{}", std::process::id()));
    save_checkpoint(&model, &path).unwrap();
    let mut other = GraphSage::new(
        ds.feature_dim(),
        16,
        ds.num_classes,
        2,
        AggregatorSpec::Mean,
        0.0,
        &mut Pcg64Mcg::seed_from_u64(99),
    );
    let before = accuracy_full_graph(&other, &ds, &ds.test_idx, 64);
    load_checkpoint(&mut other, &path).unwrap();
    let _ = std::fs::remove_file(&path);
    let restored = accuracy_full_graph(&other, &ds, &ds.test_idx, 64);
    let original = accuracy_full_graph(&model, &ds, &ds.test_idx, 64);
    assert_eq!(restored, original, "restored model must match byte-wise");
    // (`before` is almost surely different — two random inits.)
    let _ = before;
    let _ = &mut model;
}

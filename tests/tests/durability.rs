//! Property tests of the v2 checkpoint format's corruption resistance:
//! any truncation and any single-bit flip of a valid checkpoint file is
//! rejected by the CRC/format validation with a structured error —
//! never silently loaded, never a panic.

use std::path::PathBuf;

use betty_nn::{load_train_state, save_train_state, AdamState, CheckpointError, TrainState};
use betty_tensor::Tensor;
use proptest::prelude::*;

/// A representative session checkpoint exercising every section type:
/// params, Adam moments, RNG streams, counters, floats, loss history,
/// and the config fingerprint.
fn full_state() -> TrainState {
    let params = vec![
        Tensor::from_vec(vec![0.5, -1.25, 3.0, 0.0, 7.5, -0.125], &[2, 3]).unwrap(),
        Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
    ];
    let moments = params
        .iter()
        .map(|p| Some((Tensor::zeros(p.shape()), Tensor::ones(p.shape()))))
        .collect();
    TrainState {
        adam: Some(AdamState { t: 42, moments }),
        rngs: vec![0x1234_5678_9abc_def1, 0xfeed_beef_0000_0003],
        counters: vec![7, 310, 99],
        floats: vec![0.8125],
        history: vec![2.0, 1.5, 1.25],
        fingerprint: Some(0xdead_beef_cafe_f00d),
        params,
    }
}

/// The canonical serialized bytes of [`full_state`].
fn checkpoint_bytes(dir: &str) -> Vec<u8> {
    let path = tmp(dir, "canonical");
    save_train_state(&full_state(), &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

fn tmp(dir: &str, name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("betty-durability-{dir}-{name}-{}", std::process::id()))
}

/// Writes `bytes` and asserts loading fails with `Format` (not `Io`,
/// which would mean we never got to validation, and certainly not `Ok`).
fn assert_rejected(dir: &str, bytes: &[u8]) {
    let path = tmp(dir, "mutated");
    std::fs::write(&path, bytes).unwrap();
    let result = load_train_state(&path);
    let _ = std::fs::remove_file(&path);
    match result {
        Err(CheckpointError::Format(_)) => {}
        Err(CheckpointError::Io(e)) => panic!("corruption surfaced as an I/O error: {e}"),
        Ok(_) => panic!("corrupted checkpoint loaded successfully"),
    }
}

#[test]
fn session_import_resets_a_hot_plan_ahead_pipeline() {
    use betty::{ExperimentConfig, Runner, StrategyKind};
    use betty_data::DatasetSpec;

    // Resume-mid-pipeline: importing a session while staged bundles are
    // in flight must discard them (they were sampled from the
    // pre-import RNG cursor) and replay the checkpointed epoch
    // bit-identically to a never-pipelined run.
    betty_runtime::set_thread_override(Some(4));
    let ds = DatasetSpec::cora()
        .scaled(0.1)
        .with_feature_dim(12)
        .generate(6);
    let cfg = ExperimentConfig {
        fanouts: vec![4, 6],
        hidden_dim: 16,
        dropout: 0.2,
        plan_ahead: 3,
        ..ExperimentConfig::default()
    };
    let train = |runner: &mut Runner| {
        runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 3)
            .expect("default capacity is ample")
            .loss
            .to_bits()
    };

    // Reference trajectory: the same schedule without a pipeline.
    let sync_cfg = ExperimentConfig {
        plan_ahead: 0,
        ..cfg.clone()
    };
    let mut sync = Runner::new(&ds, &sync_cfg, 11);
    let sync_losses: Vec<u64> = (0..3).map(|_| train(&mut sync)).collect();

    let mut runner = Runner::new(&ds, &cfg, 11);
    let mut losses = vec![train(&mut runner), train(&mut runner)];
    let saved = runner.export_session();
    losses.push(train(&mut runner)); // epoch 2, bundles staged ahead
    assert!(
        runner.plan_ahead_active(),
        "depth 3 at 4 threads must keep a live pipeline"
    );
    assert_eq!(losses, sync_losses, "pipelined trajectory diverged");

    runner.import_session(&saved).expect("same config, same shapes");
    assert!(
        !runner.plan_ahead_active(),
        "import must invalidate in-flight pipeline state"
    );
    let replayed = train(&mut runner);
    assert_eq!(
        replayed, losses[2],
        "the resumed epoch must replay the checkpointed epoch bit for bit"
    );
    betty_runtime::set_thread_override(None);
}

#[test]
fn resume_falls_back_past_a_corrupt_newest_slot_bit_identically() {
    use betty::{latest_valid_checkpoint, CheckpointPlan, ExperimentConfig, Runner, StrategyKind};
    use betty_data::DatasetSpec;

    // Three valid slots, newest corrupted on disk: resume must skip it,
    // restore from the next-older slot, and retrain the lost epoch to
    // exactly the uninterrupted run's parameters.
    let ds = DatasetSpec::cora()
        .scaled(0.1)
        .with_feature_dim(12)
        .generate(6);
    let cfg = ExperimentConfig {
        fanouts: vec![4, 6],
        hidden_dim: 16,
        dropout: 0.2,
        ..ExperimentConfig::default()
    };
    let param_bits = |runner: &Runner| -> Vec<u32> {
        runner
            .trainer()
            .model()
            .params()
            .iter()
            .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
            .collect()
    };
    let train = |runner: &mut Runner| {
        runner
            .train_epoch_betty(&ds, StrategyKind::Betty, 3)
            .expect("default capacity is ample")
    };

    // Uninterrupted reference: four epochs straight through.
    let mut reference = Runner::new(&ds, &cfg, 11);
    for _ in 0..4 {
        train(&mut reference);
    }

    // Checkpointed run: a slot after each of the four epochs.
    let dir = tmp("fallback", "slots");
    let _ = std::fs::remove_dir_all(&dir);
    let plan = CheckpointPlan::new(&dir, 1);
    let mut live = Runner::new(&ds, &cfg, 11);
    for epoch in 0..4 {
        train(&mut live);
        plan.save(&live.export_session(), epoch).expect("slot saved");
    }
    assert_eq!(param_bits(&reference), param_bits(&live));

    // Silently corrupt the newest slot (epoch 3).
    let newest = dir.join("ckpt-000003.btc");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&newest, bytes).unwrap();

    // Resolution falls back to the epoch-2 slot and names the skipped one.
    let found = latest_valid_checkpoint(&dir)
        .expect("older valid slots remain")
        .expect("the directory holds slots");
    assert_eq!(found.epoch, 2, "fallback lands on the next-older slot");
    assert_eq!(found.skipped, vec![newest], "the corrupt slot is reported");

    // Restoring it and retraining the lost epoch reproduces the
    // uninterrupted parameters bit for bit.
    let mut resumed = Runner::new(&ds, &cfg, 11);
    resumed
        .import_session(&found.state)
        .expect("same config, same shapes");
    assert_eq!(resumed.epochs_run(), 3, "the epoch-2 slot holds three trained epochs");
    train(&mut resumed);
    assert_eq!(
        param_bits(&reference),
        param_bits(&resumed),
        "fallback resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_dataset() {
    use betty::{ExperimentConfig, Runner, RunError, StrategyKind};
    use betty_data::DatasetSpec;

    // The historical bug: `ExperimentConfig::fingerprint` covers only
    // model-shape knobs, so a checkpoint trained on one dataset resumed
    // cleanly onto a *different* dataset as long as the config matched —
    // silently misapplying the optimizer state. The session fingerprint
    // now folds in the dataset shape, so this must be rejected up front.
    let cfg = ExperimentConfig {
        fanouts: vec![3, 5],
        hidden_dim: 8,
        ..ExperimentConfig::default()
    };
    let cora = DatasetSpec::cora()
        .scaled(0.08)
        .with_feature_dim(12)
        .generate(3);
    let mut trained = Runner::new(&cora, &cfg, 7);
    trained
        .train_epoch_betty(&cora, StrategyKind::Betty, 2)
        .expect("default capacity is ample");
    let saved = trained.export_session();

    // Same config, same dataset: loads.
    Runner::new(&cora, &cfg, 7)
        .import_session(&saved)
        .expect("same dataset must resume");

    // Same config, different dataset: rejected with a checkpoint error,
    // not a crash deep inside the model.
    let pubmed = DatasetSpec::pubmed()
        .scaled(0.02)
        .with_feature_dim(12)
        .generate(3);
    match Runner::new(&pubmed, &cfg, 7).import_session(&saved) {
        Err(RunError::Checkpoint(msg)) => {
            assert!(
                msg.contains("fingerprint mismatch"),
                "unexpected rejection: {msg}"
            );
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(()) => panic!("a cross-dataset checkpoint was accepted"),
    }

    // Even the same graph with a different feature width is a different
    // dataset as far as a checkpoint is concerned.
    let wider = DatasetSpec::cora()
        .scaled(0.08)
        .with_feature_dim(24)
        .generate(3);
    assert!(
        matches!(
            Runner::new(&wider, &cfg, 7).import_session(&saved),
            Err(RunError::Checkpoint(_))
        ),
        "a checkpoint from a narrower feature matrix was accepted"
    );
}

#[test]
fn dataset_roundtrips_through_both_feature_backends() {
    use betty_data::{load_dataset, save_dataset, DatasetSpec};

    let ds = DatasetSpec::cora()
        .scaled(0.08)
        .with_feature_dim(12)
        .generate(3);

    // Dense backend: straight save/load.
    let dense_path = tmp("fs-roundtrip", "dense.btd");
    save_dataset(&ds, &dense_path).unwrap();
    let dense_back = load_dataset(&dense_path).unwrap();
    let _ = std::fs::remove_file(&dense_path);
    assert_eq!(dense_back.features, ds.features, "dense features diverged");
    assert_eq!(dense_back.labels, ds.labels);

    // Paged backend: spill to shards, then save the *paged* dataset.
    // The on-disk dataset format stores features densely, so the loaded
    // copy must be logically equal to the original matrix even though
    // the saved dataset served its rows from disk shards.
    let shard_dir = tmp("fs-roundtrip", "shards");
    let mut paged_ds = ds.clone();
    paged_ds.features = paged_ds.features.to_paged(&shard_dir, 16, 4096).unwrap();
    assert!(paged_ds.features.is_paged());
    let paged_path = tmp("fs-roundtrip", "paged.btd");
    save_dataset(&paged_ds, &paged_path).unwrap();
    let paged_back = load_dataset(&paged_path).unwrap();
    let _ = std::fs::remove_file(&paged_path);
    let _ = std::fs::remove_dir_all(&shard_dir);
    assert_eq!(
        paged_back.features, ds.features,
        "features did not survive the spill → save → load round trip"
    );
    assert_eq!(paged_back.labels, ds.labels);
}

#[test]
fn corrupted_feature_shard_is_rejected_on_open() {
    use betty_data::{DatasetSpec, FeatureStoreError, PagedFeatures};

    let ds = DatasetSpec::cora()
        .scaled(0.08)
        .with_feature_dim(12)
        .generate(3);
    let dir = tmp("fs-corrupt", "shards");
    let _ = ds.features.to_paged(&dir, 16, usize::MAX).unwrap();
    let shard = dir.join("shard-00000.bfs");
    let pristine = std::fs::read(&shard).unwrap();
    assert!(
        PagedFeatures::open(&dir, usize::MAX).is_ok(),
        "the untouched store must open"
    );

    let expect_format = |what: &str| {
        match PagedFeatures::open(&dir, usize::MAX) {
            Err(FeatureStoreError::Format(_)) => {}
            Err(FeatureStoreError::Io(e)) => {
                panic!("{what}: corruption surfaced as an I/O error: {e}")
            }
            Err(other) => panic!("{what}: wrong error kind: {other}"),
            Ok(_) => panic!("{what}: corrupted shard opened successfully"),
        }
    };

    // Truncation anywhere — mid-magic, mid-header, mid-payload, mid-CRC —
    // must be caught by the open-time validation.
    for cut in [0, 4, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&shard, &pristine[..cut]).unwrap();
        expect_format("truncation");
    }
    // A single flipped payload bit must fail the shard CRC.
    let mut flipped = pristine.clone();
    let pos = flipped.len() - 5; // inside the payload/CRC tail
    flipped[pos] ^= 1;
    std::fs::write(&shard, &flipped).unwrap();
    expect_format("bit flip");

    std::fs::write(&shard, &pristine).unwrap();
    assert!(
        PagedFeatures::open(&dir, usize::MAX).is_ok(),
        "restoring the pristine bytes must make the store open again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pristine_checkpoint_roundtrips() {
    let path = tmp("roundtrip", "ok");
    let state = full_state();
    save_train_state(&state, &path).unwrap();
    assert_eq!(load_train_state(&path).unwrap(), state);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating a checkpoint at any point — mid-magic, mid-header,
    /// mid-payload, mid-CRC — is always a Format error.
    #[test]
    fn any_truncation_is_rejected(frac in 0.0f64..1.0) {
        let bytes = checkpoint_bytes("trunc");
        let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        assert_rejected("trunc", &bytes[..cut]);
    }

    /// Flipping any single bit anywhere in the file is always a Format
    /// error: either the magic/section structure breaks, or a section
    /// CRC no longer matches.
    #[test]
    fn any_single_bit_flip_is_rejected(pos in 0usize..4096, bit in 0usize..8) {
        let mut bytes = checkpoint_bytes("bitflip");
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        assert_rejected("bitflip", &bytes);
    }
}

//! Property tests for end-to-end storage fault tolerance: training over
//! a paged feature store with injected storage chaos — transient read
//! errors retried with seeded, accounted backoff, and scheduled
//! single-byte shard corruption repaired from the XOR parity sidecar —
//! must be bit-identical to the fault-free dense run. Damage beyond what
//! parity can reconstruct must surface as a structured storage error
//! before a single damaged byte reaches the model.

use betty::{EpochStats, ExperimentConfig, RecoveryLog, RunError, Runner, StrategyKind, TrainError};
use betty_data::{Dataset, DatasetSpec};
use betty_device::{gib, FaultPlan};
use betty_nn::AggregatorSpec;
use proptest::prelude::*;

/// Tests that mutate the process-global thread override serialize on
/// this lock (same discipline as `parallel_determinism.rs`).
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Rows per on-disk shard: small enough that the cora-scale graph spans
/// dozens of shards and every parity group is really exercised.
const PAGE_ROWS: usize = 8;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.12)
        .with_feature_dim(16)
        .generate(5)
}

fn config(fault_plan: Option<FaultPlan>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.3,
        capacity_bytes: gib(8),
        fault_plan,
        ..ExperimentConfig::default()
    };
    // Backoff is accounted, never slept, so a deep retry budget is free;
    // it must make exhaustion negligible at the failure rates below.
    cfg.retry.max_io_retries = 25;
    cfg
}

/// The value-determined subset of [`EpochStats`]: everything except
/// wall-clock timings and the fault-accounting counters (`io_retries`,
/// `shards_repaired`, `repair_sec`, `injected_faults`), which are
/// *defined* to differ between a faulted and a fault-free run.
fn value_stats(stats: &EpochStats) -> Vec<u64> {
    vec![
        stats.loss.to_bits(),
        stats.num_steps as u64,
        stats.total_input_nodes as u64,
        stats.total_src_nodes as u64,
        stats.host_bytes as u64,
        stats.oom_retries as u64,
        stats.anomaly_rollbacks as u64,
    ]
}

/// Final parameter bits, for trajectory-equality comparisons.
fn param_bits(runner: &Runner) -> Vec<u32> {
    runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Chaos accounting summed over a trajectory.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
struct Chaos {
    io_retries: u64,
    shards_repaired: u64,
    repair_sec: f64,
}

/// Four recovering epochs over `ds`; returns per-epoch value stats, the
/// final parameter bits, the validation-accuracy bits, and the summed
/// chaos counters.
fn trajectory(
    ds: &Dataset,
    cfg: &ExperimentConfig,
    seed: u64,
    threads: usize,
) -> (Vec<Vec<u64>>, Vec<u32>, u64, Chaos) {
    betty_runtime::set_thread_override(Some(threads));
    let mut runner = Runner::new(ds, cfg, seed);
    let mut log = RecoveryLog::new();
    let mut epochs = Vec::new();
    let mut chaos = Chaos::default();
    for _ in 0..4 {
        let (stats, _k) = runner
            .train_epoch_auto_recovering(ds, StrategyKind::Betty, &mut log)
            .expect("storage chaos within the retry/parity budget is survivable");
        epochs.push(value_stats(&stats));
        chaos.io_retries += stats.io_retries;
        chaos.shards_repaired += stats.shards_repaired;
        chaos.repair_sec += stats.repair_sec;
    }
    let accuracy = runner.evaluate(ds, &ds.val_idx).to_bits();
    let params = param_bits(&runner);
    betty_runtime::set_thread_override(None);
    (epochs, params, accuracy, chaos)
}

/// Spills `ds`'s features into a fresh temp store with `parity`-wide XOR
/// groups, returning the paged dataset and the store dir.
fn paged(ds: &Dataset, tag: &str, parity: usize) -> (Dataset, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("betty-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut paged_ds = ds.clone();
    paged_ds.features = paged_ds
        .features
        .to_paged_with_parity(&dir, PAGE_ROWS, usize::MAX, parity)
        .expect("spilling test features");
    (paged_ds, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A scheduled single-byte shard corruption, repaired mid-run from
    /// the parity sidecar, leaves losses, deterministic epoch stats,
    /// accuracy, and final parameter bits exactly equal to the
    /// fault-free dense run — at 1 and 4 threads.
    #[test]
    fn single_shard_corruption_is_repaired_bit_identically(
        seed in 0u64..500,
        shard in 0usize..8,
    ) {
        let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ds = dataset();
        let dense = trajectory(&ds, &config(None), seed, 1);
        prop_assert_eq!(dense.3, Chaos::default(), "the dense run sees no chaos");

        let plan = FaultPlan {
            shard_corrupt: vec![(shard, 1)],
            ..FaultPlan::default()
        };
        for threads in [1usize, 4] {
            let (paged_ds, dir) = paged(&ds, &format!("repair-{seed}-{shard}-{threads}"), 2);
            let chaos = trajectory(&paged_ds, &config(Some(plan.clone())), seed, threads);
            prop_assert_eq!(
                &dense.0, &chaos.0,
                "corrupting shard {} changed the training math at {} threads",
                shard, threads
            );
            prop_assert_eq!(&dense.1, &chaos.1, "final parameter bits diverged");
            prop_assert_eq!(dense.2, chaos.2, "validation accuracy diverged");
            prop_assert_eq!(chaos.3.shards_repaired, 1, "the corruption was repaired exactly once");
            prop_assert!(chaos.3.repair_sec > 0.0, "reconstruction time is accounted");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Transient shard-read failures and stall jitter, retried with
    /// seeded accounted backoff, leave the whole trajectory bit-identical
    /// to the fault-free paged run; only the I/O counters differ.
    #[test]
    fn transient_io_faults_leave_training_bit_identical(
        seed in 0u64..500,
        fault_seed in 0u64..100,
    ) {
        let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ds = dataset();
        let (quiet_ds, quiet_dir) = paged(&ds, &format!("quiet-{seed}-{fault_seed}"), 0);
        let quiet = trajectory(&quiet_ds, &config(None), seed, 1);
        prop_assert_eq!(quiet.3, Chaos::default(), "the fault-free run sees no chaos");

        let plan = FaultPlan {
            seed: fault_seed,
            io_failure_rate: 0.3,
            io_stall_rate: 0.3,
            io_stall_sec: 0.002,
            ..FaultPlan::default()
        };
        for threads in [1usize, 4] {
            let (noisy_ds, noisy_dir) =
                paged(&ds, &format!("noisy-{seed}-{fault_seed}-{threads}"), 0);
            let noisy = trajectory(&noisy_ds, &config(Some(plan.clone())), seed, threads);
            prop_assert_eq!(
                &quiet.0, &noisy.0,
                "transient I/O faults changed the training math at {} threads",
                threads
            );
            prop_assert_eq!(&quiet.1, &noisy.1, "final parameter bits diverged");
            prop_assert_eq!(quiet.2, noisy.2, "validation accuracy diverged");
            prop_assert!(noisy.3.io_retries > 0, "a 0.3 failure rate must force retries");
            prop_assert!(noisy.3.repair_sec > 0.0, "retry backoff is accounted, not slept");
            let _ = std::fs::remove_dir_all(&noisy_dir);
        }
        let _ = std::fs::remove_dir_all(&quiet_dir);
    }
}

/// Two corrupt shards in one parity group exceed what XOR can
/// reconstruct: the epoch must abort with a structured storage error
/// naming a shard of the damaged group — before any damaged byte is
/// trained on — and the damage must still be visible to a direct read.
#[test]
fn double_corruption_in_one_group_is_rejected_not_trained_on() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    betty_runtime::set_thread_override(Some(1));
    let ds = dataset();
    // Shards 0 and 1 share parity group 0 at width 2, and cover rows
    // 0..16 — touched by the very first gather of an epoch, so the
    // failing epoch dies on its first step.
    let plan = FaultPlan {
        shard_corrupt: vec![(0, 1), (1, 1)],
        ..FaultPlan::default()
    };
    let (paged_ds, dir) = paged(&ds, "double", 2);
    let mut runner = Runner::new(&paged_ds, &config(Some(plan)), 3);
    let mut log = RecoveryLog::new();
    let (_, _) = runner
        .train_epoch_auto_recovering(&paged_ds, StrategyKind::Betty, &mut log)
        .expect("epoch 0 runs before the scheduled corruption");
    let before = param_bits(&runner);
    let err = runner
        .train_epoch_auto_recovering(&paged_ds, StrategyKind::Betty, &mut log)
        .expect_err("a doubly-damaged parity group is unrepairable");
    match err {
        RunError::Train(TrainError::Storage { shard, detail, .. }) => {
            assert!(shard <= 1, "the error names a shard of the damaged group: {shard}");
            assert!(detail.contains("group"), "{detail}");
        }
        other => panic!("expected a structured storage error, got {other}"),
    }
    // No optimizer step ran on damaged bytes: the parameters are
    // exactly what the last clean epoch left behind.
    assert_eq!(before, param_bits(&runner), "damaged data reached the optimizer");
    // The store itself still refuses to serve the damaged rows.
    let mut sink = vec![0.0f32; 2 * paged_ds.feature_dim()];
    assert!(
        paged_ds.features.try_gather_into(&[0, PAGE_ROWS], &mut sink).is_err(),
        "damaged rows must stay unreadable until repaired or re-spilled"
    );
    betty_runtime::set_thread_override(None);
    let _ = std::fs::remove_dir_all(&dir);
}

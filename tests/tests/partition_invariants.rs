//! Property tests over the partitioning stack: random graphs in, paper
//! invariants out.

use std::collections::HashSet;

use betty_graph::{sample_batch, shared_neighbor_graph, Batch, CsrGraph, NodeId};
use betty_partition::{
    input_redundancy, MultilevelPartitioner, OutputPartitioner, Partitioner, RandomPartitioner,
    RangePartitioner, RegPartitioner,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// Strategy: a random directed graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (10usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 4));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multilevel_partition_is_complete_and_nonempty((n, edges) in arb_graph(), k in 2usize..6) {
        let g = CsrGraph::from_edges(n, &edges);
        let p = MultilevelPartitioner::new(0).partition(&g, k);
        prop_assert_eq!(p.assignment().len(), n);
        prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
        if n >= k {
            prop_assert!(p.all_parts_nonempty());
        }
    }

    #[test]
    fn edge_cut_is_consistent_with_assignment((n, edges) in arb_graph(), k in 2usize..5) {
        let g = CsrGraph::from_edges(n, &edges);
        let p = MultilevelPartitioner::new(1).partition(&g, k);
        // Recompute the cut by hand.
        let manual: f64 = edges
            .iter()
            .filter(|&&(u, v)| p.part_of(u) != p.part_of(v))
            .count() as f64;
        prop_assert_eq!(p.edge_cut(&g), manual);
    }

    #[test]
    fn reg_weights_match_brute_force_shared_neighbors((n, edges) in arb_graph()) {
        // Build a one-layer batch over a few seeds and check REG weights.
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(6)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(7);
        let batch = sample_batch(&g, &seeds, &[usize::MAX], &mut rng);
        let block = batch.blocks().last().unwrap();
        let reg = shared_neighbor_graph(block);
        for i in 0..block.num_dst() {
            let src_i: HashSet<u32> = block.in_edges(i).iter().copied().collect();
            for j in 0..block.num_dst() {
                if i == j { continue; }
                let src_j: HashSet<u32> = block.in_edges(j).iter().copied().collect();
                let expected = src_i.intersection(&src_j).count() as f32;
                let actual = reg
                    .neighbors(i as u32)
                    .iter()
                    .position(|&v| v == j as u32)
                    .map(|p| reg.neighbor_weights(i as u32).unwrap()[p])
                    .unwrap_or(0.0);
                prop_assert_eq!(actual, expected, "pair ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn micro_batches_partition_outputs_exactly((n, edges) in arb_graph(), k in 2usize..5) {
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(12)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(3);
        let batch = sample_batch(&g, &seeds, &[3, 5], &mut rng);
        for strategy in [
            Box::new(RegPartitioner::new(2)) as Box<dyn OutputPartitioner>,
            Box::new(betty_partition::OutputGraphPartitioner::new(RangePartitioner::new())),
            Box::new(betty_partition::OutputGraphPartitioner::new(RandomPartitioner::new(5))),
        ] {
            let parts = strategy.split_outputs(&batch, k);
            // Disjoint union equals the full output set.
            let mut all: Vec<NodeId> = parts.iter().flatten().copied().collect();
            let unique: HashSet<NodeId> = all.iter().copied().collect();
            prop_assert_eq!(unique.len(), all.len(), "{}: overlap", strategy.name());
            all.sort_unstable();
            let mut expected = batch.output_nodes().to_vec();
            expected.sort_unstable();
            prop_assert_eq!(all, expected, "{}: coverage", strategy.name());
        }
    }

    #[test]
    fn restricted_micro_batches_are_self_contained((n, edges) in arb_graph(), k in 2usize..5) {
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(10)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(9);
        let batch = sample_batch(&g, &seeds, &[4, 4], &mut rng);
        let parts = RegPartitioner::new(0).split_outputs(&batch, k);
        for part in parts.iter().filter(|p| !p.is_empty()) {
            let micro = batch.restrict(part);
            prop_assert!(micro.validate().is_ok());
            // Every kept destination keeps its complete sampled in-edge
            // set: per-dst degree matches the full batch's top block.
            let full_top = batch.blocks().last().unwrap();
            let micro_top = micro.blocks().last().unwrap();
            for (local, &gid) in micro_top.dst_globals().iter().enumerate() {
                let full_local = full_top
                    .dst_globals()
                    .iter()
                    .position(|&v| v == gid)
                    .unwrap();
                prop_assert_eq!(
                    micro_top.in_degree(local),
                    full_top.in_degree(full_local),
                    "dst {} lost edges", gid
                );
            }
        }
    }

    #[test]
    fn redundancy_is_at_least_unique_count((n, edges) in arb_graph(), k in 2usize..5) {
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(10)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(4);
        let batch = sample_batch(&g, &seeds, &[3], &mut rng);
        let parts = RegPartitioner::new(0).split_outputs(&batch, k);
        let micros: Vec<Batch> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let report = input_redundancy(&micros);
        prop_assert!(report.total_input_nodes >= report.unique_input_nodes);
        prop_assert!(report.redundancy_ratio() >= 1.0);
        // The union of micro-batch inputs equals the full batch's inputs.
        let mut union: HashSet<NodeId> = HashSet::new();
        for m in &micros {
            union.extend(m.input_nodes().iter().copied());
        }
        let full: HashSet<NodeId> = batch.input_nodes().iter().copied().collect();
        prop_assert_eq!(union, full);
    }
}

#[test]
fn betty_beats_random_redundancy_on_community_batches() {
    // Deterministic end-check of the Fig. 16 direction at test scale.
    let ds = betty_data::DatasetSpec::ogbn_arxiv()
        .scaled(0.004)
        .with_feature_dim(8)
        .generate(2);
    let mut rng = Pcg64Mcg::seed_from_u64(1);
    let seeds: Vec<NodeId> = ds.train_idx.iter().copied().take(120).collect();
    let batch = sample_batch(&ds.graph, &seeds, &[6, 8], &mut rng);
    let measure = |strategy: &dyn OutputPartitioner| {
        let parts = strategy.split_outputs(&batch, 8);
        let micros: Vec<Batch> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        input_redundancy(&micros).redundant_nodes()
    };
    let betty = measure(&RegPartitioner::new(0));
    let random = measure(&betty_partition::OutputGraphPartitioner::new(
        RandomPartitioner::new(0),
    ));
    assert!(
        betty < random,
        "betty {betty} redundant nodes vs random {random}"
    );
}

//! Property tests for the deterministic parallel pipeline: REG
//! construction, micro-batch materialization, and the prefetch executor
//! must produce byte-identical results regardless of thread count or
//! transfer overlap.

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::gib;
use betty_graph::{
    dependency_reg_with_threads, sample_batch, shared_neighbor_graph_with_threads, CsrGraph,
    NodeId,
};
use betty_nn::AggregatorSpec;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// Strategy: a random directed graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (10usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 4));
        (Just(n), edges)
    })
}

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.12)
        .with_feature_dim(16)
        .generate(5)
}

fn config(prefetch: bool) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.3,
        capacity_bytes: gib(8),
        prefetch,
        ..ExperimentConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reg_build_is_byte_identical_across_thread_counts(
        (n, edges) in arb_graph(),
        seed in 0u64..1000,
        hub_cap in 4usize..64,
    ) {
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(8)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        let batch = sample_batch(&g, &seeds, &[5, 10], &mut rng);
        let serial = dependency_reg_with_threads(&batch, hub_cap, 1);
        for threads in [2usize, 8] {
            let parallel = dependency_reg_with_threads(&batch, hub_cap, threads);
            prop_assert_eq!(&serial, &parallel, "REG diverged at {} threads", threads);
        }
        // The per-block co-occurrence kernel must hold the same property on
        // its own (it shards rows differently for small inputs).
        let block = batch.blocks().last().unwrap();
        let base = shared_neighbor_graph_with_threads(block, 1);
        for threads in [2usize, 8] {
            let parallel = shared_neighbor_graph_with_threads(block, threads);
            prop_assert_eq!(&base, &parallel, "SNG diverged at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prefetch_reproduces_plain_losses_bitwise(k in 2usize..6, seed in 0u64..500) {
        // The prefetch executor only reorders *when* transfers are simulated,
        // never what is computed: with a shared seed every epoch loss must
        // match the plain executor bit for bit, dropout included.
        let ds = dataset();
        let mut losses: Vec<Vec<u64>> = Vec::new();
        for prefetch in [false, true] {
            let mut runner = Runner::new(&ds, &config(prefetch), seed);
            losses.push(
                (0..3)
                    .map(|_| {
                        runner
                            .train_epoch_betty(&ds, StrategyKind::Betty, k)
                            .expect("capacity is ample")
                            .loss
                            .to_bits()
                    })
                    .collect(),
            );
        }
        prop_assert_eq!(&losses[0], &losses[1], "prefetch changed the math at k={}", k);
    }
}

#[test]
fn epoch_losses_invariant_under_thread_override() {
    // End-to-end determinism across the thread-count axis: planning
    // (parallel restrict), REG construction, and the kernels all route
    // through the shared pool, so overriding its width must not move a
    // single bit of the training trajectory.
    let ds = dataset();
    let run = |threads: usize| {
        betty_runtime::set_thread_override(Some(threads));
        let mut runner = Runner::new(&ds, &config(true), 9);
        let losses: Vec<u64> = (0..3)
            .map(|_| {
                runner
                    .train_epoch_betty(&ds, StrategyKind::Betty, 4)
                    .expect("capacity is ample")
                    .loss
                    .to_bits()
            })
            .collect();
        betty_runtime::set_thread_override(None);
        losses
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(8), "8-thread run diverged from serial");
}

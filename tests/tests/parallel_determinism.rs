//! Property tests for the deterministic parallel pipeline: REG
//! construction, micro-batch materialization, and the prefetch executor
//! must produce byte-identical results regardless of thread count or
//! transfer overlap.

use betty::{EpochStats, ExperimentConfig, RecoveryLog, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::{gib, FaultPlan};
use betty_graph::{
    dependency_reg_with_threads, sample_batch, shared_neighbor_graph_with_threads, CsrGraph,
    NodeId,
};
use betty_nn::AggregatorSpec;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// Strategy: a random directed graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (10usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 4));
        (Just(n), edges)
    })
}

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.12)
        .with_feature_dim(16)
        .generate(5)
}

fn config(prefetch: bool) -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![4, 8],
        hidden_dim: 16,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.3,
        capacity_bytes: gib(8),
        prefetch,
        ..ExperimentConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reg_build_is_byte_identical_across_thread_counts(
        (n, edges) in arb_graph(),
        seed in 0u64..1000,
        hub_cap in 4usize..64,
    ) {
        let g = CsrGraph::from_edges(n, &edges);
        let seeds: Vec<NodeId> = (0..(n as NodeId).min(8)).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        let batch = sample_batch(&g, &seeds, &[5, 10], &mut rng);
        let serial = dependency_reg_with_threads(&batch, hub_cap, 1);
        for threads in [2usize, 8] {
            let parallel = dependency_reg_with_threads(&batch, hub_cap, threads);
            prop_assert_eq!(&serial, &parallel, "REG diverged at {} threads", threads);
        }
        // The per-block co-occurrence kernel must hold the same property on
        // its own (it shards rows differently for small inputs).
        let block = batch.blocks().last().unwrap();
        let base = shared_neighbor_graph_with_threads(block, 1);
        for threads in [2usize, 8] {
            let parallel = shared_neighbor_graph_with_threads(block, threads);
            prop_assert_eq!(&base, &parallel, "SNG diverged at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prefetch_reproduces_plain_losses_bitwise(k in 2usize..6, seed in 0u64..500) {
        // The prefetch executor only reorders *when* transfers are simulated,
        // never what is computed: with a shared seed every epoch loss must
        // match the plain executor bit for bit, dropout included.
        let ds = dataset();
        let mut losses: Vec<Vec<u64>> = Vec::new();
        for prefetch in [false, true] {
            let mut runner = Runner::new(&ds, &config(prefetch), seed);
            losses.push(
                (0..3)
                    .map(|_| {
                        runner
                            .train_epoch_betty(&ds, StrategyKind::Betty, k)
                            .expect("capacity is ample")
                            .loss
                            .to_bits()
                    })
                    .collect(),
            );
        }
        prop_assert_eq!(&losses[0], &losses[1], "prefetch changed the math at k={}", k);
    }
}

/// Tests that mutate the process-global thread override serialize on
/// this lock, so one test's override can't leak into another's
/// pipeline-liveness assertions mid-run.
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The deterministic subset of [`EpochStats`]: everything except
/// wall-clock timings and the plan-ahead accounting extras (staged bytes
/// and overlap are *defined* to differ between a pipelined and a
/// synchronous epoch; they describe where time/memory went, not what was
/// computed).
fn deterministic_stats(stats: &EpochStats) -> Vec<u64> {
    vec![
        stats.loss.to_bits(),
        stats.num_steps as u64,
        stats.max_peak_bytes as u64,
        stats.total_input_nodes as u64,
        stats.total_src_nodes as u64,
        stats.host_bytes as u64,
        stats.oom_retries as u64,
        stats.anomaly_rollbacks as u64,
        stats.injected_faults as u64,
        stats.estimated_peak_bytes as u64,
        stats.estimator_drift.to_bits(),
    ]
}

/// Final parameter bits, for trajectory-equality comparisons.
fn param_bits(runner: &Runner) -> Vec<u32> {
    runner
        .trainer()
        .model()
        .params()
        .iter()
        .flat_map(|p| p.value().data().iter().map(|v| v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The partition-ahead pipeline must be invisible to the math: for
    /// any depth × thread-count combination — including mid-run
    /// evaluation (which resets the pipeline) and injected OOMs (whose
    /// recovery invalidates staged plans and replans synchronously) —
    /// the per-epoch deterministic stats, the validation accuracy, and
    /// every final parameter bit must match the `plan_ahead: 0` run.
    #[test]
    fn plan_ahead_reproduces_synchronous_runs_bitwise(
        seed in 0u64..500,
        inject_oom in (0u8..2).prop_map(|b| b == 1),
    ) {
        let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ds = dataset();
        let fault_plan = inject_oom.then(|| FaultPlan {
            // Global step 1 lands mid-run: its epoch OOMs, rolls back,
            // and recovery escalates K — staged plans must be discarded
            // without perturbing the trajectory.
            oom_steps: vec![1],
            ..FaultPlan::default()
        });
        let run = |depth: usize, threads: usize| {
            betty_runtime::set_thread_override(Some(threads));
            let cfg = ExperimentConfig {
                plan_ahead: depth,
                fault_plan: fault_plan.clone(),
                ..config(true)
            };
            let mut runner = Runner::new(&ds, &cfg, seed);
            let mut log = RecoveryLog::new();
            let mut epochs = Vec::new();
            for _ in 0..3 {
                let (stats, _k) = runner
                    .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
                    .expect("retry budget covers the single injected OOM");
                epochs.push(deterministic_stats(&stats));
            }
            assert_eq!(
                runner.plan_ahead_active(),
                depth > 0 && threads > 1,
                "pipeline liveness must track depth and thread count"
            );
            // Evaluation draws from the sampler stream: it must reset
            // the pipeline and still see identical batches.
            let accuracy = runner.evaluate(&ds, &ds.val_idx).to_bits();
            assert!(!runner.plan_ahead_active(), "evaluation must reset the pipeline");
            for _ in 0..2 {
                let (stats, _k) = runner
                    .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
                    .expect("post-evaluation epochs are fault-free");
                epochs.push(deterministic_stats(&stats));
            }
            let params = param_bits(&runner);
            betty_runtime::set_thread_override(None);
            (epochs, accuracy, params)
        };
        let reference = run(0, 1);
        for depth in [0usize, 1, 3] {
            for threads in [1usize, 4] {
                if depth == 0 && threads == 1 {
                    continue;
                }
                let other = run(depth, threads);
                prop_assert_eq!(
                    &reference, &other,
                    "depth {} × {} threads diverged (oom: {})",
                    depth, threads, inject_oom
                );
            }
        }
    }
}

#[test]
fn epoch_losses_invariant_under_thread_override() {
    // End-to-end determinism across the thread-count axis: planning
    // (parallel restrict), REG construction, and the kernels all route
    // through the shared pool, so overriding its width must not move a
    // single bit of the training trajectory.
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ds = dataset();
    let run = |threads: usize| {
        betty_runtime::set_thread_override(Some(threads));
        let mut runner = Runner::new(&ds, &config(true), 9);
        let losses: Vec<u64> = (0..3)
            .map(|_| {
                runner
                    .train_epoch_betty(&ds, StrategyKind::Betty, 4)
                    .expect("capacity is ample")
                    .loss
                    .to_bits()
            })
            .collect();
        betty_runtime::set_thread_override(None);
        losses
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(8), "8-thread run diverged from serial");
}

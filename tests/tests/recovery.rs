//! Fault injection and checkpointed OOM recovery, end to end: a run whose
//! first step OOMs must finish training through automatic K-escalation,
//! recovery must replay the epoch bit-exactly from its checkpoint, and the
//! whole fault/recovery sequence must be deterministic in the fault seed.

use std::error::Error;

use betty::fit::{fit, fit_with_log, FitConfig};
use betty::{ExperimentConfig, RecoveryLog, RetryPolicy, RunError, Runner, StrategyKind};
use betty_data::{Dataset, DatasetSpec};
use betty_device::{gib, FaultPlan, OomError};
use betty_nn::AggregatorSpec;

fn dataset() -> Dataset {
    DatasetSpec::cora()
        .scaled(0.15)
        .with_feature_dim(24)
        .generate(3)
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        fanouts: vec![5, 10],
        hidden_dim: 24,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.2,
        learning_rate: 5e-3,
        capacity_bytes: gib(8),
        ..ExperimentConfig::default()
    }
}

/// The acceptance scenario: the first training step OOMs (injected), yet
/// `fit` completes by rolling back to the checkpoint and escalating K,
/// logs the retry, and lands within tolerance of the never-faulted run.
#[test]
fn faulted_first_step_recovers_and_matches_clean_accuracy() {
    let ds = dataset();
    let fit_config = FitConfig {
        max_epochs: 10,
        patience: None,
        ..FitConfig::default()
    };

    let mut clean_runner = Runner::new(&ds, &config(), 42);
    let clean = fit(&mut clean_runner, &ds, &fit_config).expect("clean run fits");
    assert!(clean.recovery.is_empty(), "no faults armed, none expected");

    let faulted_config = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            oom_steps: vec![0],
            ..FaultPlan::default()
        }),
        ..config()
    };
    let mut runner = Runner::new(&ds, &faulted_config, 42);
    let report = fit(&mut runner, &ds, &fit_config).expect("recovery must rescue the run");

    assert_eq!(report.epochs_run, 10);
    assert!(
        report.recovery.oom_retries() >= 1,
        "recovery log must record the OOM retry: {}",
        report.recovery.summary()
    );
    assert!(report.recovery.injected_faults() >= 1);
    assert!(!report.recovery.exhausted());
    assert_eq!(report.history[0].oom_retries, 1);
    // Escalation moved epoch 0 to K ≥ 2; gradient accumulation keeps the
    // optimization equivalent, so accuracy stays in family with the
    // clean run.
    let diff = (report.best_val_accuracy - clean.best_val_accuracy).abs();
    assert!(
        diff < 0.15,
        "recovered accuracy {} strays from clean accuracy {}",
        report.best_val_accuracy,
        clean.best_val_accuracy
    );
}

/// The planner's view of capacity can be wrong at runtime: capacity
/// jitter withholds a random slice of the device each step, so the first
/// plan (which fits the estimator) OOMs on the real ledger. Recovery must
/// escalate K against a headroom-shrunk planning capacity until the
/// jittered device fits, and end within tolerance of an unbounded run.
#[test]
fn plan_that_fits_the_estimator_but_not_the_device_is_rescued() {
    let ds = dataset();
    // Size the device a whisker above the K = 1 peak: the planner happily
    // plans one micro-batch…
    let mut probe = Runner::new(&ds, &config(), 42);
    let batch = probe.sample_full_batch(&ds);
    let full_peak = probe
        .plan_fixed(&batch, StrategyKind::Betty, 1)
        .max_estimated_peak();
    let jittered = ExperimentConfig {
        capacity_bytes: full_peak + full_peak / 5,
        // …but the device withholds up to 90% of capacity each step.
        fault_plan: Some(FaultPlan {
            seed: 13,
            capacity_jitter: 0.9,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_retries: 10,
            ..RetryPolicy::default()
        },
        ..config()
    };
    let fit_config = FitConfig {
        max_epochs: 8,
        patience: None,
        ..FitConfig::default()
    };
    let mut runner = Runner::new(&ds, &jittered, 42);
    let report = fit(&mut runner, &ds, &fit_config).expect("escalation must find a fitting K");
    assert!(
        report.recovery.oom_retries() >= 1,
        "the first plan must have OOMed at runtime: {}",
        report.recovery.summary()
    );

    let unbounded = ExperimentConfig {
        capacity_bytes: gib(64),
        ..config()
    };
    let mut unbounded_runner = Runner::new(&ds, &unbounded, 42);
    let baseline = fit(&mut unbounded_runner, &ds, &fit_config).unwrap();
    let diff = (report.best_val_accuracy - baseline.best_val_accuracy).abs();
    assert!(
        diff < 0.15,
        "rescued accuracy {} strays from unbounded accuracy {}",
        report.best_val_accuracy,
        baseline.best_val_accuracy
    );
}

/// Recovery restores parameters, optimizer moments and the dropout RNG
/// from the snapshot, so the recovered epoch's loss is bit-identical to a
/// never-faulted run trained at the same K from the same state.
#[test]
fn recovered_epoch_is_bit_identical_to_unfaulted_run_at_same_k() {
    let ds = dataset();
    let faulted_config = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            oom_steps: vec![0],
            ..FaultPlan::default()
        }),
        ..config()
    };
    let mut faulted = Runner::new(&ds, &faulted_config, 7);
    let mut log = RecoveryLog::new();
    let (stats, k) = faulted
        .train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log)
        .expect("recovers");
    assert!(k >= 2, "escalation must have raised K, got {k}");
    assert_eq!(stats.oom_retries, 1);

    let mut clean = Runner::new(&ds, &config(), 7);
    let clean_stats = clean
        .train_epoch_betty(&ds, StrategyKind::Betty, k)
        .expect("ample capacity");
    assert_eq!(
        stats.loss.to_bits(),
        clean_stats.loss.to_bits(),
        "recovered loss {} != clean loss {} at K={k}",
        stats.loss,
        clean_stats.loss
    );
    assert_eq!(stats.max_peak_bytes, clean_stats.max_peak_bytes);
    assert_eq!(stats.num_steps, clean_stats.num_steps);
}

/// Same seed + same fault plan ⇒ identical fault/recovery sequence and
/// identical training outcome across two independent runs.
#[test]
fn fault_and_recovery_sequence_is_deterministic() {
    let ds = dataset();
    let faulted_config = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            seed: 99,
            oom_steps: vec![0, 3],
            alloc_failure_rate: 0.01,
            capacity_jitter: 0.2,
            transfer_stall_rate: 0.3,
            transfer_stall_sec: 0.01,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        },
        ..config()
    };
    let run = || {
        let mut runner = Runner::new(&ds, &faulted_config, 11);
        let mut log = RecoveryLog::new();
        let mut outcomes = Vec::new();
        for epoch in 0..4 {
            log.set_epoch(epoch);
            match runner.train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log) {
                Ok((stats, k)) => outcomes.push(format!("ok {} K={k}", stats.loss.to_bits())),
                Err(e) => {
                    outcomes.push(format!("err {e}"));
                    break;
                }
            }
        }
        (log, outcomes)
    };
    let (log_a, outcomes_a) = run();
    let (log_b, outcomes_b) = run();
    assert!(
        log_a.oom_retries() >= 1,
        "scenario should trigger at least the scheduled recovery: {}",
        log_a.summary()
    );
    assert_eq!(log_a, log_b, "fault/recovery sequences diverged");
    assert_eq!(outcomes_a, outcomes_b);
}

/// Exhausting the retry budget surfaces the *original* OOM at the root of
/// the error chain, with the log marking the exhaustion.
#[test]
fn retry_exhaustion_preserves_original_oom_in_source_chain() {
    let ds = dataset();
    let hopeless = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            alloc_failure_rate: 1.0,
            ..FaultPlan::default()
        }),
        retry: RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        },
        ..config()
    };
    let mut runner = Runner::new(&ds, &hopeless, 0);
    let mut log = RecoveryLog::new();
    let err = fit_with_log(
        &mut runner,
        &ds,
        &FitConfig {
            max_epochs: 3,
            patience: None,
            ..FitConfig::default()
        },
        &mut log,
    )
    .expect_err("every allocation fails");

    assert!(matches!(err, RunError::RetryExhausted { attempts: 2, .. }));
    assert!(log.exhausted(), "log must flag the exhaustion");
    assert_eq!(log.oom_retries(), 2);

    // Walk the chain down to the device-level OOM that started it all.
    let mut cursor: Option<&(dyn Error + 'static)> = err.source();
    let mut found = None;
    while let Some(e) = cursor {
        if let Some(oom) = e.downcast_ref::<OomError>() {
            found = Some(oom.clone());
        }
        cursor = e.source();
    }
    let oom = found.expect("OomError must sit at the chain root");
    assert!(oom.injected, "the original failure was an injected fault");
}

/// An armed fault plan with every rate at zero is a byte-for-byte no-op:
/// identical losses, identical peak bytes, identical validation accuracy,
/// and an empty recovery log.
#[test]
fn inert_fault_plan_is_byte_for_byte_noop() {
    let ds = dataset();
    let armed_config = ExperimentConfig {
        fault_plan: Some(FaultPlan {
            seed: 1234,
            ..FaultPlan::default()
        }),
        ..config()
    };
    let fit_config = FitConfig {
        max_epochs: 6,
        patience: None,
        ..FitConfig::default()
    };
    let mut plain_runner = Runner::new(&ds, &config(), 5);
    let plain = fit(&mut plain_runner, &ds, &fit_config).unwrap();
    let mut armed_runner = Runner::new(&ds, &armed_config, 5);
    let armed = fit(&mut armed_runner, &ds, &fit_config).unwrap();

    assert!(armed.recovery.is_empty());
    assert_eq!(plain.history.len(), armed.history.len());
    for (p, a) in plain.history.iter().zip(&armed.history) {
        assert_eq!(p.loss.to_bits(), a.loss.to_bits());
        assert_eq!(p.max_peak_bytes, a.max_peak_bytes);
        assert_eq!(p.injected_faults, 0);
        assert_eq!(a.injected_faults, 0);
    }
    assert_eq!(plain.best_val_accuracy, armed.best_val_accuracy);
    assert_eq!(
        plain_runner.evaluate(&ds, &ds.test_idx),
        armed_runner.evaluate(&ds, &ds.test_idx)
    );
}

//! **betty-trace** — the observability layer of the Betty workspace.
//!
//! Training introspection has three ingredients, all recorded here and
//! exported as JSON-lines (one event object per line) plus a
//! human-readable summary:
//!
//! 1. **Spans** ([`SpanRecord`]): timed phases of an epoch/step —
//!    `sample → partition → plan → transfer → forward → backward →
//!    allreduce` — tagged with monotonic epoch/step ids. Compute spans
//!    carry wall-clock durations; transfer/allreduce spans carry the
//!    simulated link seconds the cost models produce.
//! 2. **Memory timeline** ([`MemEvent`], recorded by
//!    `betty_device::Device` into a [`MemTimeline`]): every `alloc`/`free`
//!    appends the running device total, the signed delta, and the
//!    category, so the exact shape of a step's memory curve is
//!    reconstructable. The per-category breakdown *at the global-peak
//!    instant* is captured separately as a [`PeakRecord`].
//! 3. **Estimator drift** ([`DriftRecord`]): per micro-batch, the
//!    analytical peak estimate (Eq. 5) next to the ledger's measured
//!    peak — the signal that tells OOM recovery whether the estimator
//!    can be trusted or K-escalation must compensate.
//!
//! Everything is opt-in: the recorder lives behind an `Option` in the
//! trainer and the timeline behind an `Option` in the device, so a run
//! with tracing disabled executes the exact same instruction stream
//! (losses are bit-identical tracing on or off; this is tested).

#![deny(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Which phase of training a span covers, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Neighbor sampling of the epoch's full training batch.
    Sample,
    /// Batch-level graph partitioning (REG build + cut).
    Partition,
    /// Memory-aware planning (estimation + micro-batch extraction).
    Plan,
    /// Host→device transfer of one micro-batch (simulated seconds).
    Transfer,
    /// Forward pass of one micro-batch.
    Forward,
    /// Backward pass of one micro-batch.
    Backward,
    /// Gradient all-reduce across a simulated device group.
    Allreduce,
    /// An all-reduce retry window: a timed-out sync round plus its
    /// seeded-jitter exponential backoff before the next attempt.
    LinkRetry,
    /// Elastic failover: migrating a lost device's unfinished
    /// micro-batches onto survivors and rebuilding the ring.
    Failover,
    /// Partition-ahead staging window: from the moment a future epoch's
    /// sampling + planning began on a background worker until the epoch
    /// consumed the staged bundle. By construction this window contains
    /// the previous epoch's forward/backward spans — the visible proof
    /// that partition work left the critical path.
    PlanAhead,
    /// Mid-run storage repair: a feature shard failed its payload CRC
    /// and was reconstructed bit-identically from its XOR parity group
    /// (the span's modelled seconds cover the parity/peer reads).
    StorageRepair,
}

impl SpanKind {
    /// Every kind, in pipeline order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::Sample,
        SpanKind::Partition,
        SpanKind::Plan,
        SpanKind::Transfer,
        SpanKind::Forward,
        SpanKind::Backward,
        SpanKind::Allreduce,
        SpanKind::LinkRetry,
        SpanKind::Failover,
        SpanKind::PlanAhead,
        SpanKind::StorageRepair,
    ];

    /// Stable lowercase name used in the JSONL `kind` field.
    pub const fn name(&self) -> &'static str {
        match self {
            SpanKind::Sample => "sample",
            SpanKind::Partition => "partition",
            SpanKind::Plan => "plan",
            SpanKind::Transfer => "transfer",
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::Allreduce => "allreduce",
            SpanKind::LinkRetry => "link_retry",
            SpanKind::Failover => "failover",
            SpanKind::PlanAhead => "plan_ahead",
            SpanKind::StorageRepair => "storage_repair",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Phase this span covers.
    pub kind: SpanKind,
    /// Epoch the span belongs to.
    pub epoch: usize,
    /// Global step id for per-step spans; `None` for epoch-level spans
    /// (sample/partition/plan/allreduce).
    pub step: Option<usize>,
    /// Seconds since the recorder was created when the span began.
    pub start_sec: f64,
    /// Span duration in seconds (wall-clock for compute spans, simulated
    /// link time for transfer/allreduce spans).
    pub dur_sec: f64,
}

/// One device-memory ledger event: an alloc (positive delta) or free
/// (negative delta) and the running total right after it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemEvent {
    /// Monotonic sequence number within the timeline.
    pub seq: u64,
    /// Seconds since the timeline was enabled.
    pub at_sec: f64,
    /// Bytes in use on the device after this event.
    pub total_bytes: usize,
    /// Signed size of the event (+alloc / −free); a bulk `free_all` is
    /// one event with the whole released size.
    pub delta_bytes: i64,
    /// Stable category name (`betty_device::MemoryCategory::name`), or
    /// `"free_all"` for a bulk release.
    pub category: &'static str,
}

/// Append-only device-memory timeline, filled by
/// `betty_device::Device` when its timeline is enabled.
#[derive(Debug, Clone)]
pub struct MemTimeline {
    origin: Instant,
    next_seq: u64,
    events: Vec<MemEvent>,
}

impl Default for MemTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTimeline {
    /// An empty timeline whose clock starts now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            next_seq: 0,
            events: Vec::new(),
        }
    }

    /// Appends one ledger event, stamping the sequence number and clock.
    pub fn record(&mut self, total_bytes: usize, delta_bytes: i64, category: &'static str) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(MemEvent {
            seq,
            at_sec: self.origin.elapsed().as_secs_f64(),
            total_bytes,
            delta_bytes,
            category,
        });
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// Removes and returns the recorded events; sequence numbers keep
    /// growing across drains.
    pub fn drain(&mut self) -> Vec<MemEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are currently held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-category breakdown captured at the instant a step's global peak
/// was reached (so the parts always sum to exactly the peak).
#[derive(Debug, Clone, PartialEq)]
pub struct PeakRecord {
    /// Epoch of the step.
    pub epoch: usize,
    /// Global step id.
    pub step: usize,
    /// The step's global peak, in bytes.
    pub peak_bytes: usize,
    /// Bytes per category at the peak instant (stable category names).
    pub breakdown: Vec<(&'static str, usize)>,
}

/// One micro-batch's estimator-vs-ledger comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRecord {
    /// Epoch of the step.
    pub epoch: usize,
    /// Global step id.
    pub step: usize,
    /// The planner's estimated peak ([`peak_bytes`](DriftRecord::estimated_bytes)
    /// of Eq. 5), in bytes.
    pub estimated_bytes: usize,
    /// The device ledger's measured step peak, in bytes.
    pub measured_bytes: usize,
}

impl DriftRecord {
    /// Measured over estimated: `1.0` is a perfect estimate, `< 1.0` a
    /// safe overestimate, `> 1.0` an underestimate (the dangerous
    /// direction — the plan may not actually fit).
    pub fn ratio(&self) -> f64 {
        self.measured_bytes as f64 / (self.estimated_bytes.max(1)) as f64
    }

    /// Whether the estimate was admissible (never below the measurement).
    pub fn admissible(&self) -> bool {
        self.estimated_bytes >= self.measured_bytes
    }
}

/// One epoch's tensor-workspace pool counters: how many buffer requests
/// the trainer's [`betty_tensor::BufferPool`] served from recycled
/// storage (hits) versus fresh heap allocations (misses), and how many
/// bytes the hits recycled. A warm steady state shows misses pinned at 0
/// while hits and recycled bytes grow every epoch.
///
/// [`betty_tensor::BufferPool`]: https://docs.rs/betty-tensor
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// Global step id current when the epoch finished.
    pub step: usize,
    /// Pool requests served from recycled buffers this epoch.
    pub hits: u64,
    /// Pool requests that fell through to the heap this epoch.
    pub misses: u64,
    /// Bytes served from recycled buffers this epoch.
    pub bytes_recycled: u64,
}

impl AllocRecord {
    /// Fraction of requests served from the pool; `0.0` when nothing was
    /// requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One epoch's feature-store access counters: how many gathered rows hit
/// the resident set, how many had to page their shard in from disk, and
/// the disk traffic that caused. The dense in-memory backend scores every
/// row as a hit, so misses/pages are the out-of-core signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureStoreRecord {
    /// Global step id current when the epoch finished.
    pub step: usize,
    /// Rows served from memory this epoch.
    pub hits: u64,
    /// Rows whose shard had to be read from disk first.
    pub misses: u64,
    /// Shard loads performed this epoch.
    pub pages_in: u64,
    /// Shard payload bytes read from disk this epoch.
    pub page_in_bytes: u64,
}

impl FeatureStoreRecord {
    /// Fraction of row requests served without touching disk; `1.0` when
    /// nothing was requested (an idle store never misses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One numeric anomaly caught by the trainer's sentinel: a NaN/Inf loss
/// or gradient detected (and aborted) before it could reach the
/// optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyRecord {
    /// Epoch of the step.
    pub epoch: usize,
    /// Global step id at which the anomaly was detected.
    pub step: usize,
    /// What was non-finite (e.g. `"non-finite loss"`).
    pub kind: String,
    /// Whether a fault plan injected the anomaly (vs genuine divergence).
    pub injected: bool,
}

/// One injected fault forwarded from a drained fault injector, as a
/// pair of stable strings (the trace crate is below the device crate in
/// the dependency order, so it cannot name `FaultEvent` directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Epoch the fault was drained in.
    pub epoch: usize,
    /// Stable kind slug (e.g. `"alloc_failure"`, `"link_stall"`).
    pub kind: String,
    /// Human-readable detail of the event.
    pub detail: String,
}

/// The trace of one training run: spans, memory events, peak snapshots,
/// drift records, caught numeric anomalies, and injected faults, all
/// stamped with monotonic epoch/step ids.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    origin: Instant,
    epoch: usize,
    spans: Vec<SpanRecord>,
    mem: Vec<(usize, MemEvent)>,
    peaks: Vec<PeakRecord>,
    drift: Vec<DriftRecord>,
    allocs: Vec<(usize, AllocRecord)>,
    features: Vec<(usize, FeatureStoreRecord)>,
    anomalies: Vec<AnomalyRecord>,
    faults: Vec<FaultRecord>,
    /// Compute backend and storage precision of the run, when the trainer
    /// stamped them (`("simd", "bf16")`-style pairs).
    run_context: Option<(String, String)>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An empty recorder whose clock starts now, at epoch 0.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            epoch: 0,
            spans: Vec::new(),
            mem: Vec::new(),
            peaks: Vec::new(),
            drift: Vec::new(),
            allocs: Vec::new(),
            features: Vec::new(),
            anomalies: Vec::new(),
            faults: Vec::new(),
            run_context: None,
        }
    }

    /// Stamps the run's compute backend and storage precision; emitted as
    /// the leading `run` JSON line and echoed in the summary so traces
    /// from different backend/dtype configurations are distinguishable.
    pub fn set_run_context(&mut self, backend: impl Into<String>, precision: impl Into<String>) {
        self.run_context = Some((backend.into(), precision.into()));
    }

    /// The stamped `(backend, precision)` pair, if any.
    pub fn run_context(&self) -> Option<(&str, &str)> {
        self.run_context
            .as_ref()
            .map(|(b, p)| (b.as_str(), p.as_str()))
    }

    /// Sets the epoch stamped onto subsequently recorded events.
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// The epoch currently being stamped.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Seconds elapsed since the recorder was created — capture this
    /// before timed work and pass it to [`TraceRecorder::record_span`].
    pub fn now_sec(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Converts an [`Instant`] captured elsewhere (e.g. on a background
    /// pipeline worker) into seconds on this recorder's clock. Instants
    /// predating the recorder clamp to `0.0`.
    pub fn sec_at(&self, at: Instant) -> f64 {
        at.checked_duration_since(self.origin)
            .map_or(0.0, |d| d.as_secs_f64())
    }

    /// Records a span at the current epoch.
    pub fn record_span(&mut self, kind: SpanKind, step: Option<usize>, start_sec: f64, dur_sec: f64) {
        self.spans.push(SpanRecord {
            kind,
            epoch: self.epoch,
            step,
            start_sec,
            dur_sec,
        });
    }

    /// Attributes drained device-timeline events to a step.
    pub fn record_mem_events(&mut self, step: usize, events: Vec<MemEvent>) {
        self.mem.extend(events.into_iter().map(|e| (step, e)));
    }

    /// Records a step's peak and its at-peak category breakdown.
    pub fn record_peak(&mut self, step: usize, peak_bytes: usize, breakdown: Vec<(&'static str, usize)>) {
        self.peaks.push(PeakRecord {
            epoch: self.epoch,
            step,
            peak_bytes,
            breakdown,
        });
    }

    /// Records one micro-batch's estimated-vs-measured peak.
    pub fn record_drift(&mut self, step: usize, estimated_bytes: usize, measured_bytes: usize) {
        self.drift.push(DriftRecord {
            epoch: self.epoch,
            step,
            estimated_bytes,
            measured_bytes,
        });
    }

    /// Records one epoch's tensor-workspace pool counters at the current
    /// epoch, keyed by the global step id the epoch ended on.
    pub fn record_alloc(&mut self, step: usize, hits: u64, misses: u64, bytes_recycled: u64) {
        self.allocs.push((
            self.epoch,
            AllocRecord {
                step,
                hits,
                misses,
                bytes_recycled,
            },
        ));
    }

    /// Records one epoch's feature-store counters at the current epoch,
    /// keyed by the global step id the epoch ended on.
    pub fn record_featurestore(
        &mut self,
        step: usize,
        hits: u64,
        misses: u64,
        pages_in: u64,
        page_in_bytes: u64,
    ) {
        self.features.push((
            self.epoch,
            FeatureStoreRecord {
                step,
                hits,
                misses,
                pages_in,
                page_in_bytes,
            },
        ));
    }

    /// Records a numeric anomaly the sentinel caught at the current epoch.
    pub fn record_anomaly(&mut self, step: usize, kind: String, injected: bool) {
        self.anomalies.push(AnomalyRecord {
            epoch: self.epoch,
            step,
            kind,
            injected,
        });
    }

    /// Records one drained fault-injector event at the current epoch, as
    /// a stable kind slug plus a human-readable detail line.
    pub fn record_fault(&mut self, kind: impl Into<String>, detail: impl Into<String>) {
        self.faults.push(FaultRecord {
            epoch: self.epoch,
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// All forwarded fault events, in record order.
    pub fn fault_records(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// All recorded spans, in record order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All caught numeric anomalies, in record order.
    pub fn anomalies(&self) -> &[AnomalyRecord] {
        &self.anomalies
    }

    /// All step-attributed memory events, in record order.
    pub fn mem_events(&self) -> &[(usize, MemEvent)] {
        &self.mem
    }

    /// All at-peak breakdown snapshots, in record order.
    pub fn peaks(&self) -> &[PeakRecord] {
        &self.peaks
    }

    /// All estimator-drift records, in record order.
    pub fn drift_records(&self) -> &[DriftRecord] {
        &self.drift
    }

    /// All per-epoch pool-counter records as `(epoch, record)` pairs, in
    /// record order.
    pub fn alloc_records(&self) -> &[(usize, AllocRecord)] {
        &self.allocs
    }

    /// All per-epoch feature-store records as `(epoch, record)` pairs, in
    /// record order.
    pub fn featurestore_records(&self) -> &[(usize, FeatureStoreRecord)] {
        &self.features
    }

    /// Worst (largest) measured/estimated ratio over every drift record;
    /// `0.0` when nothing was recorded.
    pub fn max_drift_ratio(&self) -> f64 {
        self.drift.iter().map(DriftRecord::ratio).fold(0.0, f64::max)
    }

    /// Whether every recorded estimate was admissible (≥ measured).
    pub fn all_admissible(&self) -> bool {
        self.drift.iter().all(DriftRecord::admissible)
    }

    /// Total recorded events of every type.
    pub fn len(&self) -> usize {
        self.spans.len()
            + self.mem.len()
            + self.peaks.len()
            + self.drift.len()
            + self.allocs.len()
            + self.features.len()
            + self.anomalies.len()
            + self.faults.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the whole trace as JSON-lines: one object per event,
    /// `span` events first, then `mem`, `peak`, `drift`, and `alloc`
    /// events, each in record order. Every line is a self-contained JSON
    /// object with a `type` discriminator (see DESIGN.md "Observability"
    /// for the schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some((backend, precision)) = &self.run_context {
            out.push_str(&format!(
                "{{\"type\":\"run\",\"backend\":\"{}\",\"precision\":\"{}\"}}\n",
                jstr(backend),
                jstr(precision),
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"kind\":\"{}\",\"epoch\":{},\"step\":{},\"start_sec\":{},\"dur_sec\":{}}}\n",
                s.kind.name(),
                s.epoch,
                opt_usize(s.step),
                jnum(s.start_sec),
                jnum(s.dur_sec),
            ));
        }
        for (step, e) in &self.mem {
            out.push_str(&format!(
                "{{\"type\":\"mem\",\"step\":{step},\"seq\":{},\"at_sec\":{},\"total_bytes\":{},\"delta_bytes\":{},\"category\":\"{}\"}}\n",
                e.seq,
                jnum(e.at_sec),
                e.total_bytes,
                e.delta_bytes,
                e.category,
            ));
        }
        for p in &self.peaks {
            let breakdown: Vec<String> = p
                .breakdown
                .iter()
                .map(|(name, bytes)| format!("\"{name}\":{bytes}"))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"peak\",\"epoch\":{},\"step\":{},\"peak_bytes\":{},\"breakdown\":{{{}}}}}\n",
                p.epoch,
                p.step,
                p.peak_bytes,
                breakdown.join(","),
            ));
        }
        for d in &self.drift {
            out.push_str(&format!(
                "{{\"type\":\"drift\",\"epoch\":{},\"step\":{},\"estimated_bytes\":{},\"measured_bytes\":{},\"ratio\":{}}}\n",
                d.epoch,
                d.step,
                d.estimated_bytes,
                d.measured_bytes,
                jnum(d.ratio()),
            ));
        }
        for (epoch, a) in &self.allocs {
            out.push_str(&format!(
                "{{\"type\":\"alloc\",\"epoch\":{epoch},\"step\":{},\"hits\":{},\"misses\":{},\"bytes_recycled\":{},\"hit_rate\":{}}}\n",
                a.step,
                a.hits,
                a.misses,
                a.bytes_recycled,
                jnum(a.hit_rate()),
            ));
        }
        for (epoch, r) in &self.features {
            out.push_str(&format!(
                "{{\"type\":\"featurestore\",\"epoch\":{epoch},\"step\":{},\"hits\":{},\"misses\":{},\"pages_in\":{},\"page_in_bytes\":{},\"hit_rate\":{}}}\n",
                r.step,
                r.hits,
                r.misses,
                r.pages_in,
                r.page_in_bytes,
                jnum(r.hit_rate()),
            ));
        }
        for a in &self.anomalies {
            out.push_str(&format!(
                "{{\"type\":\"anomaly\",\"epoch\":{},\"step\":{},\"kind\":\"{}\",\"injected\":{}}}\n",
                a.epoch, a.step, a.kind, a.injected,
            ));
        }
        for fault in &self.faults {
            out.push_str(&format!(
                "{{\"type\":\"fault\",\"epoch\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}\n",
                fault.epoch,
                jstr(&fault.kind),
                jstr(&fault.detail),
            ));
        }
        out
    }

    /// Writes [`TraceRecorder::to_jsonl`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Human-readable multi-line summary: per-kind span counts and total
    /// durations, memory-event count, the worst observed peak, and the
    /// estimator-drift envelope.
    pub fn summary(&self) -> String {
        let mut out = String::from("trace summary:");
        if let Some((backend, precision)) = &self.run_context {
            out.push_str(&format!("\n  run        backend {backend}, precision {precision}"));
        }
        for kind in SpanKind::ALL {
            let (count, total): (usize, f64) = self
                .spans
                .iter()
                .filter(|s| s.kind == kind)
                .fold((0, 0.0), |(c, t), s| (c + 1, t + s.dur_sec));
            if count > 0 {
                out.push_str(&format!(
                    "\n  {:<10} {count:>6} spans  {total:>10.4}s total",
                    kind.name()
                ));
            }
        }
        out.push_str(&format!("\n  memory     {:>6} ledger events", self.mem.len()));
        if let Some(worst) = self.peaks.iter().max_by_key(|p| p.peak_bytes) {
            out.push_str(&format!(
                "\n  peak      {} bytes at epoch {} step {} (",
                worst.peak_bytes, worst.epoch, worst.step
            ));
            let parts: Vec<String> = worst
                .breakdown
                .iter()
                .filter(|(_, b)| *b > 0)
                .map(|(n, b)| format!("{n} {b}"))
                .collect();
            out.push_str(&parts.join(", "));
            out.push(')');
        }
        if !self.drift.is_empty() {
            let worst = self
                .drift
                .iter()
                .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
                .expect("non-empty");
            out.push_str(&format!(
                "\n  drift     {} records, worst measured/estimated {:.4} at epoch {} step {} ({})",
                self.drift.len(),
                worst.ratio(),
                worst.epoch,
                worst.step,
                if self.all_admissible() {
                    "all estimates admissible"
                } else {
                    "UNDERESTIMATES present"
                }
            ));
        }
        if !self.allocs.is_empty() {
            let (hits, misses, bytes): (u64, u64, u64) = self
                .allocs
                .iter()
                .fold((0, 0, 0), |(h, m, b), (_, a)| {
                    (h + a.hits, m + a.misses, b + a.bytes_recycled)
                });
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            out.push_str(&format!(
                "\n  alloc     {} epochs, pool {hits} hits / {misses} misses ({:.1}% hit rate), {bytes} bytes recycled",
                self.allocs.len(),
                rate * 100.0,
            ));
        }
        if !self.features.is_empty() {
            let (hits, misses, pages, bytes): (u64, u64, u64, u64) =
                self.features.iter().fold((0, 0, 0, 0), |(h, m, p, b), (_, r)| {
                    (h + r.hits, m + r.misses, p + r.pages_in, b + r.page_in_bytes)
                });
            let total = hits + misses;
            let rate = if total == 0 {
                1.0
            } else {
                hits as f64 / total as f64
            };
            out.push_str(&format!(
                "\n  features  {} epochs, {hits} hits / {misses} misses ({:.1}% hit rate), {pages} pages in, {bytes} bytes read",
                self.features.len(),
                rate * 100.0,
            ));
        }
        if !self.anomalies.is_empty() {
            let injected = self.anomalies.iter().filter(|a| a.injected).count();
            out.push_str(&format!(
                "\n  anomaly   {} caught ({injected} injected), first at epoch {} step {} ({})",
                self.anomalies.len(),
                self.anomalies[0].epoch,
                self.anomalies[0].step,
                self.anomalies[0].kind,
            ));
        }
        if !self.faults.is_empty() {
            out.push_str(&format!(
                "\n  fault     {} injected events forwarded, first at epoch {} ({})",
                self.faults.len(),
                self.faults[0].epoch,
                self.faults[0].kind,
            ));
        }
        out
    }
}

/// Formats an optional step id as a JSON value (`null` when absent).
fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (non-finite values become `0`,
/// which JSON cannot represent).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Validates that `input` is well-formed JSON-lines: every non-empty line
/// must parse as a standalone JSON value. Returns the number of lines
/// validated.
///
/// This is a deliberately minimal structural parser (objects, arrays,
/// strings with escapes, numbers, booleans, null) so schema checks work
/// without a JSON dependency — CI's trace-smoke job and the integration
/// tests both run exported traces through it.
///
/// # Errors
///
/// Returns `(line_number, message)` for the first malformed line
/// (1-based).
pub fn validate_jsonl(input: &str) -> Result<usize, (usize, String)> {
    let mut lines = 0;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = JsonParser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value().map_err(|e| (i + 1, e))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err((i + 1, format!("trailing bytes at offset {}", p.pos)));
        }
        lines += 1;
    }
    Ok(lines)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    // Any single escaped byte is fine for validation
                    // purposes (\uXXXX consumes its hex digits below).
                    match self.peek() {
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err("bad \\u escape".to_string()),
                                }
                            }
                        }
                        Some(_) => self.pos += 1,
                        None => return Err("dangling escape".to_string()),
                    }
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad fraction at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad exponent at offset {start}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_context_is_stamped_into_jsonl_and_summary() {
        let mut t = TraceRecorder::new();
        assert_eq!(t.run_context(), None);
        t.set_run_context("simd", "bf16");
        assert_eq!(t.run_context(), Some(("simd", "bf16")));
        let jsonl = t.to_jsonl();
        assert!(
            jsonl.starts_with("{\"type\":\"run\",\"backend\":\"simd\",\"precision\":\"bf16\"}\n"),
            "{jsonl}"
        );
        validate_jsonl(&jsonl).expect("run line must be valid JSON");
        assert!(t.summary().contains("backend simd, precision bf16"));
        // The context is metadata, not an event.
        assert!(t.is_empty());
    }

    #[test]
    fn recorder_round_trip_and_jsonl_schema() {
        let mut t = TraceRecorder::new();
        assert!(t.is_empty());
        t.set_epoch(2);
        t.record_span(SpanKind::Sample, None, 0.0, 0.25);
        t.record_span(SpanKind::Forward, Some(7), 0.3, 0.1);
        t.record_mem_events(
            7,
            vec![MemEvent {
                seq: 0,
                at_sec: 0.31,
                total_bytes: 128,
                delta_bytes: 128,
                category: "blocks",
            }],
        );
        t.record_peak(7, 128, vec![("blocks", 128), ("labels", 0)]);
        t.record_drift(7, 150, 128);
        t.record_alloc(7, 30, 10, 4096);
        t.record_anomaly(8, "non-finite loss".to_string(), true);
        assert_eq!(t.len(), 7);
        assert_eq!(t.anomalies().len(), 1);
        assert_eq!(t.anomalies()[0].epoch, 2);
        assert_eq!(t.spans()[0].epoch, 2);
        assert_eq!(t.spans()[1].step, Some(7));
        assert!((t.max_drift_ratio() - 128.0 / 150.0).abs() < 1e-12);
        assert!(t.all_admissible());

        let jsonl = t.to_jsonl();
        let lines = validate_jsonl(&jsonl).expect("exported trace must be valid JSONL");
        assert_eq!(lines, 7);
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"kind\":\"sample\""));
        assert!(jsonl.contains("\"step\":null"));
        assert!(jsonl.contains("\"type\":\"mem\""));
        assert!(jsonl.contains("\"type\":\"peak\""));
        assert!(jsonl.contains("\"type\":\"drift\""));
        assert!(jsonl.contains("\"type\":\"alloc\""));
        assert!(jsonl.contains("\"bytes_recycled\":4096"));
        assert!(jsonl.contains("\"type\":\"anomaly\""));
        assert!(jsonl.contains("\"injected\":true"));

        let summary = t.summary();
        assert!(summary.contains("sample"), "{summary}");
        assert!(summary.contains("drift"), "{summary}");
        assert!(summary.contains("all estimates admissible"), "{summary}");
        assert!(summary.contains("bytes recycled"), "{summary}");
        assert!(summary.contains("1 caught (1 injected)"), "{summary}");
    }

    #[test]
    fn alloc_records_track_epoch_and_hit_rate() {
        let mut t = TraceRecorder::new();
        t.set_epoch(3);
        t.record_alloc(12, 90, 10, 1 << 20);
        let (epoch, rec) = t.alloc_records()[0];
        assert_eq!(epoch, 3);
        assert_eq!(rec.step, 12);
        assert!((rec.hit_rate() - 0.9).abs() < 1e-12);
        let empty = AllocRecord {
            step: 0,
            hits: 0,
            misses: 0,
            bytes_recycled: 0,
        };
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn featurestore_records_export_and_summarize() {
        let mut t = TraceRecorder::new();
        t.set_epoch(2);
        t.record_featurestore(11, 75, 25, 5, 10_240);
        let (epoch, rec) = t.featurestore_records()[0];
        assert_eq!(epoch, 2);
        assert_eq!(rec.step, 11);
        assert!((rec.hit_rate() - 0.75).abs() < 1e-12);
        let idle = FeatureStoreRecord {
            step: 0,
            hits: 0,
            misses: 0,
            pages_in: 0,
            page_in_bytes: 0,
        };
        assert_eq!(idle.hit_rate(), 1.0, "an idle store never misses");
        assert_eq!(t.len(), 1);
        let jsonl = t.to_jsonl();
        validate_jsonl(&jsonl).expect("featurestore lines must be valid JSONL");
        assert!(jsonl.contains("\"type\":\"featurestore\""));
        assert!(jsonl.contains("\"pages_in\":5"));
        assert!(jsonl.contains("\"page_in_bytes\":10240"));
        let summary = t.summary();
        assert!(summary.contains("features"), "{summary}");
        assert!(summary.contains("75.0% hit rate"), "{summary}");
    }

    #[test]
    fn drift_ratio_flags_underestimates() {
        let d = DriftRecord {
            epoch: 0,
            step: 0,
            estimated_bytes: 100,
            measured_bytes: 150,
        };
        assert!(!d.admissible());
        assert!((d.ratio() - 1.5).abs() < 1e-12);
        let mut t = TraceRecorder::new();
        t.record_drift(0, 100, 150);
        assert!(!t.all_admissible());
        assert!(t.summary().contains("UNDERESTIMATES"));
        // Zero estimate never divides by zero.
        let z = DriftRecord {
            epoch: 0,
            step: 0,
            estimated_bytes: 0,
            measured_bytes: 5,
        };
        assert!(z.ratio().is_finite());
    }

    #[test]
    fn timeline_sequences_and_drains() {
        let mut tl = MemTimeline::new();
        assert!(tl.is_empty());
        tl.record(100, 100, "parameters");
        tl.record(40, -60, "free_all");
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.events()[0].seq, 0);
        assert_eq!(tl.events()[1].delta_bytes, -60);
        let drained = tl.drain();
        assert_eq!(drained.len(), 2);
        assert!(tl.is_empty());
        tl.record(0, -40, "free_all");
        assert_eq!(tl.events()[0].seq, 2, "sequence survives draining");
    }

    #[test]
    fn validator_accepts_good_and_rejects_bad() {
        assert_eq!(
            validate_jsonl("{\"a\":1}\n[1,2,3]\n\"x\\\"y\\u00e9\"\n-1.5e-3\ntrue\nnull\n").unwrap(),
            6
        );
        assert_eq!(validate_jsonl("\n\n").unwrap(), 0);
        assert!(validate_jsonl("{\"a\":}").is_err());
        assert!(validate_jsonl("{\"a\":1,}").is_err());
        assert!(validate_jsonl("[1,2").is_err());
        assert!(validate_jsonl("\"unterminated").is_err());
        assert!(validate_jsonl("1.").is_err());
        assert!(validate_jsonl("{} extra").is_err());
        let err = validate_jsonl("{\"ok\":1}\nnot json").unwrap_err();
        assert_eq!(err.0, 2, "error names the offending line");
    }

    #[test]
    fn span_kind_names_are_stable() {
        assert_eq!(SpanKind::ALL.len(), 11);
        for kind in SpanKind::ALL {
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn sec_at_maps_instants_onto_the_recorder_clock() {
        let tr = TraceRecorder::new();
        let before = Instant::now() - std::time::Duration::from_secs(60);
        assert_eq!(tr.sec_at(before), 0.0, "pre-origin instants clamp to zero");
        let later = Instant::now() + std::time::Duration::from_millis(50);
        let sec = tr.sec_at(later);
        assert!(sec > 0.0 && sec < 60.0, "{sec}");
    }

    #[test]
    fn fault_records_round_trip_through_jsonl_and_summary() {
        let mut tr = TraceRecorder::new();
        tr.set_epoch(2);
        tr.record_fault("link_stall", "0.250s stall on all-reduce round 3");
        tr.record_fault("device_fail", "device 1 failed after 2 \"steps\"");
        assert_eq!(tr.fault_records().len(), 2);
        assert_eq!(tr.len(), 2);
        let jsonl = tr.to_jsonl();
        assert_eq!(validate_jsonl(&jsonl).unwrap(), 2, "{jsonl}");
        assert!(jsonl.contains("\"type\":\"fault\""), "{jsonl}");
        assert!(jsonl.contains("\\\"steps\\\""), "quotes must be escaped: {jsonl}");
        let summary = tr.summary();
        assert!(summary.contains("2 injected events forwarded"), "{summary}");
        assert!(summary.contains("epoch 2"), "{summary}");
    }
}

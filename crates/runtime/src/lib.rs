//! Deterministic scoped-thread helpers shared by Betty's parallel kernels.
//!
//! Every parallel path in the workspace (the sharded SpGEMM behind REG
//! construction, concurrent micro-batch materialization, and the dense
//! matmul kernels) goes through this crate so that thread-count policy
//! lives in exactly one place and every kernel obeys the same contract:
//!
//! **bit-identical output regardless of thread count.**
//!
//! The contract is enforced structurally, not by luck: work is split into
//! contiguous shards, each worker writes only to its own shard-local
//! buffer, and shard results are merged back in shard order on the calling
//! thread. No atomics-ordered reductions, no first-come-first-served
//! queues — the merge order is a pure function of the input size and the
//! shard count, and per-element arithmetic inside a shard is the same
//! loop the serial path runs.
//!
//! Thread-count resolution (highest priority first):
//!
//! 1. a process-wide override installed via [`set_thread_override`]
//!    (the CLI's `--threads` flag),
//! 2. the `BETTY_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`], capped at
//!    [`MAX_DEFAULT_THREADS`].
//!
//! `BETTY_THREADS=1` (or `--threads 1`) runs every kernel on the calling
//! thread with zero spawns — exactly the historical serial behaviour.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Upper bound on the automatically detected thread count.
///
/// Betty's kernels operate on batches that rarely profit from more than a
/// handful of cores; past this point scoped-spawn overhead dominates.
/// Explicit overrides (`--threads` / `BETTY_THREADS`) are *not* capped.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Process-wide thread override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide thread-count override.
///
/// Takes precedence over `BETTY_THREADS` and auto-detection. `Some(0)` is
/// treated as `None`. Used by the CLI's `--threads` flag; tests may use it
/// to pin determinism checks to a specific worker count.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the number of worker threads parallel kernels should use.
///
/// See the crate docs for the resolution order. Always returns at least 1.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("BETTY_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Splits `0..n` into at most `shards` contiguous, near-equal ranges.
///
/// Deterministic in `(n, shards)`; empty ranges are never produced, so the
/// returned vector has `min(shards, n)` entries (zero when `n == 0`).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(n);
    let mut out = Vec::with_capacity(shards);
    if n == 0 {
        return out;
    }
    let base = n / shards;
    let extra = n % shards;
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..costs.len()` into at most `shards` contiguous ranges whose
/// summed `costs` are as balanced as a greedy prefix walk can make them.
///
/// Used by kernels whose per-row work is skewed (e.g. power-law degree
/// distributions in the REG SpGEMM): equal-index shards would leave most
/// workers idle behind one hub-heavy shard. Deterministic in the inputs.
pub fn shard_ranges_weighted(costs: &[usize], shards: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    let shards = shards.max(1).min(n);
    if n == 0 {
        return Vec::new();
    }
    if shards == 1 {
        // One shard covering every index (not an unrolled 0..n sequence).
        return std::iter::once(0..n).collect();
    }
    let total: usize = costs.iter().sum();
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut spent = 0usize;
    for s in 0..shards {
        if start == n {
            break;
        }
        let remaining_shards = shards - s;
        // Leave at least one row per remaining shard.
        let hard_end = n - (remaining_shards - 1);
        let target = (total - spent) / remaining_shards;
        let mut end = start;
        let mut acc = 0usize;
        while end < hard_end && (end == start || acc + costs[end] <= target) {
            acc += costs[end];
            end += 1;
        }
        out.push(start..end);
        spent += acc;
        start = end;
    }
    if start < n {
        // Fold any tail into the last range (can happen with zero costs).
        let last = out.len() - 1;
        out[last].end = n;
    }
    out
}

/// Runs `f(shard_index, range)` over the given contiguous ranges, on
/// `threads` scoped workers, and returns the results **in shard order**.
///
/// With `threads <= 1` or a single range, everything runs inline on the
/// calling thread — no spawns, byte-for-byte the serial execution.
pub fn map_ranges<T, F>(ranges: Vec<Range<usize>>, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if threads <= 1 || ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(s, r)| f(s, r))
            .collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (s, r)) in slots.iter_mut().zip(ranges.into_iter().enumerate()) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(s, r));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("shard worker completed"))
        .collect()
}

/// Shards `0..n` evenly across `threads` workers and maps each shard with
/// `f(shard_index, range)`, returning results in shard order.
///
/// Convenience wrapper over [`shard_ranges`] + [`map_ranges`].
pub fn map_shards<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_ranges(shard_ranges(n, threads), threads, f)
}

/// Computes `f(i)` for every `i in 0..n` on up to `threads` workers and
/// returns the results **in index order**.
///
/// The index space is split into contiguous shards; each worker evaluates
/// its shard left-to-right into a private buffer, and buffers are
/// concatenated in shard order — so the output is the same `Vec` the
/// serial loop `(0..n).map(f).collect()` produces, for any thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    map_shards(n, threads, |_, range| range.map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of background worker threads executing boxed jobs.
///
/// Unlike the scoped helpers above — which exist for *synchronous* fan-out
/// with an in-order merge — the pool runs fire-and-forget work items that
/// outlive the submitting call (e.g. the partition-ahead pipeline staging
/// the next epoch's plan while the current one trains). Jobs are pulled
/// from a single queue in submission order, but nothing about *completion*
/// order is guaranteed; callers needing deterministic consumption pair the
/// pool with an [`OrderedQueue`].
///
/// Dropping the pool closes the job channel, lets every already-submitted
/// job finish, and joins the workers.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads.max(1)` workers.
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Holding the lock while blocked in `recv` is fine: the
                    // holder releases it the moment a job arrives, before
                    // running the job, so workers execute concurrently.
                    let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed and drained
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; it runs as soon as a worker is free. Jobs submitted
    /// before drop are always executed.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let _ = self
            .tx
            .as_ref()
            .expect("pool channel open until drop")
            .send(Box::new(job));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct OrderedQueueState<T> {
    items: BTreeMap<usize, T>,
    /// Once set, no index at or past this limit will ever be pushed;
    /// indices below it are still in flight and worth blocking for.
    close_limit: Option<usize>,
}

/// A blocking index-ordered handoff queue.
///
/// Producers [`push`](OrderedQueue::push) values tagged with a monotone
/// index in *any* completion order; the consumer [`pop`](OrderedQueue::pop)s
/// them strictly in index order, blocking until the requested index arrives
/// — the same consume-in-index-order discipline [`parallel_map`] enforces
/// with its shard-order merge, extended to asynchronous producers.
pub struct OrderedQueue<T> {
    state: Mutex<OrderedQueueState<T>>,
    ready: Condvar,
}

impl<T> Default for OrderedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for OrderedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedQueue").finish_non_exhaustive()
    }
}

impl<T> OrderedQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(OrderedQueueState {
                items: BTreeMap::new(),
                close_limit: None,
            }),
            ready: Condvar::new(),
        }
    }

    /// Delivers the value for `index`, waking a consumer blocked on it.
    pub fn push(&self, index: usize, value: T) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.items.insert(index, value);
        self.ready.notify_all();
    }

    /// Declares that no index at or past `limit` will ever be pushed.
    /// Indices below `limit` may still arrive (and consumers keep blocking
    /// for them); a `pop` at or past `limit` returns `None` immediately.
    pub fn close_at(&self, limit: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.close_limit = Some(limit);
        self.ready.notify_all();
    }

    /// Blocks until the value for `index` is available and returns it, or
    /// returns `None` once the queue is closed below `index`.
    pub fn pop(&self, index: usize) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = state.items.remove(&index) {
                return Some(value);
            }
            if state.close_limit.is_some_and(|limit| index >= limit) {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of delivered-but-unconsumed values.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether no delivered value is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(n, shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start, "empty shard for n={n} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn weighted_shards_cover_exactly_once_and_balance_hubs() {
        let costs = vec![1usize, 1, 1, 1, 100, 1, 1, 1];
        let ranges = shard_ranges_weighted(&costs, 4);
        let mut next = 0usize;
        for r in &ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next, costs.len());
        // The hub row (index 4) should sit alone-ish rather than dragging
        // every following row into its shard.
        let hub_shard = ranges.iter().find(|r| r.contains(&4)).unwrap();
        assert!(hub_shard.len() <= 2, "hub shard too fat: {hub_shard:?}");
    }

    #[test]
    fn weighted_shards_handle_all_zero_costs() {
        let costs = vec![0usize; 5];
        let ranges = shard_ranges_weighted(&costs, 3);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 5);
        assert_eq!(ranges.last().unwrap().end, 5);
    }

    #[test]
    fn parallel_map_is_index_ordered_for_any_thread_count() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let par = parallel_map(97, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        for threads in [1usize, 2, 5] {
            let out = map_shards(10, threads, |s, r| (s, r.start, r.end));
            for (i, (s, start, end)) in out.iter().enumerate() {
                assert_eq!(i, *s);
                assert!(start <= end);
            }
        }
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn ordered_queue_consumes_in_index_order_despite_push_order() {
        let queue = OrderedQueue::new();
        queue.push(2, "c");
        queue.push(0, "a");
        queue.push(1, "b");
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.pop(0), Some("a"));
        assert_eq!(queue.pop(1), Some("b"));
        assert_eq!(queue.pop(2), Some("c"));
        assert!(queue.is_empty());
    }

    #[test]
    fn ordered_queue_pop_blocks_until_the_index_arrives() {
        let queue = Arc::new(OrderedQueue::new());
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                queue.push(0, 41);
                queue.push(1, 42);
            })
        };
        assert_eq!(queue.pop(0), Some(41));
        assert_eq!(queue.pop(1), Some(42));
        producer.join().unwrap();
    }

    #[test]
    fn ordered_queue_close_drains_pending_then_returns_none() {
        let queue = OrderedQueue::new();
        queue.push(0, 7);
        queue.close_at(1);
        assert_eq!(queue.pop(0), Some(7), "closing must not drop delivered values");
        assert_eq!(queue.pop(1), None);
        assert_eq!(queue.pop(99), None);
    }

    #[test]
    fn ordered_queue_close_still_blocks_for_in_flight_indices() {
        let queue = Arc::new(OrderedQueue::new());
        queue.close_at(1); // index 0 is promised but not yet delivered
        let late = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                queue.push(0, "late");
            })
        };
        assert_eq!(queue.pop(0), Some("late"));
        late.join().unwrap();
    }

    #[test]
    fn worker_pool_runs_every_submitted_job() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn worker_pool_feeds_an_ordered_queue_deterministically() {
        let pool = WorkerPool::new(4);
        let queue = Arc::new(OrderedQueue::new());
        for i in 0..16usize {
            let queue = Arc::clone(&queue);
            pool.submit(move || queue.push(i, i * i));
        }
        queue.close_at(16);
        for i in 0..16usize {
            assert_eq!(queue.pop(i), Some(i * i));
        }
        assert_eq!(queue.pop(16), None);
    }
}

//! Deterministic scoped-thread helpers shared by Betty's parallel kernels.
//!
//! Every parallel path in the workspace (the sharded SpGEMM behind REG
//! construction, concurrent micro-batch materialization, and the dense
//! matmul kernels) goes through this crate so that thread-count policy
//! lives in exactly one place and every kernel obeys the same contract:
//!
//! **bit-identical output regardless of thread count.**
//!
//! The contract is enforced structurally, not by luck: work is split into
//! contiguous shards, each worker writes only to its own shard-local
//! buffer, and shard results are merged back in shard order on the calling
//! thread. No atomics-ordered reductions, no first-come-first-served
//! queues — the merge order is a pure function of the input size and the
//! shard count, and per-element arithmetic inside a shard is the same
//! loop the serial path runs.
//!
//! Thread-count resolution (highest priority first):
//!
//! 1. a process-wide override installed via [`set_thread_override`]
//!    (the CLI's `--threads` flag),
//! 2. the `BETTY_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`], capped at
//!    [`MAX_DEFAULT_THREADS`].
//!
//! `BETTY_THREADS=1` (or `--threads 1`) runs every kernel on the calling
//! thread with zero spawns — exactly the historical serial behaviour.

#![deny(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the automatically detected thread count.
///
/// Betty's kernels operate on batches that rarely profit from more than a
/// handful of cores; past this point scoped-spawn overhead dominates.
/// Explicit overrides (`--threads` / `BETTY_THREADS`) are *not* capped.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Process-wide thread override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide thread-count override.
///
/// Takes precedence over `BETTY_THREADS` and auto-detection. `Some(0)` is
/// treated as `None`. Used by the CLI's `--threads` flag; tests may use it
/// to pin determinism checks to a specific worker count.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the number of worker threads parallel kernels should use.
///
/// See the crate docs for the resolution order. Always returns at least 1.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("BETTY_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Splits `0..n` into at most `shards` contiguous, near-equal ranges.
///
/// Deterministic in `(n, shards)`; empty ranges are never produced, so the
/// returned vector has `min(shards, n)` entries (zero when `n == 0`).
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(n);
    let mut out = Vec::with_capacity(shards);
    if n == 0 {
        return out;
    }
    let base = n / shards;
    let extra = n % shards;
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..costs.len()` into at most `shards` contiguous ranges whose
/// summed `costs` are as balanced as a greedy prefix walk can make them.
///
/// Used by kernels whose per-row work is skewed (e.g. power-law degree
/// distributions in the REG SpGEMM): equal-index shards would leave most
/// workers idle behind one hub-heavy shard. Deterministic in the inputs.
pub fn shard_ranges_weighted(costs: &[usize], shards: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    let shards = shards.max(1).min(n);
    if n == 0 {
        return Vec::new();
    }
    if shards == 1 {
        // One shard covering every index (not an unrolled 0..n sequence).
        return std::iter::once(0..n).collect();
    }
    let total: usize = costs.iter().sum();
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut spent = 0usize;
    for s in 0..shards {
        if start == n {
            break;
        }
        let remaining_shards = shards - s;
        // Leave at least one row per remaining shard.
        let hard_end = n - (remaining_shards - 1);
        let target = (total - spent) / remaining_shards;
        let mut end = start;
        let mut acc = 0usize;
        while end < hard_end && (end == start || acc + costs[end] <= target) {
            acc += costs[end];
            end += 1;
        }
        out.push(start..end);
        spent += acc;
        start = end;
    }
    if start < n {
        // Fold any tail into the last range (can happen with zero costs).
        let last = out.len() - 1;
        out[last].end = n;
    }
    out
}

/// Runs `f(shard_index, range)` over the given contiguous ranges, on
/// `threads` scoped workers, and returns the results **in shard order**.
///
/// With `threads <= 1` or a single range, everything runs inline on the
/// calling thread — no spawns, byte-for-byte the serial execution.
pub fn map_ranges<T, F>(ranges: Vec<Range<usize>>, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if threads <= 1 || ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(s, r)| f(s, r))
            .collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (s, r)) in slots.iter_mut().zip(ranges.into_iter().enumerate()) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(s, r));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("shard worker completed"))
        .collect()
}

/// Shards `0..n` evenly across `threads` workers and maps each shard with
/// `f(shard_index, range)`, returning results in shard order.
///
/// Convenience wrapper over [`shard_ranges`] + [`map_ranges`].
pub fn map_shards<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_ranges(shard_ranges(n, threads), threads, f)
}

/// Computes `f(i)` for every `i in 0..n` on up to `threads` workers and
/// returns the results **in index order**.
///
/// The index space is split into contiguous shards; each worker evaluates
/// its shard left-to-right into a private buffer, and buffers are
/// concatenated in shard order — so the output is the same `Vec` the
/// serial loop `(0..n).map(f).collect()` produces, for any thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    map_shards(n, threads, |_, range| range.map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(n, shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start, "empty shard for n={n} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn weighted_shards_cover_exactly_once_and_balance_hubs() {
        let costs = vec![1usize, 1, 1, 1, 100, 1, 1, 1];
        let ranges = shard_ranges_weighted(&costs, 4);
        let mut next = 0usize;
        for r in &ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next, costs.len());
        // The hub row (index 4) should sit alone-ish rather than dragging
        // every following row into its shard.
        let hub_shard = ranges.iter().find(|r| r.contains(&4)).unwrap();
        assert!(hub_shard.len() <= 2, "hub shard too fat: {hub_shard:?}");
    }

    #[test]
    fn weighted_shards_handle_all_zero_costs() {
        let costs = vec![0usize; 5];
        let ranges = shard_ranges_weighted(&costs, 3);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 5);
        assert_eq!(ranges.last().unwrap().end, 5);
    }

    #[test]
    fn parallel_map_is_index_ordered_for_any_thread_count() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let par = parallel_map(97, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        for threads in [1usize, 2, 5] {
            let out = map_shards(10, threads, |s, r| (s, r.start, r.end));
            for (i, (s, start, end)) in out.iter().enumerate() {
                assert_eq!(i, *s);
                assert!(start <= end);
            }
        }
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }
}

//! Degree-distribution statistics.
//!
//! Supports the paper's workload analysis: the in-degree histogram of
//! destination nodes (Fig. 9a), the clamped bucketing view that exhibits the
//! *bucketing explosion* (§4.4.2), and a log–log slope estimate for
//! power-law tails.

use crate::Block;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the two middle values for even counts).
    pub median: usize,
}

/// Computes summary statistics of a degree sequence.
///
/// # Panics
///
/// Panics if `degrees` is empty.
pub fn stats(degrees: &[usize]) -> DegreeStats {
    assert!(!degrees.is_empty(), "degree sequence must be non-empty");
    let mut sorted = degrees.to_vec();
    sorted.sort_unstable();
    DegreeStats {
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<usize>() as f64 / sorted.len() as f64,
        median: sorted[sorted.len() / 2],
    }
}

/// Histogram of degrees: `hist[d]` = number of nodes with degree exactly
/// `d`, up to the maximum observed degree.
pub fn histogram(degrees: &[usize]) -> Vec<usize> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Clamped histogram reproducing in-degree bucketing: degrees `>=
/// max_bucket` accumulate in the final bin (the long tail that makes the
/// last bucket *explode* on power-law graphs).
pub fn bucketed_histogram(degrees: &[usize], max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for &d in degrees {
        hist[d.min(max_bucket)] += 1;
    }
    hist
}

/// In-degree sequence of a block's destinations.
pub fn block_in_degrees(block: &Block) -> Vec<usize> {
    (0..block.num_dst()).map(|d| block.in_degree(d)).collect()
}

/// Least-squares slope of `log(count)` vs `log(degree)` over non-empty
/// histogram bins with degree ≥ 1 — roughly `-α` for a power-law `p(d) ∝
/// d^{-α}`.
///
/// Returns `None` when fewer than two usable bins exist.
pub fn log_log_slope(hist: &[usize]) -> Option<f64> {
    let points: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn stats_basic() {
        let s = stats(&[1, 5, 3, 3, 2]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 3);
        assert!((s.mean - 2.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts() {
        assert_eq!(histogram(&[0, 2, 2, 3]), vec![1, 0, 2, 1]);
        assert_eq!(histogram(&[]), vec![0]);
    }

    #[test]
    fn bucketed_histogram_clamps_tail() {
        // Degrees 0..=4 with clamp at 2: bins {0}, {1}, {2,3,4}.
        assert_eq!(bucketed_histogram(&[0, 1, 2, 3, 4], 2), vec![1, 1, 3]);
    }

    #[test]
    fn block_in_degrees_reads_block() {
        let b = Block::new(vec![0, 1], &[(2, 0), (3, 0), (2, 1)]);
        assert_eq!(block_in_degrees(&b), vec![2, 1]);
    }

    #[test]
    fn log_log_slope_recovers_power_law() {
        // count(d) = 1000 · d^{-2} exactly.
        let hist: Vec<usize> = (0..50)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1000.0 / (d as f64 * d as f64)).round() as usize
                }
            })
            .collect();
        let slope = log_log_slope(&hist).unwrap();
        assert!(
            (slope + 2.0).abs() < 0.25,
            "expected slope ≈ -2, got {slope}"
        );
    }

    #[test]
    fn log_log_slope_degenerate() {
        assert_eq!(log_log_slope(&[5]), None);
        assert_eq!(log_log_slope(&[0, 3]), None);
    }

    #[test]
    fn bucket_explosion_visible_on_star() {
        // A hub of degree 50 among leaves: last bucket dominated by the hub
        // side once clamped.
        let edges: Vec<(NodeId, NodeId)> = (1..51).map(|u| (u as NodeId, 0)).collect();
        let b = Block::new((0..51).collect(), &edges);
        let degs = block_in_degrees(&b);
        let hist = bucketed_histogram(&degs, 10);
        assert_eq!(hist[10], 1); // only the hub lands in the tail bucket
        assert_eq!(hist[0], 50);
    }
}

//! Redundancy-Embedded Graph construction (paper §4.3.2, Algorithm 1).
//!
//! The REG over the output nodes of a block has an edge `{i, j}` weighted by
//! the number of *shared sources* of destinations `i` and `j` — exactly the
//! entries of `C = Aᵀ·A` restricted to output nodes with the diagonal
//! removed. Splitting `i` and `j` into different micro-batches duplicates
//! each shared source, so a minimum-weight cut of the REG minimizes
//! redundancy.
//!
//! # Parallel construction
//!
//! Both constructions reduce to symmetric co-occurrence counting over a
//! family of node sets (a block's per-source destination lists, or a
//! batch's per-node dependant sets) and share one sharded Gustavson kernel,
//! [`co_occurrence_csr`]: the set family is inverted into a CSR
//! row-to-sets index once, destination rows are sharded across
//! [`std::thread::scope`] workers (weighted by per-row work so power-law
//! hubs don't serialize a shard), each worker accumulates its rows into a
//! private dense sparse-accumulator, and shard outputs are concatenated in
//! row order. Weights are exact small-integer counts, so per-row sums are
//! order-independent and the resulting [`CsrGraph`] is **bit-identical for
//! every thread count** — `BETTY_THREADS=1` reproduces the historical
//! serial output byte for byte.

use std::collections::HashMap;

use crate::{Block, CsrGraph};

/// Symmetric co-occurrence SpGEMM: for sets `S₁..Sₘ ⊆ 0..n`, returns the
/// weighted graph with `w(i, j) = |{k : i ∈ Sₖ ∧ j ∈ Sₖ}|` for `i ≠ j`.
///
/// Each set must be sorted and duplicate-free; the result is independent
/// of set order and of `threads` (see the module docs).
fn co_occurrence_csr(n: usize, sets: &[&[u32]], threads: usize) -> CsrGraph {
    // Invert: CSR from row id to the ids of the sets containing it.
    let mut inv_ptr = vec![0usize; n + 1];
    for set in sets {
        for &i in *set {
            inv_ptr[i as usize + 1] += 1;
        }
    }
    for i in 0..n {
        inv_ptr[i + 1] += inv_ptr[i];
    }
    let mut inv = vec![0u32; inv_ptr[n]];
    let mut cursor = inv_ptr[..n].to_vec();
    for (sid, set) in sets.iter().enumerate() {
        for &i in *set {
            inv[cursor[i as usize]] = sid as u32;
            cursor[i as usize] += 1;
        }
    }
    // Per-row Gustavson cost: every containing set is scanned in full.
    let costs: Vec<usize> = (0..n)
        .map(|i| {
            inv[inv_ptr[i]..inv_ptr[i + 1]]
                .iter()
                .map(|&sid| sets[sid as usize].len())
                .sum()
        })
        .collect();
    let ranges = betty_runtime::shard_ranges_weighted(&costs, threads);
    let shards = betty_runtime::map_ranges(ranges, threads, |_, range| {
        // Dense sparse-accumulator, private to this worker.
        let mut acc = vec![0.0f32; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut row_lens = Vec::with_capacity(range.len());
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        for i in range {
            for &sid in &inv[inv_ptr[i]..inv_ptr[i + 1]] {
                for &j in sets[sid as usize] {
                    if j as usize == i {
                        continue;
                    }
                    if acc[j as usize] == 0.0 {
                        touched.push(j);
                    }
                    acc[j as usize] += 1.0;
                }
            }
            touched.sort_unstable();
            row_lens.push(touched.len());
            for &j in &touched {
                indices.push(j);
                weights.push(acc[j as usize]);
                acc[j as usize] = 0.0;
            }
            touched.clear();
        }
        (row_lens, indices, weights)
    });
    // Merge in row order: shard ranges are contiguous and ordered, so this
    // is a straight concatenation.
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices = Vec::new();
    let mut weights = Vec::new();
    for (row_lens, idx, w) in shards {
        for len in row_lens {
            indptr.push(indptr.last().unwrap() + len);
        }
        indices.extend(idx);
        weights.extend(w);
    }
    debug_assert_eq!(indptr.len(), n + 1);
    CsrGraph::from_csr_parts(indptr, indices, Some(weights))
}

/// Builds the Redundancy-Embedded Graph of a block.
///
/// Nodes of the result are the block's destinations in *local* order
/// (`0..num_dst`); an edge `i → j` (and its mirror `j → i`) carries weight
/// `|sources(i) ∩ sources(j)|`. Self-loops (the diagonal of `Aᵀ·A`) are
/// removed, matching Algorithm 1.
///
/// Implementation is Gustavson's row-wise SpGEMM over the source-to-
/// destination incidence: for each source `k` with destination list `N(k)`,
/// every ordered pair in `N(k) × N(k)` contributes 1 — accumulated sparsely
/// per destination row, sharded across [`betty_runtime::configured_threads`]
/// workers. A source contributing to `d` destinations costs `d²` updates;
/// destinations' in-degrees are fanout-bounded, keeping this tractable
/// (the paper computes the same product via `dgl.adj_product_graph`).
pub fn shared_neighbor_graph(block: &Block) -> CsrGraph {
    shared_neighbor_graph_with_threads(block, betty_runtime::configured_threads())
}

/// [`shared_neighbor_graph`] with an explicit worker count.
///
/// The output is bit-identical for every `threads` value; `1` runs entirely
/// on the calling thread. Benchmarks and determinism tests use this to pin
/// the worker count independently of `BETTY_THREADS`.
pub fn shared_neighbor_graph_with_threads(block: &Block, threads: usize) -> CsrGraph {
    let num_dst = block.num_dst();
    // Invert the block once: for each source local id, its destinations.
    let mut by_src: Vec<Vec<u32>> = vec![Vec::new(); block.num_src()];
    let src = block.edge_src_locals();
    let dst = block.edge_dst_locals();
    for (&s, &d) in src.iter().zip(dst.iter()) {
        by_src[s as usize].push(d);
    }
    for dsts in &mut by_src {
        dsts.sort_unstable();
        dsts.dedup();
    }
    let sets: Vec<&[u32]> = by_src
        .iter()
        .filter(|dsts| dsts.len() >= 2)
        .map(|dsts| dsts.as_slice())
        .collect();
    co_occurrence_csr(num_dst, &sets, threads)
}

/// Builds the *full-dependency* Redundancy-Embedded Graph of a batch.
///
/// Where [`shared_neighbor_graph`] (the paper's Algorithm 1) weighs an
/// output pair by shared sources *in the last layer only*, this variant
/// weighs it by the number of distinct nodes — at **any** level of the
/// multi-level bipartite — that both outputs transitively depend on. That
/// is exactly the count of nodes duplicated when the pair is split, so
/// min-cutting this graph minimizes true redundancy for deep batches.
/// (The paper lists optimizing REG construction as future work; this is
/// that extension, evaluated against Algorithm 1 in the ablation benches.)
///
/// `hub_cap` bounds the dependants-set size per node: a node needed by more
/// than `hub_cap` outputs is duplicated into nearly every micro-batch no
/// matter the cut, so its pair contributions are skipped. This keeps the
/// pair enumeration `O(Σ min(|D|, cap)²)`.
///
/// Nodes of the result are the batch's output nodes in *local (dst) order*
/// of the last block, matching [`shared_neighbor_graph`].
pub fn dependency_reg(batch: &crate::Batch, hub_cap: usize) -> CsrGraph {
    dependency_reg_with_threads(batch, hub_cap, betty_runtime::configured_threads())
}

/// [`dependency_reg`] with an explicit worker count.
///
/// Dependency-set propagation is inherently sequential across layers and
/// stays on the calling thread; the quadratic pair-counting stage runs on
/// the sharded kernel. Output is bit-identical for every `threads` value.
pub fn dependency_reg_with_threads(
    batch: &crate::Batch,
    hub_cap: usize,
    threads: usize,
) -> CsrGraph {
    let outputs = batch.output_nodes();
    let n_out = outputs.len();

    // D(v) = sorted set of output locals depending on v, propagated from
    // the output layer downward (the stacking invariant guarantees a dst's
    // set is complete before it is read as a lower layer's destination).
    let mut dep: HashMap<crate::NodeId, Vec<u32>> = HashMap::with_capacity(n_out * 2);
    for (i, &o) in outputs.iter().enumerate() {
        dep.insert(o, vec![i as u32]);
    }
    for block in batch.blocks().iter().rev() {
        // Sources strictly below the dst prefix are *new* at this level;
        // their sets accumulate from every edge into a needed destination.
        // Destination sets are borrowed (not cloned per edge) and each
        // source is sorted/deduped exactly once per level, after the full
        // block scan — a source can also be one of this block's
        // destinations, and its pre-level set must be what every edge read.
        let mut gathered: HashMap<crate::NodeId, Vec<u32>> = HashMap::new();
        for (s, d) in block.iter_global_edges() {
            if s == d {
                continue;
            }
            let Some(d_set) = dep.get(&d) else {
                continue;
            };
            gathered.entry(s).or_default().extend_from_slice(d_set);
        }
        for (s, mut set) in gathered {
            if let Some(existing) = dep.get(&s) {
                set.extend_from_slice(existing);
            }
            set.sort_unstable();
            set.dedup();
            dep.insert(s, set);
        }
    }
    let sets: Vec<&[u32]> = dep
        .values()
        .filter(|set| set.len() >= 2 && set.len() <= hub_cap)
        .map(|set| set.as_slice())
        .collect();
    // Set order (HashMap iteration) is irrelevant: counts are exact
    // integer sums and rows are emitted sorted.
    co_occurrence_csr(n_out, &sets, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    /// Brute-force reference: count shared sources for every dst pair.
    fn brute_force(block: &Block) -> Vec<Vec<f32>> {
        let n = block.num_dst();
        let mut m = vec![vec![0.0f32; n]; n];
        #[allow(clippy::needless_range_loop)] // symmetric index pair
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let si: std::collections::HashSet<u32> =
                    block.in_edges(i).iter().copied().collect();
                m[i][j] = block
                    .in_edges(j)
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .iter()
                    .filter(|s| si.contains(s))
                    .count() as f32;
            }
        }
        m
    }

    /// The pre-rewrite `dependency_reg`: per-edge set clones, repeated
    /// sort/dedup merges, and `HashMap<(u32,u32), f32>` pair accumulation
    /// materialized through `from_weighted_edges`. Kept as the semantic
    /// reference the sharded kernel must reproduce exactly.
    fn dependency_reg_reference(batch: &crate::Batch, hub_cap: usize) -> CsrGraph {
        let outputs = batch.output_nodes();
        let n_out = outputs.len();
        let mut dep: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &o) in outputs.iter().enumerate() {
            dep.insert(o, vec![i as u32]);
        }
        for block in batch.blocks().iter().rev() {
            let mut new_sets: HashMap<NodeId, Vec<u32>> = HashMap::new();
            for (s, d) in block.iter_global_edges() {
                if s == d {
                    continue;
                }
                let Some(d_set) = dep.get(&d).cloned() else {
                    continue;
                };
                new_sets.entry(s).or_default().extend(d_set);
            }
            for (s, mut set) in new_sets {
                set.sort_unstable();
                set.dedup();
                match dep.get_mut(&s) {
                    Some(existing) => {
                        existing.extend(set);
                        existing.sort_unstable();
                        existing.dedup();
                    }
                    None => {
                        dep.insert(s, set);
                    }
                }
            }
        }
        let mut counts: HashMap<(u32, u32), f32> = HashMap::new();
        for set in dep.values() {
            if set.len() < 2 || set.len() > hub_cap {
                continue;
            }
            for (a, &i) in set.iter().enumerate() {
                for &j in &set[a + 1..] {
                    *counts.entry((i, j)).or_insert(0.0) += 1.0;
                }
            }
        }
        let edges = counts
            .into_iter()
            .flat_map(|((i, j), w)| [(i, j, w), (j, i, w)]);
        CsrGraph::from_weighted_edges(n_out, edges, true)
    }

    #[test]
    fn matches_brute_force_on_paper_figure8() {
        // Figure 8 input graph: dst {1, 8}; 1 aggregates {0,2,3,5,6,7},
        // 8 aggregates {3,5,6,7,9,4}. Shared = {3,5,6,7} → weight 4.
        let block = Block::new(
            vec![1, 8],
            &[
                (0, 1),
                (2, 1),
                (3, 1),
                (5, 1),
                (6, 1),
                (7, 1),
                (3, 8),
                (5, 8),
                (6, 8),
                (7, 8),
                (9, 8),
                (4, 8),
            ],
        );
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.num_nodes(), 2);
        assert_eq!(reg.neighbor_weights(0), Some(&[4.0f32][..]));
        let bf = brute_force(&block);
        assert_eq!(bf[0][1], 4.0);
    }

    #[test]
    fn no_shared_sources_means_no_edges() {
        let block = Block::new(vec![0, 1], &[(2, 0), (3, 1)]);
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.num_edges(), 0);
    }

    #[test]
    fn diagonal_removed() {
        let block = Block::new(vec![0], &[(1, 0), (2, 0)]);
        let reg = shared_neighbor_graph(&block);
        // A single destination shares sources only with itself.
        assert_eq!(reg.num_edges(), 0);
        assert_eq!(reg.num_nodes(), 1);
    }

    #[test]
    fn symmetric_with_mirrored_weights() {
        let block = Block::new(vec![0, 1, 2], &[(5, 0), (5, 1), (5, 2), (6, 1), (6, 2)]);
        let reg = shared_neighbor_graph(&block);
        // 0-1 share {5}: w=1. 1-2 share {5,6}: w=2. 0-2 share {5}: w=1.
        for (i, j, w) in [(0u32, 1u32, 1.0f32), (1, 2, 2.0), (0, 2, 1.0)] {
            let pos = reg.neighbors(i).iter().position(|&v| v == j).unwrap();
            assert_eq!(reg.neighbor_weights(i).unwrap()[pos], w, "edge {i}-{j}");
            let pos = reg.neighbors(j).iter().position(|&v| v == i).unwrap();
            assert_eq!(reg.neighbor_weights(j).unwrap()[pos], w, "edge {j}-{i}");
        }
    }

    #[test]
    fn parallel_block_edges_do_not_double_count() {
        // Duplicate edge (5, 0) must count source 5 once.
        let block = Block::new(vec![0, 1], &[(5, 0), (5, 0), (5, 1)]);
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn dependency_reg_one_layer_matches_last_layer_reg_without_hubs() {
        // For a single-layer batch with no source shared by > hub_cap
        // outputs, the two constructions coincide (the dependency sets are
        // exactly the last layer's shared-source sets).
        let block = Block::new(
            vec![0, 1, 2],
            &[(5, 0), (5, 1), (6, 1), (6, 2), (7, 0), (7, 2)],
        );
        let batch = crate::Batch::new(vec![block.clone()]);
        let last = shared_neighbor_graph(&block);
        let full = dependency_reg(&batch, 64);
        assert_eq!(last, full);
    }

    #[test]
    fn dependency_reg_sees_second_level_sharing() {
        // Outputs 0 and 1 share nothing at level 1, but their level-1
        // sources both depend on node 99 at level 0.
        let top = Block::new(vec![0, 1], &[(10, 0), (11, 1)]);
        let bottom = Block::new(top.src_globals().to_vec(), &[(99, 10), (99, 11)]);
        let batch = crate::Batch::new(vec![bottom, top.clone()]);
        assert_eq!(shared_neighbor_graph(&top).num_edges(), 0);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.num_edges(), 2, "mirrored shared-99 edge");
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn dependency_reg_counts_intermediate_shared_nodes() {
        // Node 10 is itself shared at level 1 *and* brings a shared level-0
        // source 99: both count (both get duplicated on a split).
        let top = Block::new(vec![0, 1], &[(10, 0), (10, 1)]);
        let bottom = Block::new(top.src_globals().to_vec(), &[(99, 10)]);
        let batch = crate::Batch::new(vec![bottom, top]);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.neighbor_weights(0), Some(&[2.0f32][..]));
    }

    #[test]
    fn dependency_reg_hub_cap_drops_ubiquitous_nodes() {
        // One source shared by all 5 outputs: capped out at hub_cap 4.
        let edges: Vec<(NodeId, NodeId)> = (0..5).map(|d| (100, d)).collect();
        let batch = crate::Batch::new(vec![Block::new((0..5).collect(), &edges)]);
        let capped = dependency_reg(&batch, 4);
        assert_eq!(capped.num_edges(), 0);
        let uncapped = dependency_reg(&batch, 64);
        assert_eq!(uncapped.num_edges(), 5 * 4);
    }

    #[test]
    fn dependency_reg_output_sampled_as_neighbor() {
        // Output 1 is itself a neighbor of output 0: splitting them
        // duplicates node 1, so the pair must carry weight.
        let block = Block::new(vec![0, 1], &[(1, 0)]);
        let batch = crate::Batch::new(vec![block]);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn randomized_agreement_with_brute_force() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(99);
        for trial in 0..10 {
            let n_dst = rng.gen_range(2..8);
            let n_src = rng.gen_range(1..12);
            let mut edges = Vec::new();
            for d in 0..n_dst {
                let deg = rng.gen_range(0..5);
                for _ in 0..deg {
                    edges.push((100 + rng.gen_range(0..n_src) as NodeId, d as NodeId));
                }
            }
            let block = Block::new((0..n_dst as NodeId).collect(), &edges);
            let reg = shared_neighbor_graph(&block);
            let bf = brute_force(&block);
            #[allow(clippy::needless_range_loop)] // symmetric index pair
            for i in 0..n_dst {
                for j in 0..n_dst {
                    if i == j {
                        continue;
                    }
                    let w = reg
                        .neighbors(i as u32)
                        .iter()
                        .position(|&v| v == j as u32)
                        .map(|p| reg.neighbor_weights(i as u32).unwrap()[p])
                        .unwrap_or(0.0);
                    assert_eq!(w, bf[i][j], "trial {trial} pair ({i},{j})");
                }
            }
        }
    }

    /// Samples a hub-heavy two-layer batch: a few sources fan into most
    /// outputs (power-law-ish), exercising the weighted sharding and the
    /// once-per-source merge in `dependency_reg`.
    fn hub_heavy_batch(seed: u64) -> crate::Batch {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(seed);
        let n_out = 24u32;
        let outputs: Vec<NodeId> = (0..n_out).collect();
        let mut top_edges = Vec::new();
        for d in 0..n_out {
            // Hubs 100..103 hit almost every output; the long tail is
            // sparse.
            for hub in 100..104 {
                if rng.gen_range(0..10) < 8 {
                    top_edges.push((hub as NodeId, d));
                }
            }
            for _ in 0..rng.gen_range(0..4) {
                top_edges.push((200 + rng.gen_range(0..40) as NodeId, d));
            }
        }
        let top = Block::new(outputs, &top_edges);
        let mut bot_edges = Vec::new();
        for &s in top.src_globals() {
            for _ in 0..rng.gen_range(0..3) {
                bot_edges.push((1000 + rng.gen_range(0..30) as NodeId, s));
            }
        }
        let bottom = Block::new(top.src_globals().to_vec(), &bot_edges);
        crate::Batch::new(vec![bottom, top])
    }

    #[test]
    fn hub_heavy_dependency_reg_identical_to_reference() {
        // Satellite regression: the borrowed-set, merge-once-per-source
        // propagation plus the sharded kernel must reproduce the original
        // clone-per-edge implementation exactly, hubs and all.
        for seed in [3u64, 17, 40] {
            let batch = hub_heavy_batch(seed);
            for hub_cap in [4usize, 16, 64] {
                let reference = dependency_reg_reference(&batch, hub_cap);
                let rewritten = dependency_reg(&batch, hub_cap);
                assert_eq!(reference, rewritten, "seed {seed} hub_cap {hub_cap}");
            }
        }
    }

    #[test]
    fn reg_bit_identical_across_thread_counts() {
        let batch = hub_heavy_batch(7);
        let block = &batch.blocks()[batch.blocks().len() - 1];
        let serial = shared_neighbor_graph_with_threads(block, 1);
        let serial_dep = dependency_reg_with_threads(&batch, 32, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                serial,
                shared_neighbor_graph_with_threads(block, threads),
                "shared_neighbor_graph threads={threads}"
            );
            assert_eq!(
                serial_dep,
                dependency_reg_with_threads(&batch, 32, threads),
                "dependency_reg threads={threads}"
            );
        }
    }
}

//! Redundancy-Embedded Graph construction (paper §4.3.2, Algorithm 1).
//!
//! The REG over the output nodes of a block has an edge `{i, j}` weighted by
//! the number of *shared sources* of destinations `i` and `j` — exactly the
//! entries of `C = Aᵀ·A` restricted to output nodes with the diagonal
//! removed. Splitting `i` and `j` into different micro-batches duplicates
//! each shared source, so a minimum-weight cut of the REG minimizes
//! redundancy.

use std::collections::HashMap;

use crate::{Block, CsrGraph};

/// Builds the Redundancy-Embedded Graph of a block.
///
/// Nodes of the result are the block's destinations in *local* order
/// (`0..num_dst`); an edge `i → j` (and its mirror `j → i`) carries weight
/// `|sources(i) ∩ sources(j)|`. Self-loops (the diagonal of `Aᵀ·A`) are
/// removed, matching Algorithm 1.
///
/// Implementation is Gustavson's row-wise SpGEMM over the source-to-
/// destination incidence: for each source `k` with destination list `N(k)`,
/// every ordered pair in `N(k) × N(k)` contributes 1 — accumulated sparsely
/// per row. A source contributing to `d` destinations costs `d²` updates;
/// destinations' in-degrees are fanout-bounded, keeping this tractable
/// (the paper computes the same product via `dgl.adj_product_graph`).
pub fn shared_neighbor_graph(block: &Block) -> CsrGraph {
    let num_dst = block.num_dst();
    // Invert the block: for each source local id, the list of destinations.
    let mut by_src: HashMap<u32, Vec<u32>> = HashMap::new();
    let src = block.edge_src_locals();
    let dst = block.edge_dst_locals();
    for (&s, &d) in src.iter().zip(dst.iter()) {
        by_src.entry(s).or_default().push(d);
    }
    // Accumulate co-occurrence counts for i < j only (the graph is
    // symmetric); mirror when materializing.
    let mut counts: HashMap<(u32, u32), f32> = HashMap::new();
    for dsts in by_src.values_mut() {
        dsts.sort_unstable();
        dsts.dedup();
        for (a, &i) in dsts.iter().enumerate() {
            for &j in &dsts[a + 1..] {
                *counts.entry((i, j)).or_insert(0.0) += 1.0;
            }
        }
    }
    let edges = counts
        .into_iter()
        .flat_map(|((i, j), w)| [(i, j, w), (j, i, w)]);
    CsrGraph::from_weighted_edges(num_dst, edges, true)
}

/// Builds the *full-dependency* Redundancy-Embedded Graph of a batch.
///
/// Where [`shared_neighbor_graph`] (the paper's Algorithm 1) weighs an
/// output pair by shared sources *in the last layer only*, this variant
/// weighs it by the number of distinct nodes — at **any** level of the
/// multi-level bipartite — that both outputs transitively depend on. That
/// is exactly the count of nodes duplicated when the pair is split, so
/// min-cutting this graph minimizes true redundancy for deep batches.
/// (The paper lists optimizing REG construction as future work; this is
/// that extension, evaluated against Algorithm 1 in the ablation benches.)
///
/// `hub_cap` bounds the dependants-set size per node: a node needed by more
/// than `hub_cap` outputs is duplicated into nearly every micro-batch no
/// matter the cut, so its pair contributions are skipped. This keeps the
/// pair enumeration `O(Σ min(|D|, cap)²)`.
///
/// Nodes of the result are the batch's output nodes in *local (dst) order*
/// of the last block, matching [`shared_neighbor_graph`].
pub fn dependency_reg(batch: &crate::Batch, hub_cap: usize) -> CsrGraph {
    let outputs = batch.output_nodes();
    let n_out = outputs.len();

    // D(v) = sorted set of output locals depending on v, propagated from
    // the output layer downward (the stacking invariant guarantees a dst's
    // set is complete before it is read as a lower layer's destination).
    let mut dep: HashMap<crate::NodeId, Vec<u32>> = HashMap::with_capacity(n_out * 2);
    for (i, &o) in outputs.iter().enumerate() {
        dep.insert(o, vec![i as u32]);
    }
    let mut counts: HashMap<(u32, u32), f32> = HashMap::new();
    let mut count_pairs = |set: &[u32]| {
        if set.len() < 2 || set.len() > hub_cap {
            return;
        }
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[a + 1..] {
                *counts.entry((i, j)).or_insert(0.0) += 1.0;
            }
        }
    };
    for block in batch.blocks().iter().rev() {
        // Sources strictly below the dst prefix are *new* at this level;
        // their sets accumulate from every edge into a needed destination.
        let mut new_sets: HashMap<crate::NodeId, Vec<u32>> = HashMap::new();
        for (s, d) in block.iter_global_edges() {
            if s == d {
                continue;
            }
            let Some(d_set) = dep.get(&d).cloned() else {
                continue;
            };
            let entry = new_sets.entry(s).or_default();
            entry.extend(d_set);
        }
        for (s, mut set) in new_sets {
            set.sort_unstable();
            set.dedup();
            match dep.get_mut(&s) {
                Some(existing) => {
                    existing.extend(set);
                    existing.sort_unstable();
                    existing.dedup();
                }
                None => {
                    dep.insert(s, set);
                }
            }
        }
    }
    for set in dep.values() {
        count_pairs(set);
    }
    let edges = counts
        .into_iter()
        .flat_map(|((i, j), w)| [(i, j, w), (j, i, w)]);
    CsrGraph::from_weighted_edges(n_out, edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    /// Brute-force reference: count shared sources for every dst pair.
    fn brute_force(block: &Block) -> Vec<Vec<f32>> {
        let n = block.num_dst();
        let mut m = vec![vec![0.0f32; n]; n];
        #[allow(clippy::needless_range_loop)] // symmetric index pair
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let si: std::collections::HashSet<u32> =
                    block.in_edges(i).iter().copied().collect();
                m[i][j] = block
                    .in_edges(j)
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .iter()
                    .filter(|s| si.contains(s))
                    .count() as f32;
            }
        }
        m
    }

    #[test]
    fn matches_brute_force_on_paper_figure8() {
        // Figure 8 input graph: dst {1, 8}; 1 aggregates {0,2,3,5,6,7},
        // 8 aggregates {3,5,6,7,9,4}. Shared = {3,5,6,7} → weight 4.
        let block = Block::new(
            vec![1, 8],
            &[
                (0, 1),
                (2, 1),
                (3, 1),
                (5, 1),
                (6, 1),
                (7, 1),
                (3, 8),
                (5, 8),
                (6, 8),
                (7, 8),
                (9, 8),
                (4, 8),
            ],
        );
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.num_nodes(), 2);
        assert_eq!(reg.neighbor_weights(0), Some(&[4.0f32][..]));
        let bf = brute_force(&block);
        assert_eq!(bf[0][1], 4.0);
    }

    #[test]
    fn no_shared_sources_means_no_edges() {
        let block = Block::new(vec![0, 1], &[(2, 0), (3, 1)]);
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.num_edges(), 0);
    }

    #[test]
    fn diagonal_removed() {
        let block = Block::new(vec![0], &[(1, 0), (2, 0)]);
        let reg = shared_neighbor_graph(&block);
        // A single destination shares sources only with itself.
        assert_eq!(reg.num_edges(), 0);
        assert_eq!(reg.num_nodes(), 1);
    }

    #[test]
    fn symmetric_with_mirrored_weights() {
        let block = Block::new(vec![0, 1, 2], &[(5, 0), (5, 1), (5, 2), (6, 1), (6, 2)]);
        let reg = shared_neighbor_graph(&block);
        // 0-1 share {5}: w=1. 1-2 share {5,6}: w=2. 0-2 share {5}: w=1.
        for (i, j, w) in [(0u32, 1u32, 1.0f32), (1, 2, 2.0), (0, 2, 1.0)] {
            let pos = reg.neighbors(i).iter().position(|&v| v == j).unwrap();
            assert_eq!(reg.neighbor_weights(i).unwrap()[pos], w, "edge {i}-{j}");
            let pos = reg.neighbors(j).iter().position(|&v| v == i).unwrap();
            assert_eq!(reg.neighbor_weights(j).unwrap()[pos], w, "edge {j}-{i}");
        }
    }

    #[test]
    fn parallel_block_edges_do_not_double_count() {
        // Duplicate edge (5, 0) must count source 5 once.
        let block = Block::new(vec![0, 1], &[(5, 0), (5, 0), (5, 1)]);
        let reg = shared_neighbor_graph(&block);
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn dependency_reg_one_layer_matches_last_layer_reg_without_hubs() {
        // For a single-layer batch with no source shared by > hub_cap
        // outputs, the two constructions coincide (the dependency sets are
        // exactly the last layer's shared-source sets).
        let block = Block::new(
            vec![0, 1, 2],
            &[(5, 0), (5, 1), (6, 1), (6, 2), (7, 0), (7, 2)],
        );
        let batch = crate::Batch::new(vec![block.clone()]);
        let last = shared_neighbor_graph(&block);
        let full = dependency_reg(&batch, 64);
        assert_eq!(last, full);
    }

    #[test]
    fn dependency_reg_sees_second_level_sharing() {
        // Outputs 0 and 1 share nothing at level 1, but their level-1
        // sources both depend on node 99 at level 0.
        let top = Block::new(vec![0, 1], &[(10, 0), (11, 1)]);
        let bottom = Block::new(top.src_globals().to_vec(), &[(99, 10), (99, 11)]);
        let batch = crate::Batch::new(vec![bottom, top.clone()]);
        assert_eq!(shared_neighbor_graph(&top).num_edges(), 0);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.num_edges(), 2, "mirrored shared-99 edge");
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn dependency_reg_counts_intermediate_shared_nodes() {
        // Node 10 is itself shared at level 1 *and* brings a shared level-0
        // source 99: both count (both get duplicated on a split).
        let top = Block::new(vec![0, 1], &[(10, 0), (10, 1)]);
        let bottom = Block::new(top.src_globals().to_vec(), &[(99, 10)]);
        let batch = crate::Batch::new(vec![bottom, top]);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.neighbor_weights(0), Some(&[2.0f32][..]));
    }

    #[test]
    fn dependency_reg_hub_cap_drops_ubiquitous_nodes() {
        // One source shared by all 5 outputs: capped out at hub_cap 4.
        let edges: Vec<(NodeId, NodeId)> = (0..5).map(|d| (100, d)).collect();
        let batch = crate::Batch::new(vec![Block::new((0..5).collect(), &edges)]);
        let capped = dependency_reg(&batch, 4);
        assert_eq!(capped.num_edges(), 0);
        let uncapped = dependency_reg(&batch, 64);
        assert_eq!(uncapped.num_edges(), 5 * 4);
    }

    #[test]
    fn dependency_reg_output_sampled_as_neighbor() {
        // Output 1 is itself a neighbor of output 0: splitting them
        // duplicates node 1, so the pair must carry weight.
        let block = Block::new(vec![0, 1], &[(1, 0)]);
        let batch = crate::Batch::new(vec![block]);
        let reg = dependency_reg(&batch, 64);
        assert_eq!(reg.neighbor_weights(0), Some(&[1.0f32][..]));
    }

    #[test]
    fn randomized_agreement_with_brute_force() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(99);
        for trial in 0..10 {
            let n_dst = rng.gen_range(2..8);
            let n_src = rng.gen_range(1..12);
            let mut edges = Vec::new();
            for d in 0..n_dst {
                let deg = rng.gen_range(0..5);
                for _ in 0..deg {
                    edges.push((100 + rng.gen_range(0..n_src) as NodeId, d as NodeId));
                }
            }
            let block = Block::new((0..n_dst as NodeId).collect(), &edges);
            let reg = shared_neighbor_graph(&block);
            let bf = brute_force(&block);
            #[allow(clippy::needless_range_loop)] // symmetric index pair
            for i in 0..n_dst {
                for j in 0..n_dst {
                    if i == j {
                        continue;
                    }
                    let w = reg
                        .neighbors(i as u32)
                        .iter()
                        .position(|&v| v == j as u32)
                        .map(|p| reg.neighbor_weights(i as u32).unwrap()[p])
                        .unwrap_or(0.0);
                    assert_eq!(w, bf[i][j], "trial {trial} pair ({i},{j})");
                }
            }
        }
    }
}

use std::collections::HashMap;

use crate::NodeId;

/// One level of a multi-level bipartite batch (a DGL-`Block` equivalent).
///
/// A block is a bipartite graph from *source* nodes (feature providers) to
/// *destination* nodes (aggregation targets). Following the DGL convention,
/// the first `num_dst` source nodes **are** the destination nodes — a
/// destination's own features are always available to the layer (needed by
/// e.g. GraphSAGE's self-concatenation).
///
/// Edges are stored grouped by destination, giving O(1) access to each
/// destination's in-edge list — the access pattern both aggregation and
/// in-degree bucketing need.
///
/// All node identity bookkeeping (the paper's "index mapping" dictionaries,
/// §5) lives here: `edge_src`/`edge_dst` are *local* indices, and
/// [`Block::src_globals`]/[`Block::dst_globals`] map locals back to raw-graph
/// ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Global ids of source nodes; the first `num_dst` equal the dst ids.
    src_globals: Vec<NodeId>,
    num_dst: usize,
    /// Per-edge local source index, grouped by destination.
    edge_src: Vec<u32>,
    /// Per-edge local destination index, non-decreasing.
    edge_dst: Vec<u32>,
    /// CSR offsets over destinations into `edge_src`/`edge_dst`.
    dst_indptr: Vec<usize>,
}

impl Block {
    /// Builds a block from destination global ids and `(src, dst)` edges in
    /// global ids.
    ///
    /// Source locals are assigned dst-first (in `dst_globals` order), then
    /// in first-seen edge order.
    ///
    /// # Panics
    ///
    /// Panics if `dst_globals` contains duplicates or an edge's destination
    /// is not in `dst_globals`.
    pub fn new(dst_globals: Vec<NodeId>, edges: &[(NodeId, NodeId)]) -> Self {
        let num_dst = dst_globals.len();
        let mut local: HashMap<NodeId, u32> = HashMap::with_capacity(num_dst + edges.len());
        for (i, &g) in dst_globals.iter().enumerate() {
            let prev = local.insert(g, i as u32);
            assert!(prev.is_none(), "duplicate destination node {g}");
        }
        let mut src_globals = dst_globals;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_dst];
        for &(s, d) in edges {
            let d_local = *local
                .get(&d)
                .unwrap_or_else(|| panic!("edge destination {d} not in dst set"));
            debug_assert!((d_local as usize) < num_dst);
            let s_local = *local.entry(s).or_insert_with(|| {
                src_globals.push(s);
                (src_globals.len() - 1) as u32
            });
            buckets[d_local as usize].push(s_local);
        }
        let mut edge_src = Vec::with_capacity(edges.len());
        let mut edge_dst = Vec::with_capacity(edges.len());
        let mut dst_indptr = Vec::with_capacity(num_dst + 1);
        dst_indptr.push(0);
        for (d, bucket) in buckets.iter().enumerate() {
            edge_src.extend_from_slice(bucket);
            edge_dst.extend(std::iter::repeat_n(d as u32, bucket.len()));
            dst_indptr.push(edge_src.len());
        }
        Self {
            src_globals,
            num_dst,
            edge_src,
            edge_dst,
            dst_indptr,
        }
    }

    /// Number of source nodes (destinations included).
    pub fn num_src(&self) -> usize {
        self.src_globals.len()
    }

    /// Number of destination nodes.
    pub fn num_dst(&self) -> usize {
        self.num_dst
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Global ids of all source nodes; the first [`Block::num_dst`] entries
    /// are the destination nodes.
    pub fn src_globals(&self) -> &[NodeId] {
        &self.src_globals
    }

    /// Global ids of the destination nodes.
    pub fn dst_globals(&self) -> &[NodeId] {
        &self.src_globals[..self.num_dst]
    }

    /// Per-edge local source indices, grouped by destination.
    pub fn edge_src_locals(&self) -> &[u32] {
        &self.edge_src
    }

    /// Per-edge local destination indices (non-decreasing).
    pub fn edge_dst_locals(&self) -> &[u32] {
        &self.edge_dst
    }

    /// Local source indices of the in-edges of destination `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_dst`.
    pub fn in_edges(&self, d: usize) -> &[u32] {
        assert!(d < self.num_dst, "destination {d} out of bounds");
        &self.edge_src[self.dst_indptr[d]..self.dst_indptr[d + 1]]
    }

    /// In-degree of destination `d`.
    pub fn in_degree(&self, d: usize) -> usize {
        self.in_edges(d).len()
    }

    /// Iterates edges as `(src_global, dst_global)`.
    pub fn iter_global_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edge_src
            .iter()
            .zip(self.edge_dst.iter())
            .map(move |(&s, &d)| (self.src_globals[s as usize], self.src_globals[d as usize]))
    }

    /// Groups destinations by in-degree for bucketed aggregation, clamping
    /// degrees above `max_bucket` into the final bucket (DGL's "in-degree
    /// bucketing", the source of the paper's *bucketing explosion*, §4.4.2).
    ///
    /// Returns `max_bucket + 1` buckets; bucket `i < max_bucket` holds
    /// destinations of in-degree exactly `i`, and bucket `max_bucket` holds
    /// the long tail (`in-degree >= max_bucket`).
    pub fn degree_buckets(&self, max_bucket: usize) -> Vec<Vec<u32>> {
        let mut buckets = vec![Vec::new(); max_bucket + 1];
        for d in 0..self.num_dst {
            let deg = self.in_degree(d).min(max_bucket);
            buckets[deg].push(d as u32);
        }
        buckets
    }

    /// Groups destinations by *exact* in-degree: map from degree to the
    /// destinations with that degree (used by the LSTM aggregator, which
    /// processes equal-length neighbor sequences together).
    pub fn exact_degree_buckets(&self) -> Vec<(usize, Vec<u32>)> {
        let mut map: HashMap<usize, Vec<u32>> = HashMap::new();
        for d in 0..self.num_dst {
            map.entry(self.in_degree(d)).or_default().push(d as u32);
        }
        let mut out: Vec<(usize, Vec<u32>)> = map.into_iter().collect();
        out.sort_unstable_by_key(|(deg, _)| *deg);
        out
    }

    /// The paper's block-size measure (§4.4.3 item 4): each edge is two node
    /// ids plus a weight, i.e. `3 · |E|` stored values.
    pub fn storage_values(&self) -> usize {
        3 * self.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        // dst = {8, 5}; edges into 8 from {4,5,7,11}, into 5 from {4,9}.
        Block::new(
            vec![8, 5],
            &[(4, 8), (5, 8), (7, 8), (11, 8), (4, 5), (9, 5)],
        )
    }

    #[test]
    fn dst_first_src_ordering() {
        let b = sample_block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.dst_globals(), &[8, 5]);
        // dst nodes lead the src list, then first-seen order.
        assert_eq!(b.src_globals(), &[8, 5, 4, 7, 11, 9]);
        assert_eq!(b.num_src(), 6);
        assert_eq!(b.num_edges(), 6);
    }

    #[test]
    fn in_edges_grouped_by_dst() {
        let b = sample_block();
        // dst 0 is global 8: neighbors 4,5,7,11 → locals 2,1,3,4.
        assert_eq!(b.in_edges(0), &[2, 1, 3, 4]);
        assert_eq!(b.in_degree(0), 4);
        assert_eq!(b.in_edges(1), &[2, 5]);
        assert_eq!(b.in_degree(1), 2);
    }

    #[test]
    fn edge_dst_locals_non_decreasing() {
        let b = sample_block();
        let d = b.edge_dst_locals();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn iter_global_edges_roundtrip() {
        let b = sample_block();
        let mut edges: Vec<_> = b.iter_global_edges().collect();
        edges.sort_unstable();
        let mut expected = vec![(4, 8), (5, 8), (7, 8), (11, 8), (4, 5), (9, 5)];
        expected.sort_unstable();
        assert_eq!(edges, expected);
    }

    #[test]
    fn degree_buckets_clamp_tail() {
        let b = sample_block();
        let buckets = b.degree_buckets(3);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[2], vec![1]); // dst 1 has degree 2
        assert_eq!(buckets[3], vec![0]); // dst 0 has degree 4, clamped
    }

    #[test]
    fn exact_degree_buckets_sorted() {
        let b = sample_block();
        let buckets = b.exact_degree_buckets();
        assert_eq!(buckets, vec![(2, vec![1]), (4, vec![0])]);
    }

    #[test]
    fn isolated_destination_allowed() {
        let b = Block::new(vec![1, 2], &[(3, 1)]);
        assert_eq!(b.in_degree(1), 0);
        assert_eq!(b.num_src(), 3);
    }

    #[test]
    fn storage_values_is_three_per_edge() {
        assert_eq!(sample_block().storage_values(), 18);
    }

    #[test]
    #[should_panic(expected = "not in dst set")]
    fn edge_to_unknown_dst_rejected() {
        Block::new(vec![1], &[(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_dst_rejected() {
        Block::new(vec![1, 1], &[]);
    }

    #[test]
    fn self_loop_uses_dst_local() {
        let b = Block::new(vec![7], &[(7, 7)]);
        assert_eq!(b.num_src(), 1);
        assert_eq!(b.in_edges(0), &[0]);
    }
}

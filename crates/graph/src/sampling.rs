//! Fanout-bounded neighbor sampling (DGL `MultiLayerNeighborSampler`
//! equivalent).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Batch, Block, CsrGraph, NodeId};

/// Samples a multi-level bipartite [`Batch`] for `seeds` from `graph`.
///
/// `graph` is the raw input graph with edges `u → v` meaning "`v` aggregates
/// from `u`"; sampling therefore draws from each destination's *in*-
/// neighborhood. `fanouts[i]` bounds the in-degree of layer `i`'s block
/// (`fanouts[0]` is the input-most layer, matching the DGL convention);
/// use `usize::MAX` for full (no-sampling) aggregation.
///
/// Sampling proceeds output-to-input: the seed set is the top block's
/// destination set, and each block's source set becomes the next block's
/// destination set — establishing the stacking invariant [`Batch`] requires.
///
/// Neighbors are drawn without replacement when the in-degree exceeds the
/// fanout; otherwise all in-edges are kept.
///
/// # Panics
///
/// Panics if `fanouts` is empty, `seeds` is empty or contains duplicates,
/// or a seed is out of range.
pub fn sample_batch(
    graph: &CsrGraph,
    seeds: &[NodeId],
    fanouts: &[usize],
    rng: &mut impl Rng,
) -> Batch {
    // Sampling needs in-neighbors: operate on the reverse graph's out-lists.
    sample_batch_in(&graph.reverse(), seeds, fanouts, rng)
}

/// Like [`sample_batch`], but takes the *in-neighbor* graph directly
/// (`in_graph.neighbors(v)` lists the nodes `v` aggregates from).
///
/// Callers that sample many batches per epoch should reverse the raw graph
/// once and use this entry point to avoid the O(E) reversal per batch.
///
/// # Panics
///
/// Same conditions as [`sample_batch`].
pub fn sample_batch_in(
    in_graph: &CsrGraph,
    seeds: &[NodeId],
    fanouts: &[usize],
    rng: &mut impl Rng,
) -> Batch {
    assert!(!fanouts.is_empty(), "at least one layer fanout required");
    assert!(!seeds.is_empty(), "at least one seed node required");
    let mut blocks: Vec<Block> = Vec::with_capacity(fanouts.len());
    let mut dst: Vec<NodeId> = seeds.to_vec();
    // Iteration is output-to-input, so `rev_idx` 0 is the topmost layer
    // (whose destinations are the seeds) and the original fanout index
    // names the layer in diagnostics.
    for (rev_idx, &fanout) in fanouts.iter().rev().enumerate() {
        let layer = fanouts.len() - 1 - rev_idx;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for &v in &dst {
            // Only the top layer's destinations are seeds; below that they
            // are sampled sources, which can only be out of range if the
            // graph itself is inconsistent.
            assert!(
                (v as usize) < in_graph.num_nodes(),
                "layer {layer} destination node {v} out of bounds for {} nodes{}",
                in_graph.num_nodes(),
                if layer + 1 == fanouts.len() {
                    " (bad seed)"
                } else {
                    ""
                }
            );
            let in_neighbors = in_graph.neighbors(v);
            if in_neighbors.len() <= fanout {
                edges.extend(in_neighbors.iter().map(|&u| (u, v)));
            } else {
                // Without-replacement sample of `fanout` in-neighbors.
                let sample: Vec<NodeId> = in_neighbors
                    .choose_multiple(rng, fanout)
                    .copied()
                    .collect();
                edges.extend(sample.into_iter().map(|u| (u, v)));
            }
        }
        let block = Block::new(dst, &edges);
        dst = block.src_globals().to_vec();
        blocks.push(block);
    }
    blocks.reverse();
    Batch::new(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn rng() -> Pcg64Mcg {
        Pcg64Mcg::seed_from_u64(42)
    }

    /// Star: node 0 aggregated from by everyone; 1..=9 point at 0.
    fn star() -> CsrGraph {
        let edges: Vec<(NodeId, NodeId)> = (1..10).map(|u| (u, 0)).collect();
        CsrGraph::from_edges(10, &edges)
    }

    #[test]
    fn full_fanout_keeps_all_in_edges() {
        let g = star();
        let b = sample_batch(&g, &[0], &[usize::MAX], &mut rng());
        assert_eq!(b.num_layers(), 1);
        assert_eq!(b.blocks()[0].in_degree(0), 9);
        assert_eq!(b.blocks()[0].num_src(), 10);
    }

    #[test]
    fn fanout_bounds_in_degree() {
        let g = star();
        let b = sample_batch(&g, &[0], &[3], &mut rng());
        assert_eq!(b.blocks()[0].in_degree(0), 3);
        // Sampled without replacement: sources are distinct.
        let srcs = b.blocks()[0].in_edges(0);
        let mut unique = srcs.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn two_layer_stacking_invariant() {
        // Chain 0→1→2 plus 3→1.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]);
        let b = sample_batch(&g, &[2], &[10, 10], &mut rng());
        b.validate().unwrap();
        assert_eq!(b.output_nodes(), &[2]);
        // Layer above: dst {2}, src {2, 1}. Layer below: dst {2, 1},
        // src {2, 1, 0, 3} (node 2 itself has in-neighbor 1 at level 0 too).
        assert_eq!(b.blocks()[1].src_globals(), &[2, 1]);
        let mut inputs = b.input_nodes().to_vec();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_seed_yields_empty_block() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let b = sample_batch(&g, &[2], &[5], &mut rng());
        assert_eq!(b.blocks()[0].num_edges(), 0);
        assert_eq!(b.blocks()[0].num_src(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = star();
        let b1 = sample_batch(&g, &[0], &[4], &mut Pcg64Mcg::seed_from_u64(7));
        let b2 = sample_batch(&g, &[0], &[4], &mut Pcg64Mcg::seed_from_u64(7));
        assert_eq!(b1, b2);
    }

    #[test]
    fn fanout_order_is_input_first() {
        // Hub 0 ← {1..9}; also 1 ← {2,3}. Seeds {0}. fanouts = [2, MAX]:
        // the OUTPUT layer gets MAX (all 9 in-edges), the input layer 2.
        let mut edges: Vec<(NodeId, NodeId)> = (1..10).map(|u| (u, 0)).collect();
        edges.push((2, 1));
        edges.push((3, 1));
        let g = CsrGraph::from_edges(10, &edges);
        let b = sample_batch(&g, &[0], &[2, usize::MAX], &mut rng());
        assert_eq!(b.blocks()[1].in_degree(0), 9, "output layer unsampled");
        // Input-most layer: node 1 is a dst there with in-degree ≤ 2.
        let bottom = &b.blocks()[0];
        let pos = bottom
            .dst_globals()
            .iter()
            .position(|&v| v == 1)
            .expect("node 1 is a level-0 destination");
        assert!(bottom.in_degree(pos) <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        sample_batch(&star(), &[], &[3], &mut rng());
    }

    #[test]
    #[should_panic(expected = "layer 1 destination node 99 out of bounds for 10 nodes (bad seed)")]
    fn out_of_range_seed_names_the_top_layer() {
        // Two fanouts → the seed layer is layer 1 (the topmost).
        sample_batch(&star(), &[99], &[3, 3], &mut rng());
    }
}

use std::collections::HashSet;

use crate::{Block, NodeId};

/// A full GNN batch: the multi-level bipartite structure of §4.2.2.
///
/// `blocks[0]` is the *input-most* layer (largest source set) and
/// `blocks[num_layers() - 1]` the *output* layer whose destinations are the
/// labelled training nodes. The stacking invariant — layer `i`'s
/// destinations are exactly layer `i+1`'s sources — is established by
/// [`crate::sample_batch`] and preserved by [`Batch::restrict`];
/// [`Batch::validate`] checks it.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    blocks: Vec<Block>,
}

impl Batch {
    /// Wraps pre-built blocks into a batch.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or the stacking invariant does not hold.
    pub fn new(blocks: Vec<Block>) -> Self {
        assert!(!blocks.is_empty(), "a batch needs at least one block");
        let batch = Self { blocks };
        batch
            .validate()
            .unwrap_or_else(|e| panic!("invalid block stack: {e}"));
        batch
    }

    /// The per-layer blocks, input-most first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of GNN layers this batch feeds.
    pub fn num_layers(&self) -> usize {
        self.blocks.len()
    }

    /// Global ids of the input nodes (whose raw features are loaded).
    pub fn input_nodes(&self) -> &[NodeId] {
        self.blocks[0].src_globals()
    }

    /// Global ids of the output (labelled) nodes.
    pub fn output_nodes(&self) -> &[NodeId] {
        self.blocks
            .last()
            .expect("batch is never empty")
            .dst_globals()
    }

    /// Total source nodes summed over every layer — the paper's
    /// "total number of nodes in all micro-batches" unit used by the
    /// computation-efficiency metric (§6.4) and Table 6.
    pub fn total_src_nodes(&self) -> usize {
        self.blocks.iter().map(Block::num_src).sum()
    }

    /// Total edges over all blocks.
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(Block::num_edges).sum()
    }

    /// Checks the stacking invariant.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated layer boundary.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.blocks.len().saturating_sub(1) {
            let below = self.blocks[i].dst_globals();
            let above = self.blocks[i + 1].src_globals();
            if below != above {
                return Err(format!(
                    "layer {i} dst set ({} nodes) != layer {} src set ({} nodes)",
                    below.len(),
                    i + 1,
                    above.len()
                ));
            }
        }
        Ok(())
    }

    /// Extracts the micro-batch induced by a subset of output nodes — the
    /// core of Betty's batch-level partitioning (§4.2.3, and the artifact's
    /// `block_dataloader.py`).
    ///
    /// Walks the bipartite stack from the output layer downward, keeping at
    /// each level exactly the edges whose destination is needed above, so
    /// the result is a self-contained batch over `output_subset`.
    ///
    /// # Panics
    ///
    /// Panics if `output_subset` contains a node that is not an output node
    /// of this batch, or duplicates.
    pub fn restrict(&self, output_subset: &[NodeId]) -> Batch {
        let full_out: HashSet<NodeId> = self.output_nodes().iter().copied().collect();
        let mut seen = HashSet::with_capacity(output_subset.len());
        for &v in output_subset {
            assert!(full_out.contains(&v), "{v} is not an output node");
            assert!(seen.insert(v), "duplicate output node {v}");
        }

        let mut sub_blocks: Vec<Block> = Vec::with_capacity(self.blocks.len());
        let mut needed: Vec<NodeId> = output_subset.to_vec();
        for block in self.blocks.iter().rev() {
            let needed_set: HashSet<NodeId> = needed.iter().copied().collect();
            let edges: Vec<(NodeId, NodeId)> = block
                .iter_global_edges()
                .filter(|(_, d)| needed_set.contains(d))
                .collect();
            let sub = Block::new(needed, &edges);
            needed = sub.src_globals().to_vec();
            sub_blocks.push(sub);
        }
        sub_blocks.reverse();
        Batch::new(sub_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-layer batch modelled on the paper's Figure 7: output nodes
    /// {8, 5}; level-2 sources {4, 5, 7, 8, 11}; level-1 expands one hop
    /// further.
    fn fig7_batch() -> Batch {
        let top = Block::new(vec![8, 5], &[(4, 8), (5, 8), (7, 8), (11, 8), (4, 5), (9, 5)]);
        let mid_dst = top.src_globals().to_vec(); // [8,5,4,7,11,9]
        let mid = Block::new(
            mid_dst,
            &[
                (3, 4),
                (5, 4),
                (8, 4),
                (6, 7),
                (8, 7),
                (10, 11),
                (4, 8),
                (5, 8),
                (4, 5),
                (2, 9),
            ],
        );
        Batch::new(vec![mid, top])
    }

    #[test]
    fn accessors() {
        let b = fig7_batch();
        assert_eq!(b.num_layers(), 2);
        assert_eq!(b.output_nodes(), &[8, 5]);
        assert!(b.input_nodes().len() >= 6);
        assert_eq!(b.total_edges(), 16);
        assert_eq!(
            b.total_src_nodes(),
            b.blocks()[0].num_src() + b.blocks()[1].num_src()
        );
    }

    #[test]
    fn validate_catches_broken_stack() {
        let top = Block::new(vec![1], &[(2, 1)]);
        let bottom = Block::new(vec![9], &[]);
        let batch = Batch { blocks: vec![bottom, top] };
        assert!(batch.validate().is_err());
    }

    #[test]
    fn restrict_single_output() {
        let b = fig7_batch();
        let micro = b.restrict(&[8]);
        assert_eq!(micro.output_nodes(), &[8]);
        micro.validate().unwrap();
        // Top block keeps only edges into 8.
        assert_eq!(micro.blocks()[1].num_edges(), 4);
        // Node 9 (a neighbor only of 5) must not appear anywhere.
        assert!(!micro.input_nodes().contains(&9));
        assert!(!micro.blocks()[1].src_globals().contains(&9));
    }

    #[test]
    fn restrict_preserves_all_in_edges_of_kept_dsts() {
        let b = fig7_batch();
        let micro = b.restrict(&[5]);
        // Output 5 keeps both of its in-edges.
        assert_eq!(micro.blocks()[1].num_edges(), 2);
        // Its sources {5, 4, 9} become mid-level dsts with all their edges.
        let mid = &micro.blocks()[0];
        let dsts = mid.dst_globals().to_vec();
        assert_eq!(dsts, vec![5, 4, 9]);
        for (d, expect_deg) in [(0usize, 1usize), (1, 3), (2, 1)] {
            assert_eq!(mid.in_degree(d), expect_deg, "dst {d}");
        }
    }

    #[test]
    fn restrict_to_everything_is_identity_on_structure() {
        let b = fig7_batch();
        let full = b.restrict(b.output_nodes());
        assert_eq!(full.output_nodes(), b.output_nodes());
        assert_eq!(full.total_edges(), b.total_edges());
        // Same node sets per layer (order may differ).
        for (orig, rest) in b.blocks().iter().zip(full.blocks()) {
            let mut a: Vec<_> = orig.src_globals().to_vec();
            let mut c: Vec<_> = rest.src_globals().to_vec();
            a.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, c);
        }
    }

    #[test]
    fn micro_batches_cover_disjoint_outputs() {
        let b = fig7_batch();
        let m1 = b.restrict(&[8]);
        let m2 = b.restrict(&[5]);
        // Disjoint output union = full output set.
        let mut outs: Vec<NodeId> = m1
            .output_nodes()
            .iter()
            .chain(m2.output_nodes())
            .copied()
            .collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![5, 8]);
        // Redundancy exists: shared sources appear in both micro-batches.
        let s1: HashSet<_> = m1.input_nodes().iter().copied().collect();
        let s2: HashSet<_> = m2.input_nodes().iter().copied().collect();
        assert!(s1.intersection(&s2).count() > 0);
    }

    #[test]
    #[should_panic(expected = "not an output node")]
    fn restrict_rejects_non_output() {
        fig7_batch().restrict(&[4]);
    }

    #[test]
    #[should_panic(expected = "duplicate output node")]
    fn restrict_rejects_duplicates() {
        fig7_batch().restrict(&[8, 8]);
    }
}

//! Weakly-connected components.

use crate::{CsrGraph, NodeId};

/// Weakly-connected component label per node (labels are `0..count`,
/// assigned in discovery order), plus the component count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: usize,
}

impl Components {
    /// Component label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn label(&self, node: NodeId) -> u32 {
        self.labels[node as usize]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of every component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Whether two nodes share a component.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.label(a) == self.label(b)
    }
}

/// Computes weakly-connected components (edge direction ignored) by BFS.
pub fn weakly_connected_components(graph: &CsrGraph) -> Components {
    let n = graph.num_nodes();
    let reverse = graph.reverse();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u).iter().chain(reverse.neighbors(u)) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components_plus_isolate() {
        // {0,1,2} chain, {3,4} pair, {5} isolate.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let cc = weakly_connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert!(cc.connected(0, 2));
        assert!(cc.connected(3, 4));
        assert!(!cc.connected(2, 3));
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(cc.largest(), 3);
    }

    #[test]
    fn direction_is_ignored() {
        // Only a back-edge connects 1 to 0.
        let g = CsrGraph::from_edges(2, &[(1, 0)]);
        let cc = weakly_connected_components(&g);
        assert_eq!(cc.count(), 1);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = CsrGraph::from_edges(4, &[]);
        let cc = weakly_connected_components(&g);
        assert_eq!(cc.count(), 4);
        assert_eq!(cc.largest(), 1);
    }

    #[test]
    fn generated_graphs_are_mostly_one_component() {
        // The dataset generator's preferential attachment keeps the graph
        // connected up to bootstrap stragglers.
        let g = CsrGraph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        assert_eq!(weakly_connected_components(&g).count(), 1);
    }
}

//! Graph substrate for the Betty GNN training system.
//!
//! This crate provides everything Betty needs to represent and manipulate
//! graph structure, independent of any neural-network concern:
//!
//! * [`CsrGraph`] — compressed-sparse-row storage for (optionally weighted)
//!   directed graphs, with reverse-view construction and degree queries.
//! * [`Block`] — one level of the multi-level bipartite structure a GNN
//!   batch is made of (the equivalent of a DGL `Block`), with local↔global
//!   index maps.
//! * [`Batch`] — a stack of blocks forming a full multi-level bipartite
//!   batch, plus [`Batch::restrict`], the micro-batch extraction primitive
//!   Betty's batch-level partitioning is built on.
//! * [`sample_batch`] — fanout-bounded neighbor sampling producing a
//!   [`Batch`] from seed (output) nodes.
//! * [`shared_neighbor_graph`] — Gustavson-style sparse `Aᵀ·A` restricted to
//!   destination nodes: the **Redundancy-Embedded Graph** (REG) of the paper.
//! * [`degree`] — degree-distribution statistics (power-law tails,
//!   in-degree bucketing histograms).
//!
//! # Example
//!
//! ```
//! use betty_graph::{CsrGraph, sample_batch};
//! use rand::SeedableRng;
//!
//! // A 4-cycle: 0→1→2→3→0.
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(0);
//! let batch = sample_batch(&g, &[2], &[4, 4], &mut rng);
//! assert_eq!(batch.num_layers(), 2);
//! assert_eq!(batch.output_nodes(), &[2]);
//! ```

#![deny(missing_docs)]

mod batch;
mod block;
mod components;
mod csr;
pub mod degree;
mod sampling;
mod spgemm;

pub use batch::Batch;
pub use block::Block;
pub use components::{weakly_connected_components, Components};
pub use csr::CsrGraph;
pub use sampling::{sample_batch, sample_batch_in};
pub use spgemm::{
    dependency_reg, dependency_reg_with_threads, shared_neighbor_graph,
    shared_neighbor_graph_with_threads,
};

/// Node identifier within a graph (global id).
pub type NodeId = u32;

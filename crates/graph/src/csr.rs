use crate::NodeId;

/// A directed graph in compressed-sparse-row form, optionally edge-weighted.
///
/// Adjacency is stored by *out*-edges: `neighbors(u)` are the nodes `u`
/// points to. GNN message flow in this codebase follows paper notation
/// (`u → v` means `v` aggregates from `u`), so samplers usually work on the
/// [`CsrGraph::reverse`] view.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
    weights: Option<Vec<f32>>,
}

impl CsrGraph {
    /// Builds a graph from an edge list `(src, dst)`.
    ///
    /// Parallel edges are kept; neighbor lists are sorted by destination.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Self::from_weighted_edges(n, edges.iter().map(|&(u, v)| (u, v, 1.0)), false)
    }

    /// Builds a weighted graph from `(src, dst, weight)` triples.
    ///
    /// When `store_weights` is false, weights are discarded (all edges count
    /// as 1.0 in queries).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_weighted_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f32)>,
        store_weights: bool,
    ) -> Self {
        let mut triples: Vec<(NodeId, NodeId, f32)> = edges.into_iter().collect();
        for &(u, v, _) in &triples {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of bounds for {n} nodes"
            );
        }
        triples.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = vec![0usize; n + 1];
        for &(u, _, _) in &triples {
            indptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            indptr[i + 1] += indptr[i];
        }
        let indices = triples.iter().map(|&(_, v, _)| v).collect();
        let weights = store_weights.then(|| triples.iter().map(|&(_, _, w)| w).collect());
        Self {
            indptr,
            indices,
            weights,
        }
    }

    /// Assembles a graph directly from pre-built CSR arrays.
    ///
    /// The fast path for kernels (e.g. the sharded REG SpGEMM) that already
    /// produce row-ordered output: no triple materialization, no re-sort.
    /// Callers must supply a valid CSR with neighbor lists sorted per row —
    /// the same invariants [`CsrGraph::from_weighted_edges`] establishes —
    /// so that structural equality with triple-built graphs holds.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are not a well-formed CSR (`indptr` not
    /// monotone or not ending at `indices.len()`, an endpoint out of
    /// bounds, an unsorted row, or a weight array of mismatched length).
    pub fn from_csr_parts(
        indptr: Vec<usize>,
        indices: Vec<NodeId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        assert!(!indptr.is_empty(), "indptr must have at least one entry");
        let n = indptr.len() - 1;
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            indptr[n],
            indices.len(),
            "indptr must end at the edge count"
        );
        for u in 0..n {
            assert!(indptr[u] <= indptr[u + 1], "indptr must be monotone");
            let row = &indices[indptr[u]..indptr[u + 1]];
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row {u} unsorted");
        }
        assert!(
            indices.iter().all(|&v| (v as usize) < n),
            "edge endpoint out of bounds for {n} nodes"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), indices.len(), "weights length mismatch");
        }
        Self {
            indptr,
            indices,
            weights,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Whether edge weights are stored.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-neighbors of `u`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.indices[self.indptr[u]..self.indptr[u + 1]]
    }

    /// Weights parallel to [`CsrGraph::neighbors`], if stored.
    pub fn neighbor_weights(&self, u: NodeId) -> Option<&[f32]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.indptr[u as usize]..self.indptr[u as usize + 1]])
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// In-degree of every node (one O(E) pass).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for &v in &self.indices {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .map(|u| self.indptr[u + 1] - self.indptr[u])
            .collect()
    }

    /// The reverse graph (every edge flipped), preserving weights.
    pub fn reverse(&self) -> Self {
        let n = self.num_nodes();
        let edges = self.iter_edges().map(|(u, v, w)| (v, u, w));
        Self::from_weighted_edges(n, edges, self.weights.is_some())
    }

    /// Iterates all edges as `(src, dst, weight)`; weight is 1.0 when the
    /// graph is unweighted.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            let s = self.indptr[u as usize];
            let e = self.indptr[u as usize + 1];
            (s..e).map(move |i| {
                let w = self.weights.as_ref().map_or(1.0, |ws| ws[i]);
                (u, self.indices[i], w)
            })
        })
    }

    /// Sum of all edge weights (edge count for unweighted graphs).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().map(|&x| x as f64).sum(),
            None => self.num_edges() as f64,
        }
    }

    /// Whether edge `u → v` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Induced subgraph on `nodes`, relabelled `0..nodes.len()`.
    ///
    /// Returns the subgraph and the mapping from new id to original id
    /// (`nodes` itself, copied).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Self, Vec<NodeId>) {
        let n = self.num_nodes();
        let mut local = vec![u32::MAX; n];
        for (i, &g) in nodes.iter().enumerate() {
            assert!((g as usize) < n, "node {g} out of bounds");
            assert!(local[g as usize] == u32::MAX, "duplicate node {g}");
            local[g as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &g in nodes {
            let s = self.indptr[g as usize];
            let e = self.indptr[g as usize + 1];
            for i in s..e {
                let v = self.indices[i];
                if local[v as usize] != u32::MAX {
                    let w = self.weights.as_ref().map_or(1.0, |ws| ws[i]);
                    edges.push((local[g as usize], local[v as usize], w));
                }
            }
        }
        (
            Self::from_weighted_edges(nodes.len(), edges, self.weights.is_some()),
            nodes.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0→1, 0→2, 1→3, 2→3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn reverse_flips_edges() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.neighbors(0), &[] as &[NodeId]);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn weights_preserved_through_reverse() {
        let g = CsrGraph::from_weighted_edges(3, [(0u32, 1u32, 2.5f32), (1, 2, 4.0)], true);
        let r = g.reverse();
        assert_eq!(r.neighbor_weights(1), Some(&[2.5f32][..]));
        assert_eq!(r.neighbor_weights(2), Some(&[4.0f32][..]));
        assert_eq!(g.total_weight(), 6.5);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn parallel_edges_kept() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.num_nodes(), 3);
        // Kept edges: 0→1 and 1→3 (local 1→2). 0→2 and 2→3 drop out.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn iter_edges_roundtrip() {
        let g = diamond();
        let edges: Vec<(NodeId, NodeId)> = g.iter_edges().map(|(u, v, _)| (u, v)).collect();
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn csr_parts_equal_triple_built_graph() {
        let g = CsrGraph::from_weighted_edges(
            3,
            [(0u32, 1u32, 2.0f32), (0, 2, 1.0), (2, 0, 3.0)],
            true,
        );
        let parts = CsrGraph::from_csr_parts(
            vec![0, 2, 2, 3],
            vec![1, 2, 0],
            Some(vec![2.0, 1.0, 3.0]),
        );
        assert_eq!(g, parts);
    }

    #[test]
    #[should_panic(expected = "unsorted")]
    fn csr_parts_reject_unsorted_rows() {
        CsrGraph::from_csr_parts(vec![0, 2], vec![1, 0], None);
    }
}

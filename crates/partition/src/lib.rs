//! Graph partitioners for the Betty GNN training system.
//!
//! Implements the four partitioning strategies evaluated in the paper:
//!
//! * [`RangePartitioner`] — contiguous, equal-size id ranges (§6.1).
//! * [`RandomPartitioner`] — uniformly shuffled equal-size parts (§6.1).
//! * [`MultilevelPartitioner`] — a from-scratch multilevel k-way min-edge-cut
//!   partitioner in the METIS family: heavy-edge-matching coarsening, greedy
//!   graph-growing initial partitioning, and boundary Kernighan–Lin
//!   refinement with a balance constraint. Used both as the "Metis" baseline
//!   and as the cut engine inside Betty's REG partitioning.
//! * [`reg_partition`] — Algorithm 1 of the paper: build the
//!   Redundancy-Embedded Graph of a batch's output layer and min-cut it.
//!
//! All partitioners are deterministic given their seed.
//!
//! # Example
//!
//! ```
//! use betty_graph::CsrGraph;
//! use betty_partition::{MultilevelPartitioner, Partitioner};
//!
//! // Two triangles joined by one edge: the min cut separates them.
//! let g = CsrGraph::from_edges(
//!     6,
//!     &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0),
//!       (3, 4), (4, 3), (4, 5), (5, 4), (3, 5), (5, 3),
//!       (2, 3), (3, 2)],
//! );
//! let p = MultilevelPartitioner::new(0).partition(&g, 2);
//! assert_eq!(p.edge_cut(&g), 2.0); // one undirected edge, both directions
//! ```

#![deny(missing_docs)]

mod metrics;
mod multilevel;
mod partitioning;
mod reg;
mod simple;
mod streaming;

pub use metrics::{input_redundancy, RedundancyReport};
pub use multilevel::MultilevelPartitioner;
pub use partitioning::Partitioning;
pub use reg::{reg_partition, OutputGraphPartitioner, OutputPartitioner, RegPartitioner, RegScope};
pub use simple::{RandomPartitioner, RangePartitioner};
pub use streaming::LdgPartitioner;

use betty_graph::CsrGraph;

/// A k-way graph partitioning strategy.
///
/// Implementations must return a [`Partitioning`] with every node assigned
/// to one of `k` parts; when `graph.num_nodes() >= k`, every part must be
/// non-empty.
pub trait Partitioner {
    /// Human-readable strategy name, used in experiment output.
    fn name(&self) -> &'static str;

    /// Partitions `graph` into `k` parts, balancing total *node weight*
    /// per part.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `node_weights.len() != graph.num_nodes()`.
    fn partition_weighted(
        &self,
        graph: &CsrGraph,
        node_weights: &[f64],
        k: usize,
    ) -> Partitioning;

    /// Partitions `graph` into `k` parts with unit node weights.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    fn partition(&self, graph: &CsrGraph, k: usize) -> Partitioning {
        self.partition_weighted(graph, &vec![1.0; graph.num_nodes()], k)
    }
}

//! The paper's structure-oblivious baselines: range and random partitioning
//! of the output-node id space (§6.1).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_graph::CsrGraph;

use crate::{Partitioner, Partitioning};

/// Splits the node id space into `k` contiguous, nearly equal-size ranges.
///
/// Matches the paper's *range partition*: "the space of output node IDs is
/// evenly and sequentially partitioned". Node weights are ignored — the
/// baseline balances node *counts*, exactly like the original.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangePartitioner;

impl RangePartitioner {
    /// Creates a range partitioner.
    pub fn new() -> Self {
        Self
    }
}

impl Partitioner for RangePartitioner {
    fn name(&self) -> &'static str {
        "range"
    }

    fn partition_weighted(
        &self,
        graph: &CsrGraph,
        node_weights: &[f64],
        k: usize,
    ) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = graph.num_nodes();
        assert_eq!(node_weights.len(), n, "one weight per node");
        let assignment = (0..n)
            .map(|i| ((i * k) / n.max(1)).min(k - 1) as u32)
            .collect();
        Partitioning::new(assignment, k)
    }
}

/// Shuffles node ids uniformly, then splits into `k` equal-size parts.
///
/// Matches the paper's *random partition*: "the space of output node IDs is
/// evenly and randomly partitioned". Deterministic for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a random partitioner with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition_weighted(
        &self,
        graph: &CsrGraph,
        node_weights: &[f64],
        k: usize,
    ) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = graph.num_nodes();
        assert_eq!(node_weights.len(), n, "one weight per node");
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(self.seed);
        order.shuffle(&mut rng);
        let mut assignment = vec![0u32; n];
        for (rank, &node) in order.iter().enumerate() {
            assignment[node] = ((rank * k) / n.max(1)).min(k - 1) as u32;
        }
        Partitioning::new(assignment, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes_only(n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, &[])
    }

    #[test]
    fn range_is_contiguous_and_even() {
        let g = nodes_only(10);
        let p = RangePartitioner::new().partition(&g, 3);
        let a = p.assignment();
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "contiguous labels");
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn range_exact_division() {
        let g = nodes_only(8);
        let p = RangePartitioner::new().partition(&g, 4);
        assert_eq!(p.part_sizes(), vec![2, 2, 2, 2]);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(7), 3);
    }

    #[test]
    fn random_is_even_and_seed_deterministic() {
        let g = nodes_only(100);
        let p1 = RandomPartitioner::new(5).partition(&g, 4);
        let p2 = RandomPartitioner::new(5).partition(&g, 4);
        assert_eq!(p1, p2);
        assert!(p1.part_sizes().iter().all(|&s| s == 25));
        let p3 = RandomPartitioner::new(6).partition(&g, 4);
        assert_ne!(p1.assignment(), p3.assignment(), "different seed shuffles");
    }

    #[test]
    fn more_parts_than_nodes_leaves_some_empty() {
        let g = nodes_only(2);
        let p = RangePartitioner::new().partition(&g, 4);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 2);
    }

    #[test]
    fn k_one_puts_everything_in_part_zero() {
        let g = nodes_only(5);
        for part in [
            RangePartitioner::new().partition(&g, 1),
            RandomPartitioner::new(0).partition(&g, 1),
        ] {
            assert_eq!(part.part_sizes(), vec![5]);
        }
    }
}

use betty_graph::{CsrGraph, NodeId};

/// The result of a k-way partitioning: a part label per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    k: usize,
}

impl Partitioning {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any label is `>= k`.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        for (i, &p) in assignment.iter().enumerate() {
            assert!((p as usize) < k, "node {i} assigned to part {p} >= k = {k}");
        }
        Self { assignment, k }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Part label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn part_of(&self, node: NodeId) -> u32 {
        self.assignment[node as usize]
    }

    /// The raw per-node labels.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Nodes of each part, in ascending node order.
    pub fn parts(&self) -> Vec<Vec<NodeId>> {
        let mut parts = vec![Vec::new(); self.k];
        for (i, &p) in self.assignment.iter().enumerate() {
            parts[p as usize].push(i as NodeId);
        }
        parts
    }

    /// Number of nodes per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Total node weight per part.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the node count.
    pub fn part_weights(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.assignment.len(), "one weight per node");
        let mut out = vec![0.0; self.k];
        for (i, &p) in self.assignment.iter().enumerate() {
            out[p as usize] += weights[i];
        }
        out
    }

    /// Sum of weights of *directed* edges crossing parts.
    ///
    /// For a symmetric graph (every undirected edge stored both ways) this
    /// is twice the undirected cut.
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from the assignment length.
    pub fn edge_cut(&self, graph: &CsrGraph) -> f64 {
        assert_eq!(
            graph.num_nodes(),
            self.assignment.len(),
            "graph/assignment size mismatch"
        );
        graph
            .iter_edges()
            .filter(|&(u, v, _)| self.assignment[u as usize] != self.assignment[v as usize])
            .map(|(_, _, w)| w as f64)
            .sum()
    }

    /// Load-balance factor: `max part weight / (total weight / k)`.
    ///
    /// 1.0 is perfect balance; the conventional constraint is ≤ 1 + ε.
    /// Returns 1.0 for zero total weight.
    pub fn balance(&self, weights: &[f64]) -> f64 {
        let pw = self.part_weights(weights);
        let total: f64 = pw.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let ideal = total / self.k as f64;
        pw.iter().cloned().fold(0.0, f64::max) / ideal
    }

    /// Whether every part holds at least one node.
    pub fn all_parts_nonempty(&self) -> bool {
        self.part_sizes().iter().all(|&s| s > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        // 0—1—2—3 as a symmetric path.
        CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn parts_and_sizes() {
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.parts(), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.part_sizes(), vec![2, 2]);
        assert!(p.all_parts_nonempty());
    }

    #[test]
    fn edge_cut_counts_directed_crossings() {
        let g = path4();
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        // Only 1—2 crosses, stored in both directions.
        assert_eq!(p.edge_cut(&g), 2.0);
        let worst = Partitioning::new(vec![0, 1, 0, 1], 2);
        assert_eq!(worst.edge_cut(&g), 6.0);
    }

    #[test]
    fn balance_factor() {
        let p = Partitioning::new(vec![0, 0, 0, 1], 2);
        let b = p.balance(&[1.0, 1.0, 1.0, 1.0]);
        assert!((b - 1.5).abs() < 1e-12);
        let even = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert!((even.balance(&[1.0; 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_parts() {
        let p = Partitioning::new(vec![0, 1, 1], 2);
        assert_eq!(p.part_weights(&[5.0, 1.0, 2.0]), vec![5.0, 3.0]);
    }

    #[test]
    fn empty_part_detected() {
        let p = Partitioning::new(vec![0, 0], 2);
        assert!(!p.all_parts_nonempty());
    }

    #[test]
    #[should_panic(expected = ">= k")]
    fn label_out_of_range_rejected() {
        Partitioning::new(vec![0, 3], 2);
    }
}

//! A from-scratch multilevel k-way min-edge-cut partitioner.
//!
//! This plays the role METIS plays in the paper: Betty only requires "any
//! existing graph partitioning algorithm that minimizes the cut flow"
//! (§4.3.2), and the multilevel scheme — coarsen by heavy-edge matching,
//! partition the small graph greedily, project back while refining with
//! boundary Kernighan–Lin moves — is the same algorithm family.
//!
//! The implementation favours clarity over the last few percent of cut
//! quality: matching is randomized heavy-edge, initial partitioning is
//! greedy graph growing, and refinement is gain-based pass-wise KL with a
//! balance constraint and explicit rebalancing.

use std::collections::VecDeque;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_graph::CsrGraph;

use crate::{Partitioner, Partitioning};

/// Multilevel k-way partitioner (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelPartitioner {
    seed: u64,
    balance_epsilon: f64,
    refinement_passes: usize,
    coarsen_nodes_per_part: usize,
}

impl MultilevelPartitioner {
    /// Creates a partitioner with default tuning (ε = 0.1 balance slack,
    /// 4 refinement passes, coarsening to ~30 nodes per part).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            balance_epsilon: 0.1,
            refinement_passes: 4,
            coarsen_nodes_per_part: 30,
        }
    }

    /// Sets the allowed imbalance: max part weight ≤ (1 + ε) · ideal.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative.
    pub fn with_balance_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "balance epsilon must be non-negative");
        self.balance_epsilon = epsilon;
        self
    }

    /// Sets the number of refinement passes per level (0 disables
    /// refinement — used by the ablation benches).
    pub fn with_refinement_passes(mut self, passes: usize) -> Self {
        self.refinement_passes = passes;
        self
    }
}

/// Working representation: merged undirected adjacency with weights.
struct Level {
    /// Sorted, merged neighbor lists (no self-loops).
    adj: Vec<Vec<(u32, f32)>>,
    node_w: Vec<f64>,
    /// For non-finest levels: fine node -> this level's coarse node.
    fine_to_coarse: Option<Vec<u32>>,
}

impl Level {
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }
}

fn merge_neighbors(mut pairs: Vec<(u32, f32)>) -> Vec<(u32, f32)> {
    pairs.sort_unstable_by_key(|&(v, _)| v);
    let mut out: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
    for (v, w) in pairs {
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 += w,
            _ => out.push((v, w)),
        }
    }
    out
}

fn finest_level(graph: &CsrGraph, node_weights: &[f64]) -> Level {
    let n = graph.num_nodes();
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    // Symmetrize: accumulate both directions, drop self-loops.
    for (u, v, w) in graph.iter_edges() {
        if u != v {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
    }
    let adj = adj.into_iter().map(merge_neighbors).collect();
    Level {
        adj,
        node_w: node_weights.to_vec(),
        fine_to_coarse: None,
    }
}

/// One round of randomized heavy-edge matching; returns the coarse level,
/// or `None` if coarsening made insufficient progress.
fn coarsen(level: &Level, rng: &mut Pcg64Mcg) -> Option<Level> {
    let n = level.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &u in &order {
        if mate[u as usize] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u32, f32)> = None;
        for &(v, w) in &level.adj[u as usize] {
            if mate[v as usize] == u32::MAX && v != u {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((v, w)),
                }
            }
        }
        match best {
            Some((v, _)) => {
                mate[u as usize] = v;
                mate[v as usize] = u;
            }
            None => mate[u as usize] = u,
        }
    }
    // Assign coarse ids (pair representative = smaller id).
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as u32 {
        if fine_to_coarse[u as usize] != u32::MAX {
            continue;
        }
        let v = mate[u as usize];
        fine_to_coarse[u as usize] = next;
        if v != u && v != u32::MAX {
            fine_to_coarse[v as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    if coarse_n as f64 > 0.95 * n as f64 {
        return None; // no meaningful progress
    }
    let mut node_w = vec![0.0f64; coarse_n];
    for u in 0..n {
        node_w[fine_to_coarse[u] as usize] += level.node_w[u];
    }
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); coarse_n];
    for u in 0..n {
        let cu = fine_to_coarse[u];
        for &(v, w) in &level.adj[u] {
            let cv = fine_to_coarse[v as usize];
            if cu != cv {
                adj[cu as usize].push((cv, w));
            }
        }
    }
    let adj = adj.into_iter().map(merge_neighbors).collect();
    Some(Level {
        adj,
        node_w,
        fine_to_coarse: Some(fine_to_coarse),
    })
}

/// Greedy graph-growing initial partitioning of the coarsest level.
fn initial_partition(level: &Level, k: usize, rng: &mut Pcg64Mcg) -> Vec<u32> {
    let n = level.num_nodes();
    let total: f64 = level.node_w.iter().sum();
    let mut assignment = vec![u32::MAX; n];
    let mut unassigned = n;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;

    for p in 0..k.saturating_sub(1) as u32 {
        if unassigned == 0 {
            break;
        }
        let remaining_parts = (k as u32 - p) as f64;
        let assigned_w: f64 = (0..n)
            .filter(|&u| assignment[u] != u32::MAX)
            .map(|u| level.node_w[u])
            .sum();
        let target = (total - assigned_w) / remaining_parts;
        // Find an unassigned seed.
        while cursor < n && assignment[order[cursor] as usize] != u32::MAX {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed = order[cursor];
        let mut grown = 0.0f64;
        let mut queue = VecDeque::from([seed]);
        assignment[seed as usize] = p;
        unassigned -= 1;
        grown += level.node_w[seed as usize];
        while grown < target && unassigned > 0 {
            let u = match queue.pop_front() {
                Some(u) => u,
                None => {
                    // Disconnected remainder: jump to a fresh seed.
                    while cursor < n && assignment[order[cursor] as usize] != u32::MAX {
                        cursor += 1;
                    }
                    if cursor >= n {
                        break;
                    }
                    let s = order[cursor];
                    assignment[s as usize] = p;
                    unassigned -= 1;
                    grown += level.node_w[s as usize];
                    s
                }
            };
            for &(v, _) in &level.adj[u as usize] {
                if grown >= target {
                    break;
                }
                if assignment[v as usize] == u32::MAX {
                    assignment[v as usize] = p;
                    unassigned -= 1;
                    grown += level.node_w[v as usize];
                    queue.push_back(v);
                }
            }
        }
    }
    // Everything left goes to the last part.
    for a in assignment.iter_mut() {
        if *a == u32::MAX {
            *a = (k - 1) as u32;
        }
    }
    assignment
}

/// Gain-based pass-wise KL refinement with balance constraint.
///
/// Each pass runs a single-node *move* sweep (greedy gain, balance-capped)
/// followed by a pairwise *swap* sweep — the swaps escape the local optimum
/// where both parts sit at the weight cap and no single move is feasible.
fn refine(
    level: &Level,
    assignment: &mut [u32],
    k: usize,
    max_part_w: f64,
    passes: usize,
    rng: &mut Pcg64Mcg,
) {
    let n = level.num_nodes();
    let mut part_w = vec![0.0f64; k];
    for u in 0..n {
        part_w[assignment[u] as usize] += level.node_w[u];
    }
    let mut part_count = vec![0usize; k];
    for u in 0..n {
        part_count[assignment[u] as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..passes {
        order.shuffle(rng);
        let moved = move_pass(
            level,
            assignment,
            &mut part_w,
            &mut part_count,
            k,
            max_part_w,
            &order,
        );
        let swapped = swap_pass(level, assignment, &mut part_w, k, max_part_w);
        if moved + swapped == 0 {
            break;
        }
    }
}

/// Greedy single-node moves. A move is allowed into a part that stays under
/// the cap, or that remains strictly lighter than the source part (which
/// always improves balance even when both exceed the cap).
fn move_pass(
    level: &Level,
    assignment: &mut [u32],
    part_w: &mut [f64],
    part_count: &mut [usize],
    k: usize,
    max_part_w: f64,
    order: &[u32],
) -> usize {
    let mut conn = vec![0.0f32; k];
    let mut moved = 0usize;
    for &u in order {
        let u = u as usize;
        let cp = assignment[u] as usize;
        if part_count[cp] <= 1 {
            continue; // never empty a part
        }
        for c in conn.iter_mut() {
            *c = 0.0;
        }
        let mut touches_other = false;
        for &(v, w) in &level.adj[u] {
            let p = assignment[v as usize] as usize;
            conn[p] += w;
            if p != cp {
                touches_other = true;
            }
        }
        if !touches_other && part_w[cp] <= max_part_w {
            continue; // interior node in a feasible part
        }
        let uw = level.node_w[u];
        let mut best: Option<(usize, f32)> = None;
        for p in 0..k {
            if p == cp {
                continue;
            }
            let fits_cap = part_w[p] + uw <= max_part_w;
            let improves = part_w[p] + uw < part_w[cp];
            if !fits_cap && !improves {
                continue;
            }
            let gain = conn[p] - conn[cp];
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((p, gain));
            }
        }
        if let Some((p, gain)) = best {
            let overweight = part_w[cp] > max_part_w;
            if gain > 0.0 || (gain == 0.0 && overweight) {
                assignment[u] = p as u32;
                part_w[cp] -= uw;
                part_w[p] += uw;
                part_count[cp] -= 1;
                part_count[p] += 1;
                moved += 1;
            }
        }
    }
    moved
}

/// Weight of edge `u → v` at this level (0 when absent); neighbor lists are
/// sorted, so a binary search suffices.
fn edge_weight(level: &Level, u: usize, v: u32) -> f32 {
    level.adj[u]
        .binary_search_by_key(&v, |&(n, _)| n)
        .map(|i| level.adj[u][i].1)
        .unwrap_or(0.0)
}

/// Kernighan–Lin style pairwise swaps: for every (from, to) part pair keep
/// the two highest-gain migration candidates, then exchange the best
/// combination whose joint gain — corrected by twice the direct edge weight
/// between the swapped nodes — is positive and weight-feasible.
fn swap_pass(
    level: &Level,
    assignment: &mut [u32],
    part_w: &mut [f64],
    k: usize,
    max_part_w: f64,
) -> usize {
    if k < 2 {
        return 0;
    }
    const CANDIDATES: usize = 2;
    // best[(from, to)]: up to two (gain, node) candidates, best first.
    // Sparse: a dense k×k table explodes for large k (a user asking for
    // thousands of parts would otherwise OOM here), and only pairs with a
    // boundary node between them matter anyway.
    let mut best: std::collections::HashMap<(usize, usize), Vec<(f32, u32)>> =
        std::collections::HashMap::new();
    // For modest k, consider every target part (zero-gain partners from
    // untouched parts matter — e.g. swapping an isolated node out of the
    // way of a heavy pair). For large k that dense enumeration is
    // quadratic, so restrict to parts the node actually touches.
    let dense = k <= 256;
    let mut conn: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();
    for u in 0..level.num_nodes() {
        let cp = assignment[u] as usize;
        conn.clear();
        for &(v, w) in &level.adj[u] {
            *conn.entry(assignment[v as usize] as usize).or_insert(0.0) += w;
        }
        let own = conn.get(&cp).copied().unwrap_or(0.0);
        let push = |p: usize, gain: f32, best: &mut std::collections::HashMap<(usize, usize), Vec<(f32, u32)>>| {
            let slot = best.entry((cp, p)).or_default();
            slot.push((gain, u as u32));
            slot.sort_by(|a, b| b.0.total_cmp(&a.0));
            slot.truncate(CANDIDATES);
        };
        if dense {
            for p in 0..k {
                if p != cp {
                    push(p, conn.get(&p).copied().unwrap_or(0.0) - own, &mut best);
                }
            }
        } else {
            // Fixed part order: HashMap iteration order differs between
            // otherwise-identical calls, and push order breaks gain ties.
            let mut touched: Vec<(usize, f32)> = conn.iter().map(|(&p, &c)| (p, c)).collect();
            touched.sort_unstable_by_key(|&(p, _)| p);
            for (p, c) in touched {
                if p != cp {
                    push(p, c - own, &mut best);
                }
            }
        }
    }
    // Swaps mutate part weights, so later pairs see earlier pairs' moves:
    // the pair order must be fixed or two identical calls can return
    // different partitions (HashMap key order is instance-random).
    let mut pairs: Vec<(usize, usize)> = best.keys().copied().filter(|&(a, b)| a < b).collect();
    pairs.sort_unstable();
    let empty: Vec<(f32, u32)> = Vec::new();
    let mut swapped = 0usize;
    for (a, b) in pairs {
        {
            let forward = best.get(&(a, b)).unwrap_or(&empty).clone();
            let backward = best.get(&(b, a)).unwrap_or(&empty).clone();
            let mut done = false;
            for &(ga, u) in &forward {
                if done {
                    break;
                }
                for &(gb, v) in &backward {
                    // Candidate lists are stale after any swap this pass;
                    // one swap per part pair keeps the math exact.
                    let joint = ga + gb - 2.0 * edge_weight(level, u as usize, v);
                    if joint <= 0.0 {
                        continue;
                    }
                    let (wu, wv) = (level.node_w[u as usize], level.node_w[v as usize]);
                    let new_a = part_w[a] - wu + wv;
                    let new_b = part_w[b] - wv + wu;
                    let cap = max_part_w.max(part_w[a]).max(part_w[b]);
                    if new_a > cap || new_b > cap {
                        continue;
                    }
                    assignment[u as usize] = b as u32;
                    assignment[v as usize] = a as u32;
                    part_w[a] = new_a;
                    part_w[b] = new_b;
                    swapped += 1;
                    done = true;
                    break;
                }
            }
        }
    }
    swapped
}

/// Moves nodes out of overweight parts (lowest connectivity loss first)
/// until every part fits `max_part_w`, where possible.
fn rebalance(level: &Level, assignment: &mut [u32], k: usize, max_part_w: f64) {
    let n = level.num_nodes();
    let mut part_w = vec![0.0f64; k];
    for u in 0..n {
        part_w[assignment[u] as usize] += level.node_w[u];
    }
    for _ in 0..n {
        let Some(over) = (0..k).find(|&p| part_w[p] > max_part_w) else {
            break;
        };
        // Lightest destination part.
        let dest = (0..k)
            .filter(|&p| p != over)
            .min_by(|&a, &b| part_w[a].total_cmp(&part_w[b]))
            .expect("k >= 2 when a part can be overweight");
        // Cheapest *feasible* node to move: the destination must stay under
        // the cap (otherwise a single huge node — e.g. a heavy hub — would
        // be shuttled around, making balance worse). Cost is the cut-weight
        // delta of the move.
        let cost = |u: usize| -> f32 {
            level.adj[u]
                .iter()
                .map(|&(v, w)| {
                    if assignment[v as usize] as usize == over {
                        w
                    } else if assignment[v as usize] as usize == dest {
                        -w
                    } else {
                        0.0
                    }
                })
                .sum()
        };
        let candidate = (0..n)
            .filter(|&u| {
                assignment[u] as usize == over && part_w[dest] + level.node_w[u] <= max_part_w
            })
            .min_by(|&a, &b| cost(a).total_cmp(&cost(b)));
        match candidate {
            Some(u) => {
                part_w[over] -= level.node_w[u];
                part_w[dest] += level.node_w[u];
                assignment[u] = dest as u32;
            }
            // No feasible move (the part is heavy because of one huge
            // node): leave it — the weight model, not the cut, is at fault.
            None => break,
        }
    }
}

/// Ensures all `k` parts are non-empty by stealing from the largest part.
fn fix_empty_parts(level: &Level, assignment: &mut [u32], k: usize) {
    let n = level.num_nodes();
    if n < k {
        return;
    }
    loop {
        let mut count = vec![0usize; k];
        for &a in assignment.iter() {
            count[a as usize] += 1;
        }
        let Some(empty) = (0..k).find(|&p| count[p] == 0) else {
            return;
        };
        let largest = (0..k)
            .max_by_key(|&p| count[p])
            .expect("k > 0");
        let victim = (0..n)
            .find(|&u| assignment[u] as usize == largest)
            .expect("largest part non-empty");
        assignment[victim] = empty as u32;
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &'static str {
        "metis-like"
    }

    fn partition_weighted(
        &self,
        graph: &CsrGraph,
        node_weights: &[f64],
        k: usize,
    ) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = graph.num_nodes();
        assert_eq!(node_weights.len(), n, "one weight per node");
        if k == 1 || n <= 1 {
            return Partitioning::new(vec![0; n], k.max(1));
        }
        let mut rng = Pcg64Mcg::seed_from_u64(self.seed);

        // Coarsening phase.
        let mut levels = vec![finest_level(graph, node_weights)];
        let target = (self.coarsen_nodes_per_part * k).max(64);
        while levels.last().expect("non-empty").num_nodes() > target {
            match coarsen(levels.last().expect("non-empty"), &mut rng) {
                Some(coarse) => levels.push(coarse),
                None => break,
            }
        }

        let total: f64 = node_weights.iter().sum();
        let max_part_w = (1.0 + self.balance_epsilon) * total / k as f64;

        // Initial partition on the coarsest level.
        let coarsest = levels.last().expect("non-empty");
        let mut assignment = initial_partition(coarsest, k, &mut rng);
        fix_empty_parts(coarsest, &mut assignment, k);
        refine(
            coarsest,
            &mut assignment,
            k,
            max_part_w,
            self.refinement_passes,
            &mut rng,
        );

        // Uncoarsening: project and refine at each finer level.
        for li in (0..levels.len() - 1).rev() {
            let fine_to_coarse = levels[li + 1]
                .fine_to_coarse
                .as_ref()
                .expect("coarse levels carry projection maps");
            let fine_assignment: Vec<u32> = (0..levels[li].num_nodes())
                .map(|u| assignment[fine_to_coarse[u] as usize])
                .collect();
            assignment = fine_assignment;
            refine(
                &levels[li],
                &mut assignment,
                k,
                max_part_w,
                self.refinement_passes,
                &mut rng,
            );
        }

        let finest = &levels[0];
        rebalance(finest, &mut assignment, k, max_part_w);
        fix_empty_parts(finest, &mut assignment, k);
        Partitioning::new(assignment, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::NodeId;

    /// Builds a symmetric graph from undirected edge pairs.
    fn undirected(n: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
        let sym: Vec<(NodeId, NodeId)> = edges
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        CsrGraph::from_edges(n, &sym)
    }

    #[test]
    fn splits_two_cliques_perfectly() {
        // Two K4 cliques joined by a single edge.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((3, 4));
        let g = undirected(8, &edges);
        let p = MultilevelPartitioner::new(1).partition(&g, 2);
        assert_eq!(p.edge_cut(&g), 2.0, "only the bridge is cut");
        assert_eq!(p.part_sizes(), vec![4, 4]);
    }

    #[test]
    fn respects_balance_on_path() {
        let edges: Vec<(NodeId, NodeId)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = undirected(100, &edges);
        let p = MultilevelPartitioner::new(2).partition(&g, 4);
        assert!(p.all_parts_nonempty());
        let balance = p.balance(&vec![1.0; 100]);
        assert!(balance <= 1.15, "balance {balance}");
        // A path cut into 4 balanced chunks needs ≥ 3 undirected cuts; a
        // decent partitioner should stay close to that.
        assert!(p.edge_cut(&g) <= 16.0, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn weighted_cut_prefers_light_edges() {
        // Square 0-1-2-3 with heavy edges 0-1 and 2-3, light 1-2 and 3-0.
        let g = CsrGraph::from_weighted_edges(
            4,
            [
                (0u32, 1u32, 10.0f32),
                (1, 0, 10.0),
                (2, 3, 10.0),
                (3, 2, 10.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (3, 0, 1.0),
                (0, 3, 1.0),
            ],
            true,
        );
        let p = MultilevelPartitioner::new(3).partition(&g, 2);
        // Two light undirected edges, each stored in both directions.
        assert_eq!(p.edge_cut(&g), 4.0, "cuts only the two light edges");
        assert_eq!(p.part_of(0), p.part_of(1));
        assert_eq!(p.part_of(2), p.part_of(3));
    }

    #[test]
    fn node_weights_steer_balance() {
        // Star with a heavy hub: hub should sit alone-ish.
        let edges: Vec<(NodeId, NodeId)> = (1..9).map(|v| (0, v)).collect();
        let g = undirected(9, &edges);
        let mut w = vec![1.0; 9];
        w[0] = 8.0;
        let p = MultilevelPartitioner::new(4).partition_weighted(&g, &w, 2);
        let pw = p.part_weights(&w);
        let imbalance = pw.iter().cloned().fold(0.0, f64::max) / (16.0 / 2.0);
        assert!(imbalance <= 1.3, "weighted imbalance {imbalance}");
    }

    #[test]
    fn k_equals_one() {
        let g = undirected(5, &[(0, 1), (1, 2)]);
        let p = MultilevelPartitioner::new(0).partition(&g, 1);
        assert_eq!(p.part_sizes(), vec![5]);
        assert_eq!(p.edge_cut(&g), 0.0);
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = undirected(10, &[(0, 1), (2, 3), (4, 5)]);
        let p = MultilevelPartitioner::new(7).partition(&g, 3);
        assert!(p.all_parts_nonempty());
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn handles_graph_with_no_edges() {
        let g = CsrGraph::from_edges(6, &[]);
        let p = MultilevelPartitioner::new(0).partition(&g, 3);
        assert!(p.all_parts_nonempty());
        assert!(p.balance(&[1.0; 6]) <= 1.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let edges: Vec<(NodeId, NodeId)> = (0..49).map(|i| (i, i + 1)).collect();
        let g = undirected(50, &edges);
        let a = MultilevelPartitioner::new(9).partition(&g, 4);
        let b = MultilevelPartitioner::new(9).partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_on_dense_graph_with_swaps() {
        use rand::Rng;
        use rand::SeedableRng;
        // A path graph never exercises the swap pass, so this uses a dense
        // random graph where refinement finds many candidate swaps. Before
        // pair ordering was fixed, two identical calls in the same process
        // could return different partitions (HashMap iteration order).
        let mut rng = Pcg64Mcg::seed_from_u64(23);
        let mut edges = Vec::new();
        for _ in 0..1200 {
            let u = rng.gen_range(0..120u32);
            let v = rng.gen_range(0..120u32);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = undirected(120, &edges);
        for k in [2usize, 4, 8] {
            let a = MultilevelPartitioner::new(7).partition(&g, k);
            let b = MultilevelPartitioner::new(7).partition(&g, k);
            assert_eq!(a, b, "repeated calls must agree at k={k}");
        }
    }

    #[test]
    fn beats_random_on_community_graph() {
        use rand::Rng;
        use rand::SeedableRng;
        // Four planted communities of 25 nodes; dense inside, sparse across.
        let mut rng = Pcg64Mcg::seed_from_u64(11);
        let mut edges = Vec::new();
        for c in 0..4u32 {
            for _ in 0..150 {
                let u = c * 25 + rng.gen_range(0..25);
                let v = c * 25 + rng.gen_range(0..25);
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        for _ in 0..40 {
            let u = rng.gen_range(0..100);
            let v = rng.gen_range(0..100);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = undirected(100, &edges);
        let ml = MultilevelPartitioner::new(5).partition(&g, 4);
        let rnd = crate::RandomPartitioner::new(5).partition(&g, 4);
        assert!(
            ml.edge_cut(&g) < 0.5 * rnd.edge_cut(&g),
            "multilevel {} vs random {}",
            ml.edge_cut(&g),
            rnd.edge_cut(&g)
        );
    }

    #[test]
    fn refinement_improves_cut() {
        use rand::Rng;
        let mut rng = Pcg64Mcg::seed_from_u64(13);
        let mut edges = Vec::new();
        for c in 0..2u32 {
            for _ in 0..200 {
                let u = c * 50 + rng.gen_range(0..50);
                let v = c * 50 + rng.gen_range(0..50);
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        for _ in 0..30 {
            edges.push((rng.gen_range(0..50), 50 + rng.gen_range(0..50)));
        }
        let g = undirected(100, &edges);
        let refined = MultilevelPartitioner::new(1).partition(&g, 2);
        let unrefined = MultilevelPartitioner::new(1)
            .with_refinement_passes(0)
            .partition(&g, 2);
        assert!(refined.edge_cut(&g) <= unrefined.edge_cut(&g));
    }
}

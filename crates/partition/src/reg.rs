//! Batch-level (output-node) partitioning strategies, including Betty's
//! REG partitioning (paper §4.3.2, Algorithm 1).

use betty_graph::{dependency_reg, shared_neighbor_graph, Batch, Block, CsrGraph, NodeId};

use crate::{MultilevelPartitioner, Partitioner, Partitioning};

/// Which redundancy information the REG embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegScope {
    /// Algorithm 1 as published: shared sources of the last (output)
    /// layer only.
    LastLayer,
    /// Shared nodes across the *entire* multi-level dependency — the
    /// objective the paper's future work points at, and the default here
    /// because it minimizes true input redundancy on deep batches.
    #[default]
    FullDependency,
}

/// A strategy that splits a batch's *output nodes* into `k` groups, each of
/// which becomes a micro-batch via [`Batch::restrict`].
pub trait OutputPartitioner {
    /// Human-readable strategy name, used in experiment output.
    fn name(&self) -> &'static str;

    /// Splits the batch's output nodes into `k` disjoint groups whose union
    /// is the full output set. Groups may be empty only when there are
    /// fewer output nodes than `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    fn split_outputs(&self, batch: &Batch, k: usize) -> Vec<Vec<NodeId>>;
}

/// Algorithm 1: builds the Redundancy-Embedded Graph of the output layer
/// and min-cuts it with the supplied partitioner.
///
/// Returns the per-partition lists of output-node *global* ids
/// (`batched_output_nodes_list` in the paper's pseudo-code).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn reg_partition(batch: &Batch, k: usize, cutter: &impl Partitioner) -> Vec<Vec<NodeId>> {
    assert!(k > 0, "k must be positive");
    let last = batch.blocks().last().expect("batch is never empty");
    // Lines 1–7: construct REG = AᵀA over output nodes, self-loops removed.
    let reg = shared_neighbor_graph(last);
    // Line 8: K-way min-cut of REG.
    let parts = cutter.partition(&reg, k);
    // Lines 9–12: collect output-node ids per part.
    locals_to_globals(&parts, last)
}

fn locals_to_globals(parts: &Partitioning, last: &Block) -> Vec<Vec<NodeId>> {
    let dst = last.dst_globals();
    parts
        .parts()
        .into_iter()
        .map(|locals| locals.into_iter().map(|l| dst[l as usize]).collect())
        .collect()
}

/// Betty's partitioning strategy: REG construction + multilevel min-cut.
#[derive(Debug, Clone, PartialEq)]
pub struct RegPartitioner {
    cutter: MultilevelPartitioner,
    scope: RegScope,
    hub_cap: usize,
}

impl RegPartitioner {
    /// Creates the strategy with a default multilevel cutter and
    /// [`RegScope::FullDependency`].
    pub fn new(seed: u64) -> Self {
        Self {
            cutter: MultilevelPartitioner::new(seed),
            scope: RegScope::default(),
            hub_cap: 32,
        }
    }

    /// Uses a custom-configured multilevel cutter.
    pub fn with_cutter(mut self, cutter: MultilevelPartitioner) -> Self {
        self.cutter = cutter;
        self
    }

    /// Selects the REG construction (Algorithm 1 vs full dependency).
    pub fn with_scope(mut self, scope: RegScope) -> Self {
        self.scope = scope;
        self
    }

    /// Bounds the dependants-set size used by
    /// [`RegScope::FullDependency`] (see [`dependency_reg`]).
    ///
    /// # Panics
    ///
    /// Panics if `hub_cap < 2`.
    pub fn with_hub_cap(mut self, hub_cap: usize) -> Self {
        assert!(hub_cap >= 2, "hub_cap below 2 drops every pair");
        self.hub_cap = hub_cap;
        self
    }

    /// The configured scope.
    pub fn scope(&self) -> RegScope {
        self.scope
    }
}

impl OutputPartitioner for RegPartitioner {
    fn name(&self) -> &'static str {
        "betty-reg"
    }

    fn split_outputs(&self, batch: &Batch, k: usize) -> Vec<Vec<NodeId>> {
        assert!(k > 0, "k must be positive");
        match self.scope {
            RegScope::LastLayer => reg_partition(batch, k, &self.cutter),
            RegScope::FullDependency => {
                let reg = dependency_reg(batch, self.hub_cap);
                let parts = self.cutter.partition(&reg, k);
                let last = batch.blocks().last().expect("batch is never empty");
                locals_to_globals(&parts, last)
            }
        }
    }
}

/// Adapts a plain [`Partitioner`] into a baseline output-node strategy.
///
/// The baselines of §6.1 "partition the graph based on the IDs of output
/// nodes": range and random ignore structure entirely, while the Metis
/// baseline partitions the *direct adjacency among output nodes* — still
/// redundancy-unaware (it never sees shared non-output neighbors), which is
/// precisely the deficiency REG fixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputGraphPartitioner<P> {
    inner: P,
}

impl<P: Partitioner> OutputGraphPartitioner<P> {
    /// Wraps a node partitioner.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

/// Direct adjacency among a block's destination nodes: an (undirected)
/// edge for every block edge whose source is also a destination.
fn output_adjacency(last: &Block) -> CsrGraph {
    let num_dst = last.num_dst();
    let mut edges = Vec::new();
    for (&s, &d) in last
        .edge_src_locals()
        .iter()
        .zip(last.edge_dst_locals().iter())
    {
        // Sources with local index < num_dst *are* destination nodes.
        if (s as usize) < num_dst && s != d {
            edges.push((s, d, 1.0));
            edges.push((d, s, 1.0));
        }
    }
    CsrGraph::from_weighted_edges(num_dst, edges, true)
}

impl<P: Partitioner> OutputPartitioner for OutputGraphPartitioner<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn split_outputs(&self, batch: &Batch, k: usize) -> Vec<Vec<NodeId>> {
        assert!(k > 0, "k must be positive");
        let last = batch.blocks().last().expect("batch is never empty");
        let graph = output_adjacency(last);
        let parts = self.inner.partition(&graph, k);
        locals_to_globals(&parts, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomPartitioner, RangePartitioner};

    /// A batch whose output layer matches the paper's Figure 8: outputs
    /// {1, 8, 0, 9} where 1 and 8 share four sources {3,5,6,7}, while 0 and
    /// 9 each have private sources.
    fn fig8_like_batch() -> Batch {
        let top = Block::new(
            vec![1, 8, 0, 9],
            &[
                (2, 1),
                (3, 1),
                (5, 1),
                (6, 1),
                (7, 1),
                (3, 8),
                (5, 8),
                (6, 8),
                (7, 8),
                (4, 8),
                (10, 0),
                (11, 9),
            ],
        );
        Batch::new(vec![top])
    }

    #[test]
    fn reg_groups_heavy_sharers_together() {
        let batch = fig8_like_batch();
        let parts = reg_partition(&batch, 2, &MultilevelPartitioner::new(0));
        assert_eq!(parts.len(), 2);
        let part_of = |v: NodeId| parts.iter().position(|p| p.contains(&v)).unwrap();
        // 1 and 8 share 4 sources: splitting them would cut weight 4.
        assert_eq!(part_of(1), part_of(8), "heavy sharers stay together");
        // Disjoint union covers all outputs.
        let mut all: Vec<NodeId> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 8, 9]);
    }

    #[test]
    fn reg_partitioner_strategy_name() {
        assert_eq!(RegPartitioner::new(0).name(), "betty-reg");
    }

    #[test]
    fn range_baseline_splits_by_output_order() {
        let batch = fig8_like_batch();
        let strat = OutputGraphPartitioner::new(RangePartitioner::new());
        let parts = strat.split_outputs(&batch, 2);
        // Output order is [1, 8, 0, 9] → ranges [1,8] and [0,9].
        assert_eq!(parts[0], vec![1, 8]);
        assert_eq!(parts[1], vec![0, 9]);
    }

    #[test]
    fn random_baseline_covers_all_outputs() {
        let batch = fig8_like_batch();
        let strat = OutputGraphPartitioner::new(RandomPartitioner::new(3));
        let parts = strat.split_outputs(&batch, 2);
        let mut all: Vec<NodeId> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 8, 9]);
        assert_eq!(parts[0].len(), 2);
    }

    #[test]
    fn micro_batches_from_parts_are_valid() {
        let batch = fig8_like_batch();
        for strategy in [
            &RegPartitioner::new(1) as &dyn OutputPartitioner,
            &OutputGraphPartitioner::new(RangePartitioner::new()),
        ] {
            let parts = strategy.split_outputs(&batch, 2);
            for part in &parts {
                let micro = batch.restrict(part);
                micro.validate().unwrap();
                assert_eq!(micro.output_nodes(), part.as_slice());
            }
        }
    }

    #[test]
    fn reg_reduces_redundancy_vs_range_on_adversarial_layout() {
        // Outputs interleaved so that range splits sharers apart: outputs
        // [a0, b0, a1, b1] where the `a`s share sources and the `b`s share
        // sources.
        let top = Block::new(
            vec![0, 1, 2, 3], // a0, b0, a1, b1
            &[
                (10, 0),
                (11, 0),
                (12, 0),
                (10, 2),
                (11, 2),
                (12, 2),
                (20, 1),
                (21, 1),
                (22, 1),
                (20, 3),
                (21, 3),
                (22, 3),
            ],
        );
        let batch = Batch::new(vec![top]);
        let count_inputs = |parts: &[Vec<NodeId>]| -> usize {
            parts
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| batch.restrict(p).input_nodes().len())
                .sum()
        };
        let reg_parts = RegPartitioner::new(0).split_outputs(&batch, 2);
        let range_parts =
            OutputGraphPartitioner::new(RangePartitioner::new()).split_outputs(&batch, 2);
        assert!(
            count_inputs(&reg_parts) < count_inputs(&range_parts),
            "REG {} vs range {}",
            count_inputs(&reg_parts),
            count_inputs(&range_parts)
        );
    }
}

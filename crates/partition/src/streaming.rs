//! Linear Deterministic Greedy (LDG) streaming partitioning
//! (Stanton & Kleinberg, KDD'12).
//!
//! One pass over the nodes: each node goes to the part holding most of its
//! already-placed neighbors, damped by how full that part is. Quality sits
//! between random and multilevel, but the cost is a single O(E) sweep with
//! O(n) state — the right tool when a batch is too large to afford the
//! multilevel V-cycle, and a useful quality baseline for the ablations.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_graph::CsrGraph;

use crate::{Partitioner, Partitioning};

/// Streaming LDG partitioner (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdgPartitioner {
    seed: u64,
    balance_slack: f64,
}

impl LdgPartitioner {
    /// An LDG partitioner with 10% capacity slack.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            balance_slack: 0.1,
        }
    }

    /// Sets the per-part weight capacity slack ε (capacity = (1 + ε)·W/k).
    ///
    /// # Panics
    ///
    /// Panics if `slack` is negative.
    pub fn with_balance_slack(mut self, slack: f64) -> Self {
        assert!(slack >= 0.0, "slack must be non-negative");
        self.balance_slack = slack;
        self
    }
}

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn partition_weighted(
        &self,
        graph: &CsrGraph,
        node_weights: &[f64],
        k: usize,
    ) -> Partitioning {
        assert!(k > 0, "k must be positive");
        let n = graph.num_nodes();
        assert_eq!(node_weights.len(), n, "one weight per node");
        if k == 1 || n == 0 {
            return Partitioning::new(vec![0; n], k);
        }
        let total: f64 = node_weights.iter().sum();
        let capacity = (1.0 + self.balance_slack) * total / k as f64;

        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = Pcg64Mcg::seed_from_u64(self.seed);
        order.shuffle(&mut rng);

        // Symmetrized view: score placed in- and out-neighbors alike.
        let reverse = graph.reverse();
        let mut assignment = vec![u32::MAX; n];
        let mut load = vec![0.0f64; k];
        let mut score = vec![0.0f64; k];
        for &u in &order {
            for s in score.iter_mut() {
                *s = 0.0;
            }
            for &v in graph.neighbors(u).iter().chain(reverse.neighbors(u)) {
                let p = assignment[v as usize];
                if p != u32::MAX {
                    score[p as usize] += 1.0;
                }
            }
            let w = node_weights[u as usize];
            let best = (0..k)
                .max_by(|&a, &b| {
                    let da = (score[a] + 1.0) * (1.0 - load[a] / capacity);
                    let db = (score[b] + 1.0) * (1.0 - load[b] / capacity);
                    da.total_cmp(&db)
                })
                .expect("k > 0");
            assignment[u as usize] = best as u32;
            load[best] += w;
        }
        let mut result = Partitioning::new(assignment, k);
        // LDG can leave a part empty on tiny inputs; repair like the
        // multilevel partitioner does.
        if n >= k && !result.all_parts_nonempty() {
            let mut a = result.assignment().to_vec();
            loop {
                let sizes = Partitioning::new(a.clone(), k).part_sizes();
                let Some(empty) = sizes.iter().position(|&s| s == 0) else {
                    break;
                };
                let largest = sizes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &s)| s)
                    .map(|(p, _)| p)
                    .expect("k > 0");
                let victim = a
                    .iter()
                    .position(|&p| p as usize == largest)
                    .expect("largest part non-empty");
                a[victim] = empty as u32;
            }
            result = Partitioning::new(a, k);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::NodeId;

    fn undirected(n: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
        let sym: Vec<(NodeId, NodeId)> =
            edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        CsrGraph::from_edges(n, &sym)
    }

    #[test]
    fn covers_all_nodes_and_respects_k() {
        let g = undirected(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = LdgPartitioner::new(0).partition(&g, 5);
        assert_eq!(p.num_parts(), 5);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 50);
        assert!(p.all_parts_nonempty());
    }

    #[test]
    fn balance_respected_within_slack() {
        let g = CsrGraph::from_edges(200, &[]);
        let p = LdgPartitioner::new(1).partition(&g, 4);
        assert!(p.balance(&vec![1.0; 200]) <= 1.15, "{:?}", p.part_sizes());
    }

    #[test]
    fn beats_random_cut_on_communities() {
        use rand::Rng;
        let mut rng = Pcg64Mcg::seed_from_u64(3);
        let mut edges = Vec::new();
        for c in 0..4u32 {
            for _ in 0..200 {
                let u = c * 25 + rng.gen_range(0..25);
                let v = c * 25 + rng.gen_range(0..25);
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = undirected(100, &edges);
        let ldg = LdgPartitioner::new(0).partition(&g, 4);
        let random = crate::RandomPartitioner::new(0).partition(&g, 4);
        assert!(
            ldg.edge_cut(&g) < 0.8 * random.edge_cut(&g),
            "ldg {} vs random {}",
            ldg.edge_cut(&g),
            random.edge_cut(&g)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = undirected(30, &(0..29).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(
            LdgPartitioner::new(7).partition(&g, 3),
            LdgPartitioner::new(7).partition(&g, 3)
        );
    }

    #[test]
    fn k_one_trivial() {
        let g = undirected(5, &[(0, 1)]);
        assert_eq!(LdgPartitioner::new(0).partition(&g, 1).part_sizes(), vec![5]);
    }
}

//! Partition-quality metrics used across the evaluation (Fig. 16, Table 6).

use std::collections::HashSet;

use betty_graph::{Batch, NodeId};

/// Input-node duplication across a set of micro-batches.
///
/// A micro-batch must carry *every* input (first-layer source) node its
/// output nodes transitively depend on; nodes shared across micro-batches
/// are loaded, transferred, and aggregated repeatedly — the redundancy
/// Betty's REG partitioning minimizes (§4.3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyReport {
    /// Input nodes summed over micro-batches (counting duplicates).
    pub total_input_nodes: usize,
    /// Distinct input nodes across all micro-batches.
    pub unique_input_nodes: usize,
}

impl RedundancyReport {
    /// Duplicated input-node loads: `total - unique`.
    pub fn redundant_nodes(&self) -> usize {
        self.total_input_nodes - self.unique_input_nodes
    }

    /// Duplication factor `total / unique` (1.0 = no redundancy). Returns
    /// 1.0 when there are no input nodes at all.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.unique_input_nodes == 0 {
            1.0
        } else {
            self.total_input_nodes as f64 / self.unique_input_nodes as f64
        }
    }
}

/// Measures input redundancy across micro-batches.
pub fn input_redundancy(micro_batches: &[Batch]) -> RedundancyReport {
    let mut total = 0usize;
    let mut unique: HashSet<NodeId> = HashSet::new();
    for mb in micro_batches {
        let inputs = mb.input_nodes();
        total += inputs.len();
        unique.extend(inputs.iter().copied());
    }
    RedundancyReport {
        total_input_nodes: total,
        unique_input_nodes: unique.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::Block;

    #[test]
    fn counts_duplicates() {
        let a = Batch::new(vec![Block::new(vec![0], &[(10, 0), (11, 0)])]);
        let b = Batch::new(vec![Block::new(vec![1], &[(10, 1), (12, 1)])]);
        let report = input_redundancy(&[a, b]);
        // Batch a inputs {0,10,11}; batch b inputs {1,10,12}.
        assert_eq!(report.total_input_nodes, 6);
        assert_eq!(report.unique_input_nodes, 5);
        assert_eq!(report.redundant_nodes(), 1);
        assert!((report.redundancy_ratio() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn single_batch_has_no_redundancy() {
        let a = Batch::new(vec![Block::new(vec![0, 1], &[(5, 0), (5, 1)])]);
        let report = input_redundancy(std::slice::from_ref(&a));
        assert_eq!(report.redundant_nodes(), 0);
        assert_eq!(report.redundancy_ratio(), 1.0);
    }

    #[test]
    fn empty_input_is_degenerate_but_defined() {
        let report = input_redundancy(&[]);
        assert_eq!(report.redundancy_ratio(), 1.0);
        assert_eq!(report.redundant_nodes(), 0);
    }
}

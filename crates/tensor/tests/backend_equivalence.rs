//! Property tests pinning the backend contract: `Backend::Simd` is a
//! speed knob, never a numerics knob. Every dispatched kernel must be
//! bit-identical to the scalar reference across arbitrary shapes —
//! including the degenerate ones (`k = 0`, `cols = 0`, single-row) —
//! and across worker-thread counts, and the 16-bit storage dtypes must
//! round-trip exactly once quantized.

use betty_tensor::dtype::{f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits, bf16_bits_to_f32};
use betty_tensor::{kernels, segment, with_backend, Backend, DType, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape, values in [-4, 4]. Handles
/// zero-sized shapes (an empty data vector is a valid 0-element strategy).
fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]).expect("sized data"))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` under both backends at the given thread count and asserts
/// bit-identical output.
fn assert_backends_agree(threads: usize, f: impl Fn() -> Tensor) {
    betty_runtime::set_thread_override(Some(threads));
    let scalar = with_backend(Backend::Scalar, &f);
    let simd = with_backend(Backend::Simd, &f);
    betty_runtime::set_thread_override(None);
    assert_eq!(
        bits(&scalar),
        bits(&simd),
        "backends diverged at {threads} threads"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole matmul family, over shapes that include `m = 1`
    /// (single row), `k = 0` (empty reduction: output must be exact
    /// zeros), and `n = 0` (empty output).
    #[test]
    fn matmul_family_is_bit_identical_across_backends_and_threads(
        m in 1usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let fill = |rows: usize, cols: usize, phase: u64| {
            Tensor::from_vec(
                (0..rows * cols)
                    .map(|i| (((i as u64 ^ seed ^ phase) % 1000) as f32 / 250.0) - 2.0)
                    .collect(),
                &[rows, cols],
            )
            .expect("sized data")
        };
        let a = fill(m, k, 0);
        let b = fill(k, n, 1);
        let bt = fill(n, k, 2);
        let at = fill(k, m, 3);
        for threads in [1usize, 4] {
            assert_backends_agree(threads, || kernels::matmul(&a, &b));
            assert_backends_agree(threads, || kernels::matmul_a_bt(&a, &bt));
            assert_backends_agree(threads, || kernels::matmul_at_b(&at, &b));
        }
    }

    /// Fused gather+segment-sum over arbitrary (unsorted) edge lists,
    /// plus the `cols = 0` and empty-edge-list degenerate shapes.
    #[test]
    fn fused_gather_segment_is_bit_identical_across_backends_and_threads(
        src in arb_tensor(9, 5),
        edges in proptest::collection::vec((0usize..9, 0usize..6), 0..64),
    ) {
        let gather_ids: Vec<usize> = edges.iter().map(|e| e.0).collect();
        let segment_ids: Vec<usize> = edges.iter().map(|e| e.1).collect();
        for threads in [1usize, 4] {
            assert_backends_agree(threads, || {
                segment::fused_gather_segment_sum(&src, &gather_ids, &segment_ids, 6)
            });
        }
        // cols = 0: both backends must return an all-zero [6, 0] tensor.
        let empty = arb_narrow(&src);
        assert_backends_agree(1, || {
            segment::fused_gather_segment_sum(&empty, &gather_ids, &segment_ids, 6)
        });
    }

    /// The vectorized Adam step: hardware sqrt/divide round identically
    /// at every lane width, so the update is bit-identical too.
    #[test]
    fn adam_step_is_bit_identical_across_backends(
        grad in proptest::collection::vec(-2.0f32..2.0, 0..96),
        step in 1u32..50,
    ) {
        let coeffs = kernels::AdamCoeffs {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bias1: 1.0 - 0.9f32.powi(step as i32),
            bias2: 1.0 - 0.999f32.powi(step as i32),
        };
        let run = |backend: Backend| {
            with_backend(backend, || {
                let mut value = vec![1.0f32; grad.len()];
                let mut m1 = vec![0.1f32; grad.len()];
                let mut m2 = vec![0.2f32; grad.len()];
                kernels::adam_step(&mut value, &grad, &mut m1, &mut m2, coeffs);
                (value, m1, m2)
            })
        };
        let scalar = run(Backend::Scalar);
        let simd = run(Backend::Simd);
        prop_assert_eq!(as_bits(&scalar.0), as_bits(&simd.0));
        prop_assert_eq!(as_bits(&scalar.1), as_bits(&simd.1));
        prop_assert_eq!(as_bits(&scalar.2), as_bits(&simd.2));
    }

    /// Quantization is idempotent: once a value has been rounded into a
    /// 16-bit storage dtype, encoding and decoding it again is exact.
    #[test]
    fn storage_dtypes_round_trip_exactly_once_quantized(v in -1e4f32..1e4) {
        for dtype in [DType::Bf16, DType::F16] {
            let q = dtype.quantize(v);
            prop_assert_eq!(
                dtype.quantize(q).to_bits(),
                q.to_bits(),
                "{} quantize must be idempotent",
                dtype.name()
            );
            prop_assert_eq!(
                dtype.decode16(dtype.encode16(q)).to_bits(),
                q.to_bits(),
                "{} encode/decode must round-trip quantized values",
                dtype.name()
            );
        }
        // The raw bit converters agree with the DType methods.
        prop_assert_eq!(
            bf16_bits_to_f32(f32_to_bf16_bits(v)).to_bits(),
            DType::Bf16.quantize(v).to_bits()
        );
        prop_assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(v)).to_bits(),
            DType::F16.quantize(v).to_bits()
        );
    }

    /// Round-to-nearest-even keeps the relative quantization error within
    /// half a ulp of the storage format: 2⁻⁸ for bf16 (8 mantissa bits
    /// incl. the hidden one), 2⁻¹¹ for f16, over f16's normal range.
    #[test]
    fn quantization_error_is_bounded_by_half_ulp(v in -6e4f32..6e4) {
        let bf = DType::Bf16.quantize(v);
        prop_assert!((bf - v).abs() <= v.abs() / 256.0, "bf16({v}) = {bf}");
        let hf = DType::F16.quantize(v);
        prop_assert!((hf - v).abs() <= v.abs() / 2048.0, "f16({v}) = {hf}");
    }
}

fn as_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A `[rows, 0]` tensor matching `src`'s row count.
fn arb_narrow(src: &Tensor) -> Tensor {
    Tensor::from_vec(Vec::new(), &[src.rows(), 0]).expect("empty tensor")
}

//! Property tests over the dense kernels and autograd engine.

use betty_tensor::{check, kernels, segment, Graph, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape, values in [-4, 4].
fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]).expect("sized data"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(3, 4),
        b in arb_tensor(4, 2),
        c in arb_tensor(4, 2),
    ) {
        // A(B + C) == AB + AC
        let lhs = kernels::matmul(&a, &kernels::add(&b, &c));
        let rhs = kernels::add(&kernels::matmul(&a, &b), &kernels::matmul(&a, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3), "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn transpose_is_involutive(a in arb_tensor(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transposed_matmul_variants_agree(a in arb_tensor(3, 5), b in arb_tensor(3, 4)) {
        let atb = kernels::matmul_at_b(&a, &b);
        let reference = kernels::matmul(&a.transpose(), &b);
        prop_assert!(atb.approx_eq(&reference, 1e-3));
        // x @ yᵀ with x = aᵀ (5×3), y = bᵀ (4×3): result is aᵀ·b (5×4).
        let abt = kernels::matmul_a_bt(&a.transpose(), &b.transpose());
        prop_assert!(abt.approx_eq(&kernels::matmul(&a.transpose(), &b), 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_tensor(4, 6)) {
        let sm = kernels::softmax_rows(&a);
        for r in 0..4 {
            let s: f32 = sm.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            prop_assert!(sm.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn gather_scatter_adjoint_identity(
        src in arb_tensor(6, 3),
        idx in proptest::collection::vec(0usize..6, 1..12),
        grad in arb_tensor(6, 3),
    ) {
        // <gather(src, idx), gather(grad_like)> consistency: the adjoint
        // test  <A x, y> == <x, Aᵀ y>  with A = gather by idx.
        let gathered = segment::gather_rows(&src, &idx);
        let y = Tensor::ones(&[idx.len(), 3]);
        let lhs: f32 = kernels::mul(&gathered, &y).sum_all();
        let mut scattered = Tensor::zeros(&[6, 3]);
        segment::scatter_add_rows(&mut scattered, &y, &idx);
        let rhs: f32 = kernels::mul(&src, &scattered).sum_all();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
        let _ = grad; // reserved for extended adjoint checks
    }

    #[test]
    fn fused_mean_matches_manual_composition(
        src in arb_tensor(5, 2),
        edges in proptest::collection::vec((0usize..5, 0usize..3), 1..15),
    ) {
        let gather_ids: Vec<usize> = edges.iter().map(|e| e.0).collect();
        let seg_ids: Vec<usize> = edges.iter().map(|e| e.1).collect();
        let mut g1 = Graph::new();
        let x1 = g1.leaf(src.clone());
        let fused = g1.fused_neighbor_mean(x1, &gather_ids, &seg_ids, 3);
        let mut g2 = Graph::new();
        let x2 = g2.leaf(src);
        let msgs = g2.gather_rows(x2, &gather_ids);
        let manual = g2.segment_mean(msgs, &seg_ids, 3);
        prop_assert!(g1.value(fused).approx_eq(g2.value(manual), 1e-4));
        let l1 = g1.sum(fused);
        g1.backward(l1);
        let l2 = g2.sum(manual);
        g2.backward(l2);
        prop_assert!(g1.grad(x1).unwrap().approx_eq(g2.grad(x2).unwrap(), 1e-4));
    }

    #[test]
    fn autograd_sum_of_tanh_gradcheck(a in arb_tensor(2, 3)) {
        let res = check::check_gradient(&a, |g, x| {
            let t = g.tanh(x);
            g.sum(t)
        });
        prop_assert!(res.passes(2e-2), "{res:?}");
    }

    #[test]
    fn segment_sum_total_is_preserved(
        vals in arb_tensor(7, 2),
        seg in proptest::collection::vec(0usize..4, 7),
    ) {
        let summed = segment::segment_sum(&vals, &seg, 4);
        prop_assert!(
            (summed.sum_all() - vals.sum_all()).abs() < 1e-3,
            "mass not conserved"
        );
    }

    #[test]
    fn reshape_preserves_sum(a in arb_tensor(4, 6)) {
        let r = a.reshape(&[8, 3]).unwrap();
        prop_assert_eq!(r.sum_all(), a.sum_all());
        prop_assert_eq!(r.data(), a.data());
    }

    #[test]
    fn scale_rows_matches_diagonal_matmul(a in arb_tensor(3, 4), s in proptest::collection::vec(-2.0f32..2.0, 3)) {
        let scaled = kernels::scale_rows(&a, &s);
        // Equivalent to D·A with D = diag(s).
        let mut d = Tensor::zeros(&[3, 3]);
        for (i, &si) in s.iter().enumerate() {
            d.data_mut()[i * 3 + i] = si;
        }
        let reference = kernels::matmul(&d, &a);
        prop_assert!(scaled.approx_eq(&reference, 1e-4));
    }
}

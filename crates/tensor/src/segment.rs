//! Row gather/scatter and segment reductions.
//!
//! These are the irregular kernels that make graph aggregation expressible:
//! an edge list `(src, dst)` turns into `gather_rows` over source features
//! followed by a segment reduction keyed by destination id. Each kernel here
//! has a well-defined adjoint used by the autograd layer.

use crate::Tensor;

/// Gathers rows of `src` at `indices` into a new `[indices.len(), D]` tensor.
///
/// # Panics
///
/// Panics if `src` is not rank 2 or any index is out of bounds.
pub fn gather_rows(src: &Tensor, indices: &[usize]) -> Tensor {
    let cols = src.cols();
    let mut data = vec![0.0f32; indices.len() * cols];
    gather_rows_into(src, indices, &mut data);
    Tensor::from_vec(data, &[indices.len(), cols]).expect("gather output shape")
}

/// [`gather_rows`] writing into `out` (fully overwritten, row by row with
/// `copy_from_slice`).
///
/// # Panics
///
/// Panics if an index is out of bounds or `out` has the wrong length.
pub fn gather_rows_into(src: &Tensor, indices: &[usize], out: &mut [f32]) {
    let (rows, cols) = (src.rows(), src.cols());
    assert_eq!(out.len(), indices.len() * cols, "gather output length mismatch");
    if cols == 0 {
        return;
    }
    for (orow, &i) in out.chunks_mut(cols).zip(indices) {
        assert!(i < rows, "gather index {i} out of bounds for {rows} rows");
        orow.copy_from_slice(src.row(i));
    }
}

/// Adds row `r` of `values` into row `indices[r]` of `out`.
///
/// The adjoint of [`gather_rows`]: scattering gradients back to the gathered
/// source rows. Repeated indices accumulate.
///
/// # Panics
///
/// Panics if shapes disagree or any index is out of bounds.
pub fn scatter_add_rows(out: &mut Tensor, values: &Tensor, indices: &[usize]) {
    let cols = out.cols();
    assert_eq!(values.cols(), cols, "scatter column mismatch");
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    let n = out.rows();
    if cols == 0 {
        return;
    }
    let vdata = values.data();
    let odata = out.data_mut();
    for (vrow, &i) in vdata.chunks(cols).zip(indices) {
        assert!(i < n, "scatter index {i} out of bounds for {n} rows");
        for (o, &v) in odata[i * cols..(i + 1) * cols].iter_mut().zip(vrow) {
            *o += v;
        }
    }
}

/// Places row `r` of `values` into row `indices[r]` of a fresh
/// `[n_rows, D]` zero tensor (later writes overwrite earlier ones).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn scatter_rows(values: &Tensor, indices: &[usize], n_rows: usize) -> Tensor {
    let cols = values.cols();
    let mut out = Tensor::zeros(&[n_rows, cols]);
    scatter_rows_into(values, indices, out.data_mut());
    out
}

/// [`scatter_rows`] writing into `out`, which must be zero-filled
/// `[n_rows * cols]` (rows not referenced are left untouched).
///
/// # Panics
///
/// Panics if an index is out of bounds or lengths disagree.
pub fn scatter_rows_into(values: &Tensor, indices: &[usize], out: &mut [f32]) {
    let cols = values.cols();
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    assert_eq!(out.len() % cols.max(1), 0, "scatter output length mismatch");
    let n_rows = out.len().checked_div(cols).unwrap_or(0);
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < n_rows, "scatter index {i} out of bounds for {n_rows} rows");
        out[i * cols..(i + 1) * cols].copy_from_slice(values.row(r));
    }
}

/// Sums rows of `values` into `n_segments` buckets keyed by `segment_ids`.
///
/// `values` is `[E, D]`, `segment_ids` has length `E`; output is
/// `[n_segments, D]`. Segments with no member are zero.
///
/// # Panics
///
/// Panics if a segment id is `>= n_segments` or lengths disagree.
pub fn segment_sum(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, values.cols()]);
    segment_sum_into(values, segment_ids, out.data_mut());
    out
}

/// [`segment_sum`] accumulating into `out`, which must be zero-filled
/// `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_sum_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "segment_sum output length mismatch");
    for (vrow, &s) in values.data().chunks(cols).zip(segment_ids) {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(vrow) {
            *o += v;
        }
    }
}

/// Per-segment mean; empty segments produce zero rows.
///
/// Returns the mean tensor together with the per-segment counts (needed by
/// the backward pass).
pub fn segment_mean(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let mut out = Tensor::zeros(&[n_segments, values.cols()]);
    let counts = segment_mean_into(values, segment_ids, out.data_mut());
    (out, counts)
}

/// [`segment_mean`] accumulating into `out`, which must be zero-filled
/// `[n_segments * cols]`; returns the per-segment counts.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_mean_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) -> Vec<usize> {
    let cols = values.cols();
    let n_segments = out.len().checked_div(cols).unwrap_or(0);
    let mut counts = vec![0usize; n_segments];
    for &s in segment_ids {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        counts[s] += 1;
    }
    segment_sum_into(values, segment_ids, out);
    for (s, &cnt) in counts.iter().enumerate() {
        if cnt > 1 {
            let inv = 1.0 / cnt as f32;
            for v in &mut out[s * cols..(s + 1) * cols] {
                *v *= inv;
            }
        }
    }
    counts
}

/// Per-segment elementwise max.
///
/// Returns the max tensor (empty segments are zero) and, per output cell, the
/// index of the winning input row (`usize::MAX` for empty segments) — the
/// state the backward pass routes gradients through.
pub fn segment_max(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let cols = values.cols();
    let mut out = Tensor::zeros(&[n_segments, cols]);
    let argmax = segment_max_into(values, segment_ids, out.data_mut());
    (out, argmax)
}

/// [`segment_max`] writing into `out` (fully overwritten — the kernel
/// seeds every cell with `-∞` first); returns the per-cell argmax.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_max_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) -> Vec<usize> {
    let mut argmax = Vec::new();
    segment_max_into_reusing(values, segment_ids, out, &mut argmax);
    argmax
}

/// [`segment_max_into`] writing the argmax into a caller-provided buffer
/// (cleared and refilled), so a recycled buffer makes the op allocation-free.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_max_into_reusing(
    values: &Tensor,
    segment_ids: &[usize],
    out: &mut [f32],
    argmax: &mut Vec<usize>,
) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    let n_segments = out.len().checked_div(cols).unwrap_or(0);
    assert_eq!(out.len(), n_segments * cols, "segment_max output length mismatch");
    out.fill(f32::NEG_INFINITY);
    argmax.clear();
    argmax.resize(n_segments * cols, usize::MAX);
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > out[s * cols + c] {
                out[s * cols + c] = row[c];
                argmax[s * cols + c] = r;
            }
        }
    }
    for v in out.iter_mut() {
        if *v == f32::NEG_INFINITY {
            *v = 0.0;
        }
    }
}

/// Fused gather + segment-sum: `out[seg_ids[e]] += src[gather_ids[e]]`
/// without materializing the `[E, D]` message tensor (the moral equivalent
/// of DGL's fused message-passing kernels).
///
/// # Panics
///
/// Panics if index slices disagree in length or contain out-of-bounds ids.
pub fn fused_gather_segment_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    n_segments: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, src.cols()]);
    fused_gather_segment_sum_into(src, gather_ids, segment_ids, out.data_mut());
    out
}

/// [`fused_gather_segment_sum`] accumulating into `out`, which must be
/// zero-filled `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if index slices disagree in length or contain out-of-bounds ids.
pub fn fused_gather_segment_sum_into(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let (rows, cols) = (src.rows(), src.cols());
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "fused sum output length mismatch");
    let sdata = src.data();
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += v;
        }
    }
}

/// Adjoint of [`fused_gather_segment_sum`] (optionally degree-normalized):
/// scatters `grad[seg_ids[e]] * scale[seg_ids[e]]` back into the source
/// rows, again with no `[E, D]` intermediate.
///
/// # Panics
///
/// Panics if slices disagree in length or ids are out of bounds.
pub fn fused_gather_segment_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    n_src_rows: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_src_rows, grad.cols()]);
    fused_gather_segment_sum_backward_into(grad, gather_ids, segment_ids, segment_scale, out.data_mut());
    out
}

/// [`fused_gather_segment_sum_backward`] accumulating into `out`, which
/// must be zero-filled `[n_src_rows * cols]`.
///
/// # Panics
///
/// Panics if slices disagree in length or ids are out of bounds.
pub fn fused_gather_segment_sum_backward_into(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let cols = grad.cols();
    if cols == 0 {
        return;
    }
    let n_src_rows = out.len() / cols;
    assert_eq!(out.len(), n_src_rows * cols, "fused backward output length mismatch");
    let gdata = grad.data();
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let scale = segment_scale.map_or(1.0, |sc| sc[s]);
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += v * scale;
        }
    }
}

/// Weighted fused gather + segment-sum:
/// `out[seg_ids[e]] += weights[e] · src[gather_ids[e]]`, with no `[E, D]`
/// intermediate (the kernel behind normalized aggregations such as GCN).
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_segments: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, src.cols()]);
    fused_gather_segment_weighted_sum_into(src, gather_ids, segment_ids, weights, out.data_mut());
    out
}

/// [`fused_gather_segment_weighted_sum`] accumulating into `out`, which
/// must be zero-filled `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_into(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let (rows, cols) = (src.rows(), src.cols());
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "weighted sum output length mismatch");
    let sdata = src.data();
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += w * v;
        }
    }
}

/// Adjoint of [`fused_gather_segment_weighted_sum`]:
/// `d_src[gather_ids[e]] += weights[e] · grad[seg_ids[e]]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_src_rows: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_src_rows, grad.cols()]);
    fused_gather_segment_weighted_sum_backward_into(grad, gather_ids, segment_ids, weights, out.data_mut());
    out
}

/// [`fused_gather_segment_weighted_sum_backward`] accumulating into `out`,
/// which must be zero-filled `[n_src_rows * cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_backward_into(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let cols = grad.cols();
    if cols == 0 {
        return;
    }
    let n_src_rows = out.len() / cols;
    assert_eq!(out.len(), n_src_rows * cols, "weighted backward output length mismatch");
    let gdata = grad.data();
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += w * v;
        }
    }
}

/// Numerically-stable softmax within each segment, applied column-wise.
///
/// For attention: `values` is `[E, H]` of per-edge scores, grouped by
/// destination; each column of each segment is normalized independently.
/// Rows in empty segments are untouched by definition (there are none).
pub fn segment_softmax(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let mut out = Tensor::zeros(values.shape());
    segment_softmax_into(values, segment_ids, n_segments, out.data_mut());
    out
}

/// [`segment_softmax`] writing into `out`, which must have `values.len()`
/// elements and is fully overwritten (contents on entry are irrelevant).
///
/// # Panics
///
/// Panics if lengths disagree or ids exceed `n_segments`.
pub fn segment_softmax_into(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
    out: &mut [f32],
) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    assert_eq!(out.len(), values.len(), "segment_softmax output length mismatch");
    // Pass 1: per-segment max.
    let mut max = vec![f32::NEG_INFINITY; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > max[s * cols + c] {
                max[s * cols + c] = row[c];
            }
        }
    }
    // Pass 2: exp and per-segment sums.
    let mut sums = vec![0.0f32; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        let row = values.row(r);
        for c in 0..cols {
            let e = (row[c] - max[s * cols + c]).exp();
            out[r * cols + c] = e;
            sums[s * cols + c] += e;
        }
    }
    // Pass 3: normalize.
    for (r, &s) in segment_ids.iter().enumerate() {
        for c in 0..cols {
            out[r * cols + c] /= sums[s * cols + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn gather_then_scatter_is_degree_scaling() {
        let src = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let g = gather_rows(&src, &[0, 1, 0]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.row(2), &[1.0, 2.0]);
        let mut out = Tensor::zeros(&[2, 2]);
        scatter_add_rows(&mut out, &g, &[0, 1, 0]);
        // Row 0 gathered twice -> scattered back doubled.
        assert_eq!(out.row(0), &[2.0, 4.0]);
        assert_eq!(out.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn scatter_rows_places_and_zeros() {
        let v = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let out = scatter_rows(&v, &[2, 0], 3);
        assert_eq!(out.row(0), &[2.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn segment_sum_accumulates() {
        let v = t(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[3, 2]);
        let s = segment_sum(&v, &[1, 1, 0], 3);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert_eq!(s.row(1), &[3.0, 30.0]);
        assert_eq!(s.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn segment_mean_divides_by_count() {
        let v = t(&[2.0, 4.0, 6.0], &[3, 1]);
        let (m, counts) = segment_mean(&v, &[0, 0, 1], 2);
        assert_eq!(m.row(0), &[3.0]);
        assert_eq!(m.row(1), &[6.0]);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn segment_max_tracks_argmax() {
        let v = t(&[1.0, 5.0, 3.0, 2.0], &[4, 1]);
        let (m, arg) = segment_max(&v, &[0, 0, 1, 1], 3);
        assert_eq!(m.row(0), &[5.0]);
        assert_eq!(m.row(1), &[3.0]);
        assert_eq!(m.row(2), &[0.0]); // empty segment
        assert_eq!(arg[0], 1);
        assert_eq!(arg[1], 2);
        assert_eq!(arg[2], usize::MAX);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let v = t(&[1.0, 2.0, 3.0, 100.0, 101.0], &[5, 1]);
        let sm = segment_softmax(&v, &[0, 0, 0, 1, 1], 2);
        let s0: f32 = (0..3).map(|r| sm.at2(r, 0)).sum();
        let s1: f32 = (3..5).map(|r| sm.at2(r, 0)).sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(sm.all_finite());
        // Larger score gets larger weight.
        assert!(sm.at2(2, 0) > sm.at2(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        let src = t(&[1.0, 2.0], &[1, 2]);
        gather_rows(&src, &[1]);
    }

    /// Irrational-ish values so any reordering or rounding difference
    /// between the block-copy kernels and the old per-element index loops
    /// would show up at the bit level.
    fn salted(rows: usize, cols: usize, salt: f32) -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as f32) * 0.731 + salt).sin() * 3.77)
            .collect();
        Tensor::from_vec(data, &[rows, cols]).expect("salted tensor")
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn row_copy_kernels_bitwise_match_index_loop_reference() {
        let src = salted(11, 6, 0.13);
        let indices = [3usize, 0, 7, 7, 10, 2];

        // gather_rows: block copy vs element-at-a-time reference.
        let got = gather_rows(&src, &indices);
        let mut want = vec![0.0f32; indices.len() * 6];
        for (r, &i) in indices.iter().enumerate() {
            for c in 0..6 {
                want[r * 6 + c] = src.at2(i, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // scatter_rows: later writes win, untouched rows stay zero.
        let values = salted(4, 6, 1.9);
        let sc_idx = [2usize, 5, 2, 0];
        let got = scatter_rows(&values, &sc_idx, 8);
        let mut want = [0.0f32; 8 * 6];
        for (r, &i) in sc_idx.iter().enumerate() {
            for c in 0..6 {
                want[i * 6 + c] = values.at2(r, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // scatter_add_rows: repeated indices accumulate in row order.
        let mut got = Tensor::zeros(&[8, 6]);
        scatter_add_rows(&mut got, &values, &sc_idx);
        let mut want = [0.0f32; 8 * 6];
        for (r, &i) in sc_idx.iter().enumerate() {
            for c in 0..6 {
                want[i * 6 + c] += values.at2(r, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn into_variants_bitwise_match_allocating_variants() {
        let src = salted(9, 5, 0.41);
        let g_ids = [0usize, 3, 3, 8, 1, 5];
        let s_ids = [2usize, 0, 2, 1, 1, 0];
        let w: Vec<f32> = (0..6).map(|i| 0.5 + 0.1 * i as f32).collect();

        let sum = fused_gather_segment_sum(&src, &g_ids, &s_ids, 4);
        let mut out = vec![0.0f32; 4 * 5];
        fused_gather_segment_sum_into(&src, &g_ids, &s_ids, &mut out);
        assert_eq!(sum.data(), &out[..]);

        let wsum = fused_gather_segment_weighted_sum(&src, &g_ids, &s_ids, &w, 4);
        out.fill(0.0);
        fused_gather_segment_weighted_sum_into(&src, &g_ids, &s_ids, &w, &mut out);
        assert_eq!(wsum.data(), &out[..]);

        let grad = salted(4, 5, 2.2);
        let scale = [0.5f32, 0.25, 1.0, 2.0];
        let bwd = fused_gather_segment_sum_backward(&grad, &g_ids, &s_ids, Some(&scale), 9);
        let mut bout = vec![0.0f32; 9 * 5];
        fused_gather_segment_sum_backward_into(&grad, &g_ids, &s_ids, Some(&scale), &mut bout);
        assert_eq!(bwd.data(), &bout[..]);

        let wbwd = fused_gather_segment_weighted_sum_backward(&grad, &g_ids, &s_ids, &w, 9);
        bout.fill(0.0);
        fused_gather_segment_weighted_sum_backward_into(&grad, &g_ids, &s_ids, &w, &mut bout);
        assert_eq!(wbwd.data(), &bout[..]);

        // segment_softmax_into fully overwrites: seed with NaN poison.
        let scores = salted(6, 3, 0.07);
        let sm = segment_softmax(&scores, &s_ids, 3);
        let mut sout = vec![f32::NAN; 6 * 3];
        segment_softmax_into(&scores, &s_ids, 3, &mut sout);
        assert_eq!(bits(&sm), sout.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // segment_max_into seeds with -inf itself: dirty out is fine.
        let (mx, arg) = segment_max(&scores, &s_ids, 3);
        let mut mout = vec![f32::NAN; 3 * 3];
        let arg2 = segment_max_into(&scores, &s_ids, &mut mout);
        assert_eq!(mx.data(), &mout[..]);
        assert_eq!(arg, arg2);
    }
}

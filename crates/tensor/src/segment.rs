//! Row gather/scatter and segment reductions.
//!
//! These are the irregular kernels that make graph aggregation expressible:
//! an edge list `(src, dst)` turns into `gather_rows` over source features
//! followed by a segment reduction keyed by destination id. Each kernel here
//! has a well-defined adjoint used by the autograd layer.

use crate::Tensor;

/// Gathers rows of `src` at `indices` into a new `[indices.len(), D]` tensor.
///
/// # Panics
///
/// Panics if `src` is not rank 2 or any index is out of bounds.
pub fn gather_rows(src: &Tensor, indices: &[usize]) -> Tensor {
    let (rows, cols) = (src.rows(), src.cols());
    let mut data = Vec::with_capacity(indices.len() * cols);
    for &i in indices {
        assert!(i < rows, "gather index {i} out of bounds for {rows} rows");
        data.extend_from_slice(src.row(i));
    }
    Tensor::from_vec(data, &[indices.len(), cols]).expect("gather output shape")
}

/// Adds row `r` of `values` into row `indices[r]` of `out`.
///
/// The adjoint of [`gather_rows`]: scattering gradients back to the gathered
/// source rows. Repeated indices accumulate.
///
/// # Panics
///
/// Panics if shapes disagree or any index is out of bounds.
pub fn scatter_add_rows(out: &mut Tensor, values: &Tensor, indices: &[usize]) {
    let cols = out.cols();
    assert_eq!(values.cols(), cols, "scatter column mismatch");
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    let n = out.rows();
    let vdata = values.data().to_vec();
    let odata = out.data_mut();
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < n, "scatter index {i} out of bounds for {n} rows");
        for c in 0..cols {
            odata[i * cols + c] += vdata[r * cols + c];
        }
    }
}

/// Places row `r` of `values` into row `indices[r]` of a fresh
/// `[n_rows, D]` zero tensor (later writes overwrite earlier ones).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn scatter_rows(values: &Tensor, indices: &[usize], n_rows: usize) -> Tensor {
    let cols = values.cols();
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    let mut out = Tensor::zeros(&[n_rows, cols]);
    let odata = out.data_mut();
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < n_rows, "scatter index {i} out of bounds for {n_rows} rows");
        odata[i * cols..(i + 1) * cols].copy_from_slice(values.row(r));
    }
    out
}

/// Sums rows of `values` into `n_segments` buckets keyed by `segment_ids`.
///
/// `values` is `[E, D]`, `segment_ids` has length `E`; output is
/// `[n_segments, D]`. Segments with no member are zero.
///
/// # Panics
///
/// Panics if a segment id is `>= n_segments` or lengths disagree.
pub fn segment_sum(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    let mut out = Tensor::zeros(&[n_segments, cols]);
    let odata = out.data_mut();
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            odata[s * cols + c] += row[c];
        }
    }
    out
}

/// Per-segment mean; empty segments produce zero rows.
///
/// Returns the mean tensor together with the per-segment counts (needed by
/// the backward pass).
pub fn segment_mean(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let mut counts = vec![0usize; n_segments];
    for &s in segment_ids {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        counts[s] += 1;
    }
    let mut out = segment_sum(values, segment_ids, n_segments);
    let cols = out.cols();
    let odata = out.data_mut();
    for (s, &cnt) in counts.iter().enumerate() {
        if cnt > 1 {
            let inv = 1.0 / cnt as f32;
            for v in &mut odata[s * cols..(s + 1) * cols] {
                *v *= inv;
            }
        }
    }
    (out, counts)
}

/// Per-segment elementwise max.
///
/// Returns the max tensor (empty segments are zero) and, per output cell, the
/// index of the winning input row (`usize::MAX` for empty segments) — the
/// state the backward pass routes gradients through.
pub fn segment_max(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    let mut out = vec![f32::NEG_INFINITY; n_segments * cols];
    let mut argmax = vec![usize::MAX; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > out[s * cols + c] {
                out[s * cols + c] = row[c];
                argmax[s * cols + c] = r;
            }
        }
    }
    for v in &mut out {
        if *v == f32::NEG_INFINITY {
            *v = 0.0;
        }
    }
    (
        Tensor::from_vec(out, &[n_segments, cols]).expect("segment_max output shape"),
        argmax,
    )
}

/// Fused gather + segment-sum: `out[seg_ids[e]] += src[gather_ids[e]]`
/// without materializing the `[E, D]` message tensor (the moral equivalent
/// of DGL's fused message-passing kernels).
///
/// # Panics
///
/// Panics if index slices disagree in length or contain out-of-bounds ids.
pub fn fused_gather_segment_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    n_segments: usize,
) -> Tensor {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let (rows, cols) = (src.rows(), src.cols());
    let mut out = Tensor::zeros(&[n_segments, cols]);
    let odata = out.data_mut();
    let sdata = src.data();
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in odata[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += v;
        }
    }
    out
}

/// Adjoint of [`fused_gather_segment_sum`] (optionally degree-normalized):
/// scatters `grad[seg_ids[e]] * scale[seg_ids[e]]` back into the source
/// rows, again with no `[E, D]` intermediate.
///
/// # Panics
///
/// Panics if slices disagree in length or ids are out of bounds.
pub fn fused_gather_segment_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    n_src_rows: usize,
) -> Tensor {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let cols = grad.cols();
    let mut out = Tensor::zeros(&[n_src_rows, cols]);
    let odata = out.data_mut();
    let gdata = grad.data();
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let scale = segment_scale.map_or(1.0, |sc| sc[s]);
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in odata[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += v * scale;
        }
    }
    out
}

/// Weighted fused gather + segment-sum:
/// `out[seg_ids[e]] += weights[e] · src[gather_ids[e]]`, with no `[E, D]`
/// intermediate (the kernel behind normalized aggregations such as GCN).
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_segments: usize,
) -> Tensor {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let (rows, cols) = (src.rows(), src.cols());
    let mut out = Tensor::zeros(&[n_segments, cols]);
    let odata = out.data_mut();
    let sdata = src.data();
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in odata[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += w * v;
        }
    }
    out
}

/// Adjoint of [`fused_gather_segment_weighted_sum`]:
/// `d_src[gather_ids[e]] += weights[e] · grad[seg_ids[e]]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_src_rows: usize,
) -> Tensor {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let cols = grad.cols();
    let mut out = Tensor::zeros(&[n_src_rows, cols]);
    let odata = out.data_mut();
    let gdata = grad.data();
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in odata[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += w * v;
        }
    }
    out
}

/// Numerically-stable softmax within each segment, applied column-wise.
///
/// For attention: `values` is `[E, H]` of per-edge scores, grouped by
/// destination; each column of each segment is normalized independently.
/// Rows in empty segments are untouched by definition (there are none).
pub fn segment_softmax(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    // Pass 1: per-segment max.
    let mut max = vec![f32::NEG_INFINITY; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > max[s * cols + c] {
                max[s * cols + c] = row[c];
            }
        }
    }
    // Pass 2: exp and per-segment sums.
    let mut out = vec![0.0f32; values.len()];
    let mut sums = vec![0.0f32; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        let row = values.row(r);
        for c in 0..cols {
            let e = (row[c] - max[s * cols + c]).exp();
            out[r * cols + c] = e;
            sums[s * cols + c] += e;
        }
    }
    // Pass 3: normalize.
    for (r, &s) in segment_ids.iter().enumerate() {
        for c in 0..cols {
            out[r * cols + c] /= sums[s * cols + c];
        }
    }
    Tensor::from_vec(out, values.shape()).expect("segment_softmax output shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn gather_then_scatter_is_degree_scaling() {
        let src = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let g = gather_rows(&src, &[0, 1, 0]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.row(2), &[1.0, 2.0]);
        let mut out = Tensor::zeros(&[2, 2]);
        scatter_add_rows(&mut out, &g, &[0, 1, 0]);
        // Row 0 gathered twice -> scattered back doubled.
        assert_eq!(out.row(0), &[2.0, 4.0]);
        assert_eq!(out.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn scatter_rows_places_and_zeros() {
        let v = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let out = scatter_rows(&v, &[2, 0], 3);
        assert_eq!(out.row(0), &[2.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn segment_sum_accumulates() {
        let v = t(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[3, 2]);
        let s = segment_sum(&v, &[1, 1, 0], 3);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert_eq!(s.row(1), &[3.0, 30.0]);
        assert_eq!(s.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn segment_mean_divides_by_count() {
        let v = t(&[2.0, 4.0, 6.0], &[3, 1]);
        let (m, counts) = segment_mean(&v, &[0, 0, 1], 2);
        assert_eq!(m.row(0), &[3.0]);
        assert_eq!(m.row(1), &[6.0]);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn segment_max_tracks_argmax() {
        let v = t(&[1.0, 5.0, 3.0, 2.0], &[4, 1]);
        let (m, arg) = segment_max(&v, &[0, 0, 1, 1], 3);
        assert_eq!(m.row(0), &[5.0]);
        assert_eq!(m.row(1), &[3.0]);
        assert_eq!(m.row(2), &[0.0]); // empty segment
        assert_eq!(arg[0], 1);
        assert_eq!(arg[1], 2);
        assert_eq!(arg[2], usize::MAX);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let v = t(&[1.0, 2.0, 3.0, 100.0, 101.0], &[5, 1]);
        let sm = segment_softmax(&v, &[0, 0, 0, 1, 1], 2);
        let s0: f32 = (0..3).map(|r| sm.at2(r, 0)).sum();
        let s1: f32 = (3..5).map(|r| sm.at2(r, 0)).sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(sm.all_finite());
        // Larger score gets larger weight.
        assert!(sm.at2(2, 0) > sm.at2(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        let src = t(&[1.0, 2.0], &[1, 2]);
        gather_rows(&src, &[1]);
    }
}

//! Row gather/scatter and segment reductions.
//!
//! These are the irregular kernels that make graph aggregation expressible:
//! an edge list `(src, dst)` turns into `gather_rows` over source features
//! followed by a segment reduction keyed by destination id. Each kernel here
//! has a well-defined adjoint used by the autograd layer.

use crate::backend::Backend;
use crate::Tensor;

/// Work threshold (edges × cols) above which the simd fused kernels shard
/// output ownership across [`betty_runtime::configured_threads`] workers.
const FUSED_PAR_WORK_THRESHOLD: usize = 1 << 20;

/// Pre-pass bounds check: panics on the first out-of-range index with the
/// same message the per-row asserts used to produce, so the copy/accumulate
/// loops that follow can run branch-light.
#[inline]
fn check_gather_ids(indices: &[usize], rows: usize) {
    if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
        panic!("gather index {bad} out of bounds for {rows} rows");
    }
}

/// Pre-pass bounds check for scatter destinations (same message as the old
/// in-loop assert).
#[inline]
fn check_scatter_ids(indices: &[usize], rows: usize) {
    if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
        panic!("scatter index {bad} out of bounds for {rows} rows");
    }
}

/// Pre-pass bounds check for segment ids (same message as the in-loop
/// asserts).
#[inline]
/// Validates gather and segment ids in one fused pass (a running max per
/// slice) and reports whether `segment_ids` is non-decreasing — the CSR
/// destination-major layout the sharded loops exploit. The cold failure
/// paths re-scan to name the offending index. The scan itself runs under
/// [`lane_dispatch`]: the x86-64 baseline has no unsigned-64 max
/// instruction, so wide lanes turn a branchy loop into `vpmaxuq` streams.
fn check_edge_ids(
    gather_ids: &[usize],
    segment_ids: &[usize],
    rows: usize,
    n_segments: usize,
) -> bool {
    let mut scan = EdgeIdScan::default();
    edge_id_scan_dispatch(gather_ids, segment_ids, &mut scan);
    if scan.max_g >= rows && !gather_ids.is_empty() {
        check_gather_ids(gather_ids, rows);
    }
    if scan.max_s >= n_segments && !segment_ids.is_empty() {
        check_segment_ids(segment_ids, n_segments);
    }
    scan.sorted
}

/// Result of the fused id scan: running maxima plus segment-id sortedness.
struct EdgeIdScan {
    max_g: usize,
    max_s: usize,
    sorted: bool,
}

impl Default for EdgeIdScan {
    fn default() -> Self {
        EdgeIdScan { max_g: 0, max_s: 0, sorted: true }
    }
}

/// Hot loop of [`check_edge_ids`].
#[inline(always)]
fn edge_id_scan(gather_ids: &[usize], segment_ids: &[usize], scan: &mut EdgeIdScan) {
    let (mut max_g, mut max_s) = (0usize, 0usize);
    let mut sorted = true;
    let mut prev = 0usize;
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        max_g = max_g.max(g);
        max_s = max_s.max(s);
        sorted &= prev <= s;
        prev = s;
    }
    scan.max_g = max_g;
    scan.max_s = max_s;
    scan.sorted = sorted;
}

fn check_segment_ids(segment_ids: &[usize], n_segments: usize) {
    if let Some(&bad) = segment_ids.iter().find(|&&s| s >= n_segments) {
        panic!("segment id {bad} >= {n_segments}");
    }
}

/// Gathers rows of `src` at `indices` into a new `[indices.len(), D]` tensor.
///
/// # Panics
///
/// Panics if `src` is not rank 2 or any index is out of bounds.
pub fn gather_rows(src: &Tensor, indices: &[usize]) -> Tensor {
    let cols = src.cols();
    let mut data = vec![0.0f32; indices.len() * cols];
    gather_rows_into(src, indices, &mut data);
    Tensor::from_vec(data, &[indices.len(), cols]).expect("gather output shape")
}

/// [`gather_rows`] writing into `out` (fully overwritten, row by row with
/// `copy_from_slice`).
///
/// # Panics
///
/// Panics if an index is out of bounds or `out` has the wrong length.
pub fn gather_rows_into(src: &Tensor, indices: &[usize], out: &mut [f32]) {
    let (rows, cols) = (src.rows(), src.cols());
    assert_eq!(out.len(), indices.len() * cols, "gather output length mismatch");
    if cols == 0 {
        return;
    }
    // One pre-pass over the (cache-resident) index slice instead of a
    // bounds assert per copied row.
    check_gather_ids(indices, rows);
    let sdata = src.data();
    for (orow, &i) in out.chunks_mut(cols).zip(indices) {
        orow.copy_from_slice(&sdata[i * cols..(i + 1) * cols]);
    }
}

/// Adds row `r` of `values` into row `indices[r]` of `out`.
///
/// The adjoint of [`gather_rows`]: scattering gradients back to the gathered
/// source rows. Repeated indices accumulate.
///
/// # Panics
///
/// Panics if shapes disagree or any index is out of bounds.
pub fn scatter_add_rows(out: &mut Tensor, values: &Tensor, indices: &[usize]) {
    let cols = out.cols();
    assert_eq!(values.cols(), cols, "scatter column mismatch");
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    let n = out.rows();
    if cols == 0 {
        return;
    }
    // Hoisted pre-pass (see `gather_rows_into`): the accumulate loop adds
    // in exactly the same row order, so output bits are unchanged.
    check_scatter_ids(indices, n);
    let vdata = values.data();
    let odata = out.data_mut();
    for (vrow, &i) in vdata.chunks(cols).zip(indices) {
        for (o, &v) in odata[i * cols..(i + 1) * cols].iter_mut().zip(vrow) {
            *o += v;
        }
    }
}

/// Places row `r` of `values` into row `indices[r]` of a fresh
/// `[n_rows, D]` zero tensor (later writes overwrite earlier ones).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn scatter_rows(values: &Tensor, indices: &[usize], n_rows: usize) -> Tensor {
    let cols = values.cols();
    let mut out = Tensor::zeros(&[n_rows, cols]);
    scatter_rows_into(values, indices, out.data_mut());
    out
}

/// [`scatter_rows`] writing into `out`, which must be zero-filled
/// `[n_rows * cols]` (rows not referenced are left untouched).
///
/// # Panics
///
/// Panics if an index is out of bounds or lengths disagree.
pub fn scatter_rows_into(values: &Tensor, indices: &[usize], out: &mut [f32]) {
    let cols = values.cols();
    assert_eq!(values.rows(), indices.len(), "one index per value row");
    assert_eq!(out.len() % cols.max(1), 0, "scatter output length mismatch");
    let n_rows = out.len().checked_div(cols).unwrap_or(0);
    for (r, &i) in indices.iter().enumerate() {
        assert!(i < n_rows, "scatter index {i} out of bounds for {n_rows} rows");
        out[i * cols..(i + 1) * cols].copy_from_slice(values.row(r));
    }
}

/// Sums rows of `values` into `n_segments` buckets keyed by `segment_ids`.
///
/// `values` is `[E, D]`, `segment_ids` has length `E`; output is
/// `[n_segments, D]`. Segments with no member are zero.
///
/// # Panics
///
/// Panics if a segment id is `>= n_segments` or lengths disagree.
pub fn segment_sum(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, values.cols()]);
    segment_sum_into(values, segment_ids, out.data_mut());
    out
}

/// [`segment_sum`] accumulating into `out`, which must be zero-filled
/// `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_sum_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "segment_sum output length mismatch");
    for (vrow, &s) in values.data().chunks(cols).zip(segment_ids) {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(vrow) {
            *o += v;
        }
    }
}

/// Per-segment mean; empty segments produce zero rows.
///
/// Returns the mean tensor together with the per-segment counts (needed by
/// the backward pass).
pub fn segment_mean(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let mut out = Tensor::zeros(&[n_segments, values.cols()]);
    let counts = segment_mean_into(values, segment_ids, out.data_mut());
    (out, counts)
}

/// [`segment_mean`] accumulating into `out`, which must be zero-filled
/// `[n_segments * cols]`; returns the per-segment counts.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_mean_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) -> Vec<usize> {
    let mut counts = Vec::new();
    segment_mean_into_reusing(values, segment_ids, out, &mut counts);
    counts
}

/// [`segment_mean_into`] writing the per-segment counts into a
/// caller-provided buffer (cleared and refilled), so a recycled buffer
/// makes the op allocation-free — same pattern as
/// [`segment_max_into_reusing`].
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_mean_into_reusing(
    values: &Tensor,
    segment_ids: &[usize],
    out: &mut [f32],
    counts: &mut Vec<usize>,
) {
    let cols = values.cols();
    let n_segments = out.len().checked_div(cols).unwrap_or(0);
    counts.clear();
    counts.resize(n_segments, 0);
    for &s in segment_ids {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        counts[s] += 1;
    }
    segment_sum_into(values, segment_ids, out);
    for (s, &cnt) in counts.iter().enumerate() {
        if cnt > 1 {
            let inv = 1.0 / cnt as f32;
            for v in &mut out[s * cols..(s + 1) * cols] {
                *v *= inv;
            }
        }
    }
}

/// Per-segment elementwise max.
///
/// Returns the max tensor (empty segments are zero) and, per output cell, the
/// index of the winning input row (`usize::MAX` for empty segments) — the
/// state the backward pass routes gradients through.
pub fn segment_max(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
) -> (Tensor, Vec<usize>) {
    let cols = values.cols();
    let mut out = Tensor::zeros(&[n_segments, cols]);
    let argmax = segment_max_into(values, segment_ids, out.data_mut());
    (out, argmax)
}

/// [`segment_max`] writing into `out` (fully overwritten — the kernel
/// seeds every cell with `-∞` first); returns the per-cell argmax.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_max_into(values: &Tensor, segment_ids: &[usize], out: &mut [f32]) -> Vec<usize> {
    let mut argmax = Vec::new();
    segment_max_into_reusing(values, segment_ids, out, &mut argmax);
    argmax
}

/// [`segment_max_into`] writing the argmax into a caller-provided buffer
/// (cleared and refilled), so a recycled buffer makes the op allocation-free.
///
/// # Panics
///
/// Panics if a segment id is out of bounds or lengths disagree.
pub fn segment_max_into_reusing(
    values: &Tensor,
    segment_ids: &[usize],
    out: &mut [f32],
    argmax: &mut Vec<usize>,
) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    let n_segments = out.len().checked_div(cols).unwrap_or(0);
    assert_eq!(out.len(), n_segments * cols, "segment_max output length mismatch");
    out.fill(f32::NEG_INFINITY);
    argmax.clear();
    argmax.resize(n_segments * cols, usize::MAX);
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > out[s * cols + c] {
                out[s * cols + c] = row[c];
                argmax[s * cols + c] = r;
            }
        }
    }
    for v in out.iter_mut() {
        if *v == f32::NEG_INFINITY {
            *v = 0.0;
        }
    }
}

/// Runs `body(out_chunk, owned_range)` for the simd fused kernels: either
/// inline over the whole output, or — when the work crosses
/// [`FUSED_PAR_WORK_THRESHOLD`] and more than one worker is configured —
/// once per contiguous output-row shard on scoped threads. Every worker
/// scans the full edge list but touches only rows it owns, so per-element
/// additions happen in edge order no matter the thread count:
/// bit-identical output, no atomics.
fn fused_forward_sharded(
    out: &mut [f32],
    n_rows: usize,
    cols: usize,
    edges: usize,
    body: &(dyn Fn(&mut [f32], std::ops::Range<usize>) + Sync),
) {
    let threads = betty_runtime::configured_threads();
    if threads > 1 && n_rows > 1 && edges * cols >= FUSED_PAR_WORK_THRESHOLD {
        let ranges = betty_runtime::shard_ranges(n_rows, threads);
        std::thread::scope(|scope| {
            let mut rest = out;
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut(range.len() * cols);
                rest = tail;
                scope.spawn(move || body(chunk, range));
            }
        });
    } else {
        body(out, 0..n_rows);
    }
}

/// Generates `<name>_dispatch`, which runs `<name>` recompiled for the
/// widest SIMD lane set the CPU offers. The body is the identical safe
/// loop in every case — rustc does not contract `a*b + c` into fused
/// multiply-adds, so lane width changes throughput, never rounding —
/// which keeps simd output bit-identical to scalar. Each kernel gets its
/// own named `#[target_feature]` wrapper (not a generic closure
/// trampoline: closure environments block the optimizer from fully
/// vectorizing inside the feature context, measured ~1.5× slower).
macro_rules! lane_dispatch {
    ($dispatch:ident, $avx512:ident, $avx2:ident, $body:ident($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)] // inherits the kernel signature
        fn $avx512($($arg: $ty),*) {
            $body($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)] // inherits the kernel signature
        fn $avx2($($arg: $ty),*) {
            $body($($arg),*);
        }

        #[allow(clippy::too_many_arguments)] // inherits the kernel signature
        fn $dispatch($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: the feature check guarantees the
                    // instructions exist; the wrapper runs ordinary safe
                    // code.
                    unsafe { $avx512($($arg),*) };
                    return;
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: as above.
                    unsafe { $avx2($($arg),*) };
                    return;
                }
            }
            $body($($arg),*);
        }
    };
}

lane_dispatch!(
    edge_id_scan_dispatch,
    edge_id_scan_avx512,
    edge_id_scan_avx2,
    edge_id_scan(gather_ids: &[usize], segment_ids: &[usize], scan: &mut EdgeIdScan)
);

/// Chunk widths (in floats) the run-length fused loops hold in registers:
/// 8 zmm under AVX-512 for wide rows, stepping down to 4 zmm so rows of at
/// least 64 columns still get register accumulation.
const RUN_ACC_WIDE: usize = 128;
/// Narrow chunk width; see [`RUN_ACC_WIDE`].
const RUN_ACC_NARROW: usize = 64;

/// Source-matrix size (bytes) up to which the column-chunked run loop is
/// used even for wide rows. Chunking re-walks each run once per chunk;
/// when the source no longer fits the fast cache levels those strided
/// re-walks cost more than they save, so wider large sources switch to
/// the streaming full-row loop.
const RUN_CHUNK_SRC_BYTES: usize = 2 << 20;

/// How many edges ahead the fused loops prefetch the gathered source row.
/// Gathers are random-access; a short prefetch pipeline hides most of the
/// cache/DRAM latency without flooding the fill buffers.
const PREFETCH_EDGE_DIST: usize = 12;

/// Prefetches `floats` floats (whole cache lines, at most 8) starting
/// `offset` floats into `data`. Uses `wrapping_add` so a tail row shorter
/// than the prefetch window stays sound: prefetch never faults and stray
/// lines are harmless.
#[inline(always)]
fn prefetch_row(data: &[f32], offset: usize, floats: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let lines = floats.div_ceil(16).min(8);
        for l in 0..lines {
            // SAFETY: prefetch is a hint; it cannot fault, and
            // `wrapping_add` keeps the pointer arithmetic defined even
            // when the window runs past the slice.
            unsafe {
                _mm_prefetch(data.as_ptr().wrapping_add(offset + l * 16).cast(), _MM_HINT_T0);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, offset, floats);
    }
}

/// One register-accumulated column chunk of a run: loads `out_row[c..c+W]`
/// once, adds every gathered row slice in edge order, stores once.
/// `weights` scales each edge's contribution (`None` for the plain sum);
/// the multiply happens before the add in both backends, so rounding
/// matches scalar exactly.
#[inline(always)]
fn run_chunk_accum<const W: usize>(
    sdata: &[f32],
    run: &[usize],
    run_weights: Option<&[f32]>,
    out_row: &mut [f32],
    c: usize,
    cols: usize,
) {
    let mut acc = [0.0f32; W];
    acc.copy_from_slice(&out_row[c..c + W]);
    for (j, &g) in run.iter().enumerate() {
        if j + PREFETCH_EDGE_DIST < run.len() {
            prefetch_row(sdata, run[j + PREFETCH_EDGE_DIST] * cols + c, W);
        }
        let src: &[f32; W] =
            sdata[g * cols + c..g * cols + c + W].try_into().expect("chunk width");
        match run_weights {
            None => {
                for i in 0..W {
                    acc[i] += src[i];
                }
            }
            Some(ws) => {
                let w = ws[j];
                for i in 0..W {
                    acc[i] += w * src[i];
                }
            }
        }
    }
    out_row[c..c + W].copy_from_slice(&acc);
}

/// Shared body of the simd fused (weighted) sum over one owned segment
/// range.
///
/// Blocks sampled from CSR adjacency emit `segment_ids` in non-decreasing
/// destination order (see `edge_dst_locals_non_decreasing` in
/// `betty-graph`), so equal ids arrive in runs. Two strategies, chosen by
/// source size:
///
/// * **run-chunked** (narrow rows, or source within
///   [`RUN_CHUNK_SRC_BYTES`]): the output row is held in registers across
///   each run, [`RUN_ACC_WIDE`]/[`RUN_ACC_NARROW`] columns at a time —
///   memory traffic per element drops from load+load+store to one
///   streaming load.
/// * **full-row** (large wide sources): per-edge sequential row adds so
///   the hardware prefetcher sees whole-row streams, with software
///   prefetch of upcoming gather rows hiding the random-access latency.
///
/// Additions per output element follow edge order in both — the scalar
/// order — so output is bit-identical to the scalar backend.
#[allow(clippy::too_many_arguments)] // flat slices: one arg per kernel operand
#[inline(always)]
fn fused_accum_range(
    sdata: &[f32],
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: Option<&[f32]>,
    sorted: bool,
    out: &mut [f32],
    seg_range: std::ops::Range<usize>,
    cols: usize,
) {
    // CSR-sorted segment ids let each worker binary-search the edge span
    // covering its owned rows instead of scanning the full edge list —
    // total sharded work stays at one pass over the edges.
    let (gather_ids, segment_ids, weights) = if sorted {
        let lo = segment_ids.partition_point(|&s| s < seg_range.start);
        let hi = segment_ids.partition_point(|&s| s < seg_range.end);
        (
            &gather_ids[lo..hi],
            &segment_ids[lo..hi],
            weights.map(|ws| &ws[lo..hi]),
        )
    } else {
        (gather_ids, segment_ids, weights)
    };
    let n_edges = gather_ids.len();
    if cols > RUN_ACC_WIDE && sdata.len() * 4 > RUN_CHUNK_SRC_BYTES {
        for e in 0..n_edges {
            let s = segment_ids[e];
            if s < seg_range.start || s >= seg_range.end {
                continue;
            }
            if e + PREFETCH_EDGE_DIST < n_edges {
                let f = e + PREFETCH_EDGE_DIST;
                let fs = segment_ids[f];
                if fs >= seg_range.start && fs < seg_range.end {
                    prefetch_row(sdata, gather_ids[f] * cols, cols);
                }
            }
            let local = s - seg_range.start;
            let g = gather_ids[e];
            let src_row = &sdata[g * cols..(g + 1) * cols];
            let out_row = &mut out[local * cols..(local + 1) * cols];
            match weights {
                None => {
                    for (o, &v) in out_row.iter_mut().zip(src_row) {
                        *o += v;
                    }
                }
                Some(ws) => {
                    let w = ws[e];
                    for (o, &v) in out_row.iter_mut().zip(src_row) {
                        *o += w * v;
                    }
                }
            }
        }
        return;
    }
    let mut e = 0;
    while e < n_edges {
        let s = segment_ids[e];
        let mut end = e + 1;
        while end < n_edges && segment_ids[end] == s {
            end += 1;
        }
        if s < seg_range.start || s >= seg_range.end {
            e = end;
            continue;
        }
        let local = s - seg_range.start;
        let out_row = &mut out[local * cols..(local + 1) * cols];
        let run = &gather_ids[e..end];
        let run_weights = weights.map(|ws| &ws[e..end]);
        let mut c = 0;
        while c + RUN_ACC_WIDE <= cols {
            run_chunk_accum::<RUN_ACC_WIDE>(sdata, run, run_weights, out_row, c, cols);
            c += RUN_ACC_WIDE;
        }
        while c + RUN_ACC_NARROW <= cols {
            run_chunk_accum::<RUN_ACC_NARROW>(sdata, run, run_weights, out_row, c, cols);
            c += RUN_ACC_NARROW;
        }
        if c < cols {
            for (j, &g) in run.iter().enumerate() {
                let src_row = &sdata[g * cols + c..(g + 1) * cols];
                match run_weights {
                    None => {
                        for (o, &v) in out_row[c..].iter_mut().zip(src_row) {
                            *o += v;
                        }
                    }
                    Some(ws) => {
                        let w = ws[j];
                        for (o, &v) in out_row[c..].iter_mut().zip(src_row) {
                            *o += w * v;
                        }
                    }
                }
            }
        }
        e = end;
    }
}

lane_dispatch!(
    fused_accum_dispatch,
    fused_accum_range_avx512,
    fused_accum_range_avx2,
    fused_accum_range(
        sdata: &[f32],
        gather_ids: &[usize],
        segment_ids: &[usize],
        weights: Option<&[f32]>,
        sorted: bool,
        out: &mut [f32],
        seg_range: std::ops::Range<usize>,
        cols: usize,
    )
);

/// Edge loop of the simd fused-sum backward over one owned source-row
/// range (ownership keyed by gather id: the row being accumulated into).
#[inline(always)]
fn fused_sum_backward_range(
    gdata: &[f32],
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    out: &mut [f32],
    src_range: std::ops::Range<usize>,
    cols: usize,
) {
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        if g < src_range.start || g >= src_range.end {
            continue;
        }
        let local = g - src_range.start;
        let scale = segment_scale.map_or(1.0, |sc| sc[s]);
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[local * cols..(local + 1) * cols].iter_mut().zip(grad_row) {
            *o += v * scale;
        }
    }
}

/// Edge loop of the simd weighted fused-sum backward over one owned
/// source-row range.
#[inline(always)]
fn fused_weighted_sum_backward_range(
    gdata: &[f32],
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    out: &mut [f32],
    src_range: std::ops::Range<usize>,
    cols: usize,
) {
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        if g < src_range.start || g >= src_range.end {
            continue;
        }
        let local = g - src_range.start;
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[local * cols..(local + 1) * cols].iter_mut().zip(grad_row) {
            *o += w * v;
        }
    }
}

lane_dispatch!(
    fused_sum_backward_dispatch,
    fused_sum_backward_range_avx512,
    fused_sum_backward_range_avx2,
    fused_sum_backward_range(
        gdata: &[f32],
        gather_ids: &[usize],
        segment_ids: &[usize],
        segment_scale: Option<&[f32]>,
        out: &mut [f32],
        src_range: std::ops::Range<usize>,
        cols: usize,
    )
);

lane_dispatch!(
    fused_weighted_sum_backward_dispatch,
    fused_weighted_sum_backward_range_avx512,
    fused_weighted_sum_backward_range_avx2,
    fused_weighted_sum_backward_range(
        gdata: &[f32],
        gather_ids: &[usize],
        segment_ids: &[usize],
        weights: &[f32],
        out: &mut [f32],
        src_range: std::ops::Range<usize>,
        cols: usize,
    )
);

/// Fused gather + segment-sum: `out[seg_ids[e]] += src[gather_ids[e]]`
/// without materializing the `[E, D]` message tensor (the moral equivalent
/// of DGL's fused message-passing kernels).
///
/// # Panics
///
/// Panics if index slices disagree in length or contain out-of-bounds ids.
pub fn fused_gather_segment_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    n_segments: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, src.cols()]);
    fused_gather_segment_sum_into(src, gather_ids, segment_ids, out.data_mut());
    out
}

/// [`fused_gather_segment_sum`] accumulating into `out`, which must be
/// zero-filled `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if index slices disagree in length or contain out-of-bounds ids.
pub fn fused_gather_segment_sum_into(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let (rows, cols) = (src.rows(), src.cols());
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "fused sum output length mismatch");
    let sdata = src.data();
    if Backend::current() == Backend::Simd {
        let sorted = check_edge_ids(gather_ids, segment_ids, rows, n_segments);
        fused_forward_sharded(out, n_segments, cols, gather_ids.len(), &|out_chunk, range| {
            fused_accum_dispatch(
                sdata,
                gather_ids,
                segment_ids,
                None,
                sorted,
                out_chunk,
                range,
                cols,
            );
        });
        return;
    }
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += v;
        }
    }
}

/// Adjoint of [`fused_gather_segment_sum`] (optionally degree-normalized):
/// scatters `grad[seg_ids[e]] * scale[seg_ids[e]]` back into the source
/// rows, again with no `[E, D]` intermediate.
///
/// # Panics
///
/// Panics if slices disagree in length or ids are out of bounds.
pub fn fused_gather_segment_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    n_src_rows: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_src_rows, grad.cols()]);
    fused_gather_segment_sum_backward_into(grad, gather_ids, segment_ids, segment_scale, out.data_mut());
    out
}

/// [`fused_gather_segment_sum_backward`] accumulating into `out`, which
/// must be zero-filled `[n_src_rows * cols]`.
///
/// # Panics
///
/// Panics if slices disagree in length or ids are out of bounds.
pub fn fused_gather_segment_sum_backward_into(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    segment_scale: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    let cols = grad.cols();
    if cols == 0 {
        return;
    }
    let n_src_rows = out.len() / cols;
    assert_eq!(out.len(), n_src_rows * cols, "fused backward output length mismatch");
    let gdata = grad.data();
    if Backend::current() == Backend::Simd {
        if let Some(&bad) = gather_ids.iter().find(|&&g| g >= n_src_rows) {
            panic!("gather index {bad} out of bounds");
        }
        fused_forward_sharded(out, n_src_rows, cols, gather_ids.len(), &|out_chunk, range| {
            fused_sum_backward_dispatch(
                gdata,
                gather_ids,
                segment_ids,
                segment_scale,
                out_chunk,
                range,
                cols,
            );
        });
        return;
    }
    for (&g, &s) in gather_ids.iter().zip(segment_ids) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let scale = segment_scale.map_or(1.0, |sc| sc[s]);
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += v * scale;
        }
    }
}

/// Weighted fused gather + segment-sum:
/// `out[seg_ids[e]] += weights[e] · src[gather_ids[e]]`, with no `[E, D]`
/// intermediate (the kernel behind normalized aggregations such as GCN).
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_segments: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_segments, src.cols()]);
    fused_gather_segment_weighted_sum_into(src, gather_ids, segment_ids, weights, out.data_mut());
    out
}

/// [`fused_gather_segment_weighted_sum`] accumulating into `out`, which
/// must be zero-filled `[n_segments * cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_into(
    src: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let (rows, cols) = (src.rows(), src.cols());
    if cols == 0 {
        return;
    }
    let n_segments = out.len() / cols;
    assert_eq!(out.len(), n_segments * cols, "weighted sum output length mismatch");
    let sdata = src.data();
    if Backend::current() == Backend::Simd {
        let sorted = check_edge_ids(gather_ids, segment_ids, rows, n_segments);
        fused_forward_sharded(out, n_segments, cols, gather_ids.len(), &|out_chunk, range| {
            fused_accum_dispatch(
                sdata,
                gather_ids,
                segment_ids,
                Some(weights),
                sorted,
                out_chunk,
                range,
                cols,
            );
        });
        return;
    }
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < rows, "gather index {g} out of bounds for {rows} rows");
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let src_row = &sdata[g * cols..(g + 1) * cols];
        for (o, &v) in out[s * cols..(s + 1) * cols].iter_mut().zip(src_row) {
            *o += w * v;
        }
    }
}

/// Adjoint of [`fused_gather_segment_weighted_sum`]:
/// `d_src[gather_ids[e]] += weights[e] · grad[seg_ids[e]]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_backward(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    n_src_rows: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[n_src_rows, grad.cols()]);
    fused_gather_segment_weighted_sum_backward_into(grad, gather_ids, segment_ids, weights, out.data_mut());
    out
}

/// [`fused_gather_segment_weighted_sum_backward`] accumulating into `out`,
/// which must be zero-filled `[n_src_rows * cols]`.
///
/// # Panics
///
/// Panics if slice lengths disagree or ids are out of bounds.
pub fn fused_gather_segment_weighted_sum_backward_into(
    grad: &Tensor,
    gather_ids: &[usize],
    segment_ids: &[usize],
    weights: &[f32],
    out: &mut [f32],
) {
    assert_eq!(gather_ids.len(), segment_ids.len(), "one segment per edge");
    assert_eq!(gather_ids.len(), weights.len(), "one weight per edge");
    let cols = grad.cols();
    if cols == 0 {
        return;
    }
    let n_src_rows = out.len() / cols;
    assert_eq!(out.len(), n_src_rows * cols, "weighted backward output length mismatch");
    let gdata = grad.data();
    if Backend::current() == Backend::Simd {
        if let Some(&bad) = gather_ids.iter().find(|&&g| g >= n_src_rows) {
            panic!("gather index {bad} out of bounds");
        }
        fused_forward_sharded(out, n_src_rows, cols, gather_ids.len(), &|out_chunk, range| {
            fused_weighted_sum_backward_dispatch(
                gdata,
                gather_ids,
                segment_ids,
                weights,
                out_chunk,
                range,
                cols,
            );
        });
        return;
    }
    for ((&g, &s), &w) in gather_ids.iter().zip(segment_ids).zip(weights) {
        assert!(g < n_src_rows, "gather index {g} out of bounds");
        let grad_row = &gdata[s * cols..(s + 1) * cols];
        for (o, &v) in out[g * cols..(g + 1) * cols].iter_mut().zip(grad_row) {
            *o += w * v;
        }
    }
}

/// Numerically-stable softmax within each segment, applied column-wise.
///
/// For attention: `values` is `[E, H]` of per-edge scores, grouped by
/// destination; each column of each segment is normalized independently.
/// Rows in empty segments are untouched by definition (there are none).
pub fn segment_softmax(values: &Tensor, segment_ids: &[usize], n_segments: usize) -> Tensor {
    let mut out = Tensor::zeros(values.shape());
    segment_softmax_into(values, segment_ids, n_segments, out.data_mut());
    out
}

/// [`segment_softmax`] writing into `out`, which must have `values.len()`
/// elements and is fully overwritten (contents on entry are irrelevant).
///
/// # Panics
///
/// Panics if lengths disagree or ids exceed `n_segments`.
pub fn segment_softmax_into(
    values: &Tensor,
    segment_ids: &[usize],
    n_segments: usize,
    out: &mut [f32],
) {
    let cols = values.cols();
    assert_eq!(values.rows(), segment_ids.len(), "one segment id per row");
    assert_eq!(out.len(), values.len(), "segment_softmax output length mismatch");
    // Pass 1: per-segment max.
    let mut max = vec![f32::NEG_INFINITY; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        assert!(s < n_segments, "segment id {s} >= {n_segments}");
        let row = values.row(r);
        for c in 0..cols {
            if row[c] > max[s * cols + c] {
                max[s * cols + c] = row[c];
            }
        }
    }
    // Pass 2: exp and per-segment sums.
    let mut sums = vec![0.0f32; n_segments * cols];
    for (r, &s) in segment_ids.iter().enumerate() {
        let row = values.row(r);
        for c in 0..cols {
            let e = (row[c] - max[s * cols + c]).exp();
            out[r * cols + c] = e;
            sums[s * cols + c] += e;
        }
    }
    // Pass 3: normalize.
    for (r, &s) in segment_ids.iter().enumerate() {
        for c in 0..cols {
            out[r * cols + c] /= sums[s * cols + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn gather_then_scatter_is_degree_scaling() {
        let src = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let g = gather_rows(&src, &[0, 1, 0]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.row(2), &[1.0, 2.0]);
        let mut out = Tensor::zeros(&[2, 2]);
        scatter_add_rows(&mut out, &g, &[0, 1, 0]);
        // Row 0 gathered twice -> scattered back doubled.
        assert_eq!(out.row(0), &[2.0, 4.0]);
        assert_eq!(out.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn scatter_rows_places_and_zeros() {
        let v = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let out = scatter_rows(&v, &[2, 0], 3);
        assert_eq!(out.row(0), &[2.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn segment_sum_accumulates() {
        let v = t(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[3, 2]);
        let s = segment_sum(&v, &[1, 1, 0], 3);
        assert_eq!(s.row(0), &[3.0, 30.0]);
        assert_eq!(s.row(1), &[3.0, 30.0]);
        assert_eq!(s.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn segment_mean_divides_by_count() {
        let v = t(&[2.0, 4.0, 6.0], &[3, 1]);
        let (m, counts) = segment_mean(&v, &[0, 0, 1], 2);
        assert_eq!(m.row(0), &[3.0]);
        assert_eq!(m.row(1), &[6.0]);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn segment_max_tracks_argmax() {
        let v = t(&[1.0, 5.0, 3.0, 2.0], &[4, 1]);
        let (m, arg) = segment_max(&v, &[0, 0, 1, 1], 3);
        assert_eq!(m.row(0), &[5.0]);
        assert_eq!(m.row(1), &[3.0]);
        assert_eq!(m.row(2), &[0.0]); // empty segment
        assert_eq!(arg[0], 1);
        assert_eq!(arg[1], 2);
        assert_eq!(arg[2], usize::MAX);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let v = t(&[1.0, 2.0, 3.0, 100.0, 101.0], &[5, 1]);
        let sm = segment_softmax(&v, &[0, 0, 0, 1, 1], 2);
        let s0: f32 = (0..3).map(|r| sm.at2(r, 0)).sum();
        let s1: f32 = (3..5).map(|r| sm.at2(r, 0)).sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(sm.all_finite());
        // Larger score gets larger weight.
        assert!(sm.at2(2, 0) > sm.at2(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        let src = t(&[1.0, 2.0], &[1, 2]);
        gather_rows(&src, &[1]);
    }

    /// The fused simd path (segment-ownership sharding + wide-lane row
    /// adds) must reproduce the scalar edge-order accumulation bit for bit
    /// at every thread count: each output row still sees its additions in
    /// edge order, only the scan is restructured.
    #[test]
    fn fused_kernels_bit_identical_across_backends_and_threads() {
        let shapes = [
            (1usize, 1usize, 1usize, 0usize), // single row, no edges
            (5, 3, 4, 11),
            (17, 8, 9, 64),
            (33, 20, 7, 257),
            (65, 70, 9, 513),  // sorted: wide rows, chunk + tail columns
            (40, 130, 11, 400), // unsorted: crosses RUN_ACC_WIDE
        ];
        for &(rows, cols, n_segments, n_edges) in &shapes {
            let src = salted(rows, cols, 0.41);
            let grad = salted(n_segments, cols, 2.3);
            let gather_ids: Vec<usize> = (0..n_edges).map(|e| (e * 7 + 3) % rows).collect();
            let mut segment_ids: Vec<usize> =
                (0..n_edges).map(|e| (e * 5 + 1) % n_segments).collect();
            if rows % 2 == 1 {
                // Exercise both the CSR-sorted span-narrowed path (runs of
                // equal ids, binary-searched shards) and the unsorted
                // full-scan path across the shape table.
                segment_ids.sort_unstable();
            }
            let weights: Vec<f32> = (0..n_edges).map(|e| (e as f32 * 0.37).cos()).collect();
            let scale: Vec<f32> = (0..n_segments).map(|s| 1.0 / (s + 1) as f32).collect();
            for threads in [1usize, 4] {
                betty_runtime::set_thread_override(Some(threads));
                let fwd_ref = crate::with_backend(crate::Backend::Scalar, || {
                    fused_gather_segment_sum(&src, &gather_ids, &segment_ids, n_segments)
                });
                let fwd = crate::with_backend(crate::Backend::Simd, || {
                    fused_gather_segment_sum(&src, &gather_ids, &segment_ids, n_segments)
                });
                assert_eq!(bits(&fwd_ref), bits(&fwd), "fused sum {rows}x{cols} t={threads}");

                let wfwd_ref = crate::with_backend(crate::Backend::Scalar, || {
                    fused_gather_segment_weighted_sum(
                        &src, &gather_ids, &segment_ids, &weights, n_segments,
                    )
                });
                let wfwd = crate::with_backend(crate::Backend::Simd, || {
                    fused_gather_segment_weighted_sum(
                        &src, &gather_ids, &segment_ids, &weights, n_segments,
                    )
                });
                assert_eq!(bits(&wfwd_ref), bits(&wfwd), "weighted {rows}x{cols} t={threads}");

                for sc in [None, Some(scale.as_slice())] {
                    let bwd_ref = crate::with_backend(crate::Backend::Scalar, || {
                        fused_gather_segment_sum_backward(
                            &grad, &gather_ids, &segment_ids, sc, rows,
                        )
                    });
                    let bwd = crate::with_backend(crate::Backend::Simd, || {
                        fused_gather_segment_sum_backward(
                            &grad, &gather_ids, &segment_ids, sc, rows,
                        )
                    });
                    assert_eq!(bits(&bwd_ref), bits(&bwd), "backward {rows}x{cols} t={threads}");
                }

                let wbwd_ref = crate::with_backend(crate::Backend::Scalar, || {
                    fused_gather_segment_weighted_sum_backward(
                        &grad, &gather_ids, &segment_ids, &weights, rows,
                    )
                });
                let wbwd = crate::with_backend(crate::Backend::Simd, || {
                    fused_gather_segment_weighted_sum_backward(
                        &grad, &gather_ids, &segment_ids, &weights, rows,
                    )
                });
                assert_eq!(bits(&wbwd_ref), bits(&wbwd), "wbackward {rows}x{cols} t={threads}");
            }
            betty_runtime::set_thread_override(None);
        }
    }

    /// Irrational-ish values so any reordering or rounding difference
    /// between the block-copy kernels and the old per-element index loops
    /// would show up at the bit level.
    fn salted(rows: usize, cols: usize, salt: f32) -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as f32) * 0.731 + salt).sin() * 3.77)
            .collect();
        Tensor::from_vec(data, &[rows, cols]).expect("salted tensor")
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn row_copy_kernels_bitwise_match_index_loop_reference() {
        let src = salted(11, 6, 0.13);
        let indices = [3usize, 0, 7, 7, 10, 2];

        // gather_rows: block copy vs element-at-a-time reference.
        let got = gather_rows(&src, &indices);
        let mut want = vec![0.0f32; indices.len() * 6];
        for (r, &i) in indices.iter().enumerate() {
            for c in 0..6 {
                want[r * 6 + c] = src.at2(i, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // scatter_rows: later writes win, untouched rows stay zero.
        let values = salted(4, 6, 1.9);
        let sc_idx = [2usize, 5, 2, 0];
        let got = scatter_rows(&values, &sc_idx, 8);
        let mut want = [0.0f32; 8 * 6];
        for (r, &i) in sc_idx.iter().enumerate() {
            for c in 0..6 {
                want[i * 6 + c] = values.at2(r, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // scatter_add_rows: repeated indices accumulate in row order.
        let mut got = Tensor::zeros(&[8, 6]);
        scatter_add_rows(&mut got, &values, &sc_idx);
        let mut want = [0.0f32; 8 * 6];
        for (r, &i) in sc_idx.iter().enumerate() {
            for c in 0..6 {
                want[i * 6 + c] += values.at2(r, c);
            }
        }
        assert_eq!(bits(&got), want.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn into_variants_bitwise_match_allocating_variants() {
        let src = salted(9, 5, 0.41);
        let g_ids = [0usize, 3, 3, 8, 1, 5];
        let s_ids = [2usize, 0, 2, 1, 1, 0];
        let w: Vec<f32> = (0..6).map(|i| 0.5 + 0.1 * i as f32).collect();

        let sum = fused_gather_segment_sum(&src, &g_ids, &s_ids, 4);
        let mut out = vec![0.0f32; 4 * 5];
        fused_gather_segment_sum_into(&src, &g_ids, &s_ids, &mut out);
        assert_eq!(sum.data(), &out[..]);

        let wsum = fused_gather_segment_weighted_sum(&src, &g_ids, &s_ids, &w, 4);
        out.fill(0.0);
        fused_gather_segment_weighted_sum_into(&src, &g_ids, &s_ids, &w, &mut out);
        assert_eq!(wsum.data(), &out[..]);

        let grad = salted(4, 5, 2.2);
        let scale = [0.5f32, 0.25, 1.0, 2.0];
        let bwd = fused_gather_segment_sum_backward(&grad, &g_ids, &s_ids, Some(&scale), 9);
        let mut bout = vec![0.0f32; 9 * 5];
        fused_gather_segment_sum_backward_into(&grad, &g_ids, &s_ids, Some(&scale), &mut bout);
        assert_eq!(bwd.data(), &bout[..]);

        let wbwd = fused_gather_segment_weighted_sum_backward(&grad, &g_ids, &s_ids, &w, 9);
        bout.fill(0.0);
        fused_gather_segment_weighted_sum_backward_into(&grad, &g_ids, &s_ids, &w, &mut bout);
        assert_eq!(wbwd.data(), &bout[..]);

        // segment_softmax_into fully overwrites: seed with NaN poison.
        let scores = salted(6, 3, 0.07);
        let sm = segment_softmax(&scores, &s_ids, 3);
        let mut sout = vec![f32::NAN; 6 * 3];
        segment_softmax_into(&scores, &s_ids, 3, &mut sout);
        assert_eq!(bits(&sm), sout.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // segment_max_into seeds with -inf itself: dirty out is fine.
        let (mx, arg) = segment_max(&scores, &s_ids, 3);
        let mut mout = vec![f32::NAN; 3 * 3];
        let arg2 = segment_max_into(&scores, &s_ids, &mut mout);
        assert_eq!(mx.data(), &mout[..]);
        assert_eq!(arg, arg2);
    }
}

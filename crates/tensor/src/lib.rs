//! Dense `f32` tensors and a tape-based reverse-mode autograd engine.
//!
//! This crate is the numerical substrate of the Betty reproduction. It
//! provides:
//!
//! * [`Tensor`] — a contiguous, row-major, reference-counted `f32` tensor
//!   with the dense kernels GNN training needs (elementwise ops, matmul,
//!   reductions, row gather/scatter, and segment reductions used by graph
//!   aggregation).
//! * [`Graph`] — a dynamic computation tape. Operations record enough state
//!   to run reverse-mode differentiation; [`Graph::backward`] produces
//!   gradients for every reachable leaf.
//! * [`check`] — finite-difference gradient checking used by the test suite.
//!
//! # Example
//!
//! ```
//! use betty_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
//! let w = g.leaf(Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], &[2, 2]).unwrap());
//! let y = g.matmul(x, w);
//! let loss = g.sum(y);
//! g.backward(loss);
//! let dw = g.grad(w).expect("w participates in loss");
//! assert_eq!(dw.shape(), &[2, 2]);
//! ```

#![deny(missing_docs)]

mod error;
mod graph;
mod pool;
mod tensor;

pub mod backend;
pub mod check;
pub mod dtype;
pub mod init;
pub mod kernels;
pub mod segment;

pub use backend::{set_backend_override, with_backend, Backend};
pub use dtype::DType;
pub use error::TensorError;
pub use graph::{Graph, Reduction, VarId};
pub use pool::{BufferPool, PoolStats};
pub use init::{glorot_uniform, kaiming_uniform, randn, uniform};
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

//! Deterministic random tensor initializers.
//!
//! All initializers take an explicit [`rand::Rng`] so experiments are
//! reproducible; the rest of the workspace uses seeded
//! [`rand_pcg::Pcg64Mcg`] generators.

use rand::Rng;

use crate::Tensor;

/// Standard-normal random tensor (Box–Muller on the provided RNG).
pub fn randn(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    let len: usize = shape.iter().product();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        // Box–Muller transform: two uniforms -> two independent normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < len {
            data.push(r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape).expect("randn output shape")
}

/// Uniform random tensor over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("uniform output shape")
}

/// Glorot/Xavier uniform initialization for a `[fan_in, fan_out]` weight.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -limit, limit, rng)
}

/// Kaiming/He uniform initialization for a `[fan_in, fan_out]` weight.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (3.0 / fan_in as f32).sqrt() * std::f32::consts::SQRT_2;
    uniform(&[fan_in, fan_out], -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    #[test]
    fn randn_has_roughly_unit_variance() {
        let mut rng = Pcg64Mcg::seed_from_u64(7);
        let t = randn(&[10_000], &mut rng);
        let mean = t.mean_all();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn randn_odd_length() {
        let mut rng = Pcg64Mcg::seed_from_u64(1);
        assert_eq!(randn(&[3], &mut rng).len(), 3);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg64Mcg::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        let mut rng = Pcg64Mcg::seed_from_u64(5);
        let small = glorot_uniform(4, 4, &mut rng);
        let large = glorot_uniform(1024, 1024, &mut rng);
        assert!(small.max_abs() > large.max_abs());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = randn(&[16], &mut Pcg64Mcg::seed_from_u64(42));
        let b = randn(&[16], &mut Pcg64Mcg::seed_from_u64(42));
        assert_eq!(a, b);
    }
}

//! Non-differentiable dense kernels.
//!
//! These free functions implement the raw math used both directly (e.g. by
//! optimizers and inference paths) and by the autograd [`crate::Graph`] ops.
//! All kernels allocate their output; shape validation is by `assert!` with
//! descriptive messages since a shape error is always a programming bug.

use crate::Tensor;

/// Elements-per-thread threshold above which matmul parallelizes.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Row-major ikj loop order: streams through `b` rows, vectorizes well.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Matrix product `a @ b` for rank-2 tensors.
///
/// Parallelizes over row blocks for large inputs, using
/// [`betty_runtime::configured_threads`] workers.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or either input is not rank 2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul`] with an explicit worker count.
///
/// Each worker owns a contiguous block of output rows and runs the same
/// inner loop as the serial path, so the result is bit-identical for every
/// `threads` value (`1` = no spawns at all).
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let flops = m * k * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && m > 1 {
        let chunk = m.div_ceil(threads);
        let adata = a.data();
        let bdata = b.data();
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let rows = out_chunk.len() / n;
                let a_chunk = &adata[t * chunk * k..t * chunk * k + rows * k];
                scope.spawn(move || {
                    matmul_into(a_chunk, bdata, out_chunk, rows, k, n);
                });
            }
        });
    } else {
        matmul_into(a.data(), b.data(), &mut out, m, k, n);
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape")
}

/// Accumulates `aᵀ @ b` into output rows `i_range`.
///
/// The `r` (shared outer dimension) loop stays outermost and ascending, so
/// each output element sees additions in exactly the serial order no matter
/// how the `i` range is sharded.
fn matmul_at_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    for r in 0..m {
        let arow = &a[r * ka..(r + 1) * ka];
        let brow = &b[r * n..(r + 1) * n];
        for (ii, o_chunk) in out.chunks_mut(n).enumerate().take(i_range.len()) {
            let av = arow[i_range.start + ii];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in o_chunk.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `aᵀ @ b` without materializing the transpose.
///
/// Parallelizes over blocks of output rows (columns of `a`) for large
/// inputs, same FLOP threshold as [`matmul`].
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul_at_b`] with an explicit worker count; bit-identical for every
/// `threads` value.
pub fn matmul_at_b_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, ka) = (a.rows(), a.cols());
    let (m2, n) = (b.rows(), b.cols());
    assert_eq!(m, m2, "matmul_at_b outer dimension mismatch: {m} vs {m2}");
    let mut out = vec![0.0f32; ka * n];
    let adata = a.data();
    let bdata = b.data();
    let flops = m * ka * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && ka > 1 {
        let chunk = ka.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let cols = out_chunk.len() / n;
                scope.spawn(move || {
                    matmul_at_b_into(adata, bdata, out_chunk, m, ka, n, t * chunk..t * chunk + cols);
                });
            }
        });
    } else {
        matmul_at_b_into(adata, bdata, &mut out, m, ka, n, 0..ka);
    }
    Tensor::from_vec(out, &[ka, n]).expect("matmul_at_b output shape")
}

/// Computes output rows `[i0, i0 + rows)` of `a @ bᵀ`; rows are fully
/// independent, so sharding cannot change any result bit.
fn matmul_a_bt_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, i0: usize) {
    for (ii, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + ii;
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `a @ bᵀ` without materializing the transpose.
///
/// Parallelizes over blocks of output rows for large inputs, same FLOP
/// threshold as [`matmul`].
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul_a_bt`] with an explicit worker count; bit-identical for every
/// `threads` value.
pub fn matmul_a_bt_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_a_bt inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let adata = a.data();
    let bdata = b.data();
    let flops = m * k * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && m > 1 {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                scope.spawn(move || {
                    matmul_a_bt_into(adata, bdata, out_chunk, k, n, t * chunk);
                });
            }
        });
    } else {
        matmul_a_bt_into(adata, bdata, &mut out, k, n, 0);
    }
    Tensor::from_vec(out, &[m, n]).expect("matmul_a_bt output shape")
}

/// Elementwise binary map.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn zip_map(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(data, a.shape()).expect("zip_map output shape")
}

/// Elementwise unary map.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = a.data().iter().map(|&x| f(x)).collect();
    Tensor::from_vec(data, a.shape()).expect("map output shape")
}

/// Elementwise sum.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x + y)
}

/// Elementwise difference.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) product.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x * y)
}

/// Scalar multiple.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    map(a, |x| x * s)
}

/// Adds a length-`n` row vector to every row of an `[m, n]` matrix.
///
/// # Panics
///
/// Panics if `bias` is not rank 1 of length `a.cols()`.
pub fn add_row_broadcast(a: &Tensor, bias: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(
        bias.shape(),
        &[n],
        "bias must be rank-1 of length {n}, got {:?}",
        bias.shape()
    );
    let mut out = a.data().to_vec();
    let b = bias.data();
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] += b[j];
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("broadcast output shape")
}

/// Column sums of a rank-2 tensor: `[m, n] -> [n]`.
pub fn sum_rows(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += v;
        }
    }
    Tensor::from_vec(out, &[n]).expect("sum_rows output shape")
}

/// Multiplies each row `i` of `a` by `scalars[i]`.
///
/// # Panics
///
/// Panics if `scalars.len() != a.rows()`.
pub fn scale_rows(a: &Tensor, scalars: &[f32]) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(scalars.len(), m, "one scalar per row required");
    let mut out = a.data().to_vec();
    for i in 0..m {
        for v in &mut out[i * n..(i + 1) * n] {
            *v *= scalars[i];
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("scale_rows output shape")
}

/// Numerically-stable row-wise log-softmax.
pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = a.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
        let log_z = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for (o, &v) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
            *o = v - log_z;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("log_softmax output shape")
}

/// Row-wise softmax.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    map(&log_softmax_rows(a), f32::exp)
}

/// Vertical concatenation of matrices sharing a column count.
///
/// # Panics
///
/// Panics if `parts` is empty or the column counts disagree.
pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_rows requires at least one part");
    let n = parts[0].cols();
    let mut data = Vec::new();
    let mut rows = 0;
    for p in parts {
        assert_eq!(p.cols(), n, "concat_rows column mismatch");
        data.extend_from_slice(p.data());
        rows += p.rows();
    }
    Tensor::from_vec(data, &[rows, n]).expect("concat output shape")
}

/// Horizontal concatenation of matrices sharing a row count.
///
/// # Panics
///
/// Panics if `parts` is empty or the row counts disagree.
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols requires at least one part");
    let m = parts[0].rows();
    let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut data = vec![0.0f32; m * total_cols];
    let mut offset = 0;
    for p in parts {
        assert_eq!(p.rows(), m, "concat_cols row mismatch");
        let c = p.cols();
        for i in 0..m {
            data[i * total_cols + offset..i * total_cols + offset + c].copy_from_slice(p.row(i));
        }
        offset += c;
    }
    Tensor::from_vec(data, &[m, total_cols]).expect("concat output shape")
}

/// Extracts columns `[start, start+len)` of a matrix.
///
/// # Panics
///
/// Panics if the column range is out of bounds.
pub fn slice_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    assert!(start + len <= n, "column slice {start}..{} > {n}", start + len);
    let mut data = vec![0.0f32; m * len];
    for i in 0..m {
        data[i * len..(i + 1) * len].copy_from_slice(&a.row(i)[start..start + len]);
    }
    Tensor::from_vec(data, &[m, len]).expect("slice output shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = t(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 4]);
        assert_eq!(c.row(2), &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 0.0, 1.0], &[2, 3]);
        let atb = matmul_at_b(&a, &b);
        assert!(atb.approx_eq(&matmul(&a.transpose(), &b), 1e-6));
        let abt = matmul_a_bt(&a, &b);
        assert!(abt.approx_eq(&matmul(&a, &b.transpose()), 1e-6));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Large enough to trigger the threaded path.
        let m = 257;
        let k = 130;
        let n = 129;
        let a = Tensor::from_vec((0..m * k).map(|i| (i % 7) as f32 - 3.0).collect(), &[m, k]).unwrap();
        let b = Tensor::from_vec((0..k * n).map(|i| (i % 5) as f32 - 2.0).collect(), &[k, n]).unwrap();
        let big = matmul(&a, &b);
        // Serial reference via the transposed kernel identity.
        let serial = matmul_at_b(&a.transpose(), &b);
        assert!(big.approx_eq(&serial, 1e-3));
    }

    /// A deterministic, mildly sparse matrix large enough to cross
    /// `PAR_FLOP_THRESHOLD` when multiplied.
    fn big(rows: usize, cols: usize, salt: u32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                if v.is_multiple_of(5) {
                    0.0
                } else {
                    (v % 17) as f32 / 4.0 - 2.0
                }
            })
            .collect();
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn matmul_at_b_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 1);
        let b = big(257, 129, 2);
        assert!(a.rows() * a.cols() * b.cols() >= super::PAR_FLOP_THRESHOLD);
        let serial = matmul_at_b_with_threads(&a, &b, 1);
        for threads in [2usize, 3, 8] {
            let par = matmul_at_b_with_threads(&a, &b, threads);
            assert_eq!(bits(&serial), bits(&par), "threads={threads}");
        }
        assert!(serial.approx_eq(&matmul(&a.transpose(), &b), 1e-3));
    }

    #[test]
    fn matmul_a_bt_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 3);
        let b = big(129, 130, 4);
        assert!(a.rows() * a.cols() * b.rows() >= super::PAR_FLOP_THRESHOLD);
        let serial = matmul_a_bt_with_threads(&a, &b, 1);
        for threads in [2usize, 3, 8] {
            let par = matmul_a_bt_with_threads(&a, &b, threads);
            assert_eq!(bits(&serial), bits(&par), "threads={threads}");
        }
        assert!(serial.approx_eq(&matmul(&a, &b.transpose()), 1e-3));
    }

    #[test]
    fn matmul_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 5);
        let b = big(130, 129, 6);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                bits(&serial),
                bits(&matmul_with_threads(&a, &b, threads)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let c = add_row_broadcast(&a, &b);
        assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(sum_rows(&a).data(), &[4.0, 6.0]);
    }

    #[test]
    fn log_softmax_rows_is_normalized() {
        let a = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let ls = log_softmax_rows(&a);
        for i in 0..2 {
            let z: f32 = ls.row(i).iter().map(|&v| v.exp()).sum();
            // f32 resolution near 1000 limits accuracy on the huge-logit row.
            assert!((z - 1.0).abs() < 1e-3, "row {i} sums to {z}");
        }
        // Huge logits do not produce NaN.
        assert!(ls.all_finite());
    }

    #[test]
    fn concat_and_slice() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let v = concat_rows(&[&a, &b]);
        assert_eq!(v.shape(), &[2, 2]);
        let h = concat_cols(&[&a, &b]);
        assert_eq!(h.shape(), &[1, 4]);
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
        let s = slice_cols(&h, 1, 2);
        assert_eq!(s.data(), &[2.0, 3.0]);
    }

    #[test]
    fn scale_rows_multiplies_each_row() {
        let a = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let s = scale_rows(&a, &[2.0, 0.5]);
        assert_eq!(s.data(), &[2.0, 2.0, 1.0, 1.0]);
    }
}

//! Non-differentiable dense kernels.
//!
//! These free functions implement the raw math used both directly (e.g. by
//! optimizers and inference paths) and by the autograd [`crate::Graph`] ops.
//! Every kernel comes in two flavours: an allocating form returning a fresh
//! [`Tensor`], and an `_into` form writing into a caller-provided slice so
//! the hot path can reuse pooled buffers (see [`crate::BufferPool`]). Both
//! flavours run the identical inner loops, so their results are bit
//! identical. Shape validation is by `assert!` with descriptive messages
//! since a shape error is always a programming bug.

use crate::backend::Backend;
use crate::Tensor;

/// Elements-per-thread threshold above which matmul parallelizes.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// Output-row count per register tile in the simd matmul blocks.
const MR: usize = 6;
/// Output-column count per register tile in the simd matmul blocks
/// (256-bit lanes: two ymm registers per row).
const NR: usize = 16;
/// Wider column tile for the AVX-512 path (two zmm registers per row).
const NR512: usize = 32;

fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Row-major ikj loop order: streams through `b` rows, vectorizes well.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Register-tiled `out += a @ b` with the **same per-element accumulation
/// order** as [`matmul_block`]: for each output element, `p` ascends and a
/// zero `a[i][p]` is skipped exactly like the scalar loop, so the result is
/// bit-identical. The speedup comes from holding an `MR`×`NR` output tile
/// in registers across the whole `p` loop (the scalar path reloads and
/// restores the output row on every `p`), reusing each `b` row for `MR`
/// output rows, and — where the CPU supports it — compiling the tile with
/// AVX2 enabled (rustc never contracts `a*b + c` into a fused
/// multiply-add, so wider lanes change throughput, not rounding).
fn matmul_block_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: identical safe tile code; the feature check above
            // guarantees the instructions are supported.
            unsafe { matmul_block_simd_avx512(a, b, out, m, k, n) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { matmul_block_simd_avx2(a, b, out, m, k, n) };
            return;
        }
    }
    matmul_block_simd_inner::<NR>(a, b, out, m, k, n);
}

/// [`matmul_block_simd_inner`] compiled with AVX-512 codegen enabled and a
/// double-width column tile (`NR512`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn matmul_block_simd_avx512(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_block_simd_inner::<NR512>(a, b, out, m, k, n);
}

/// [`matmul_block_simd_inner`] compiled with AVX2 codegen enabled so the
/// auto-vectorizer emits 256-bit lanes for the tile loops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn matmul_block_simd_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_block_simd_inner::<NR>(a, b, out, m, k, n);
}

#[inline(always)]
fn matmul_block_simd_inner<const NRT: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let mut i = 0;
    while i < m {
        let ir = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jr = NRT.min(n - j);
            if ir == MR && jr == NRT {
                mm_tile_full::<NRT>(a, b, out, i, j, k, n);
            } else {
                mm_tile_partial::<NRT>(a, b, out, i, j, k, n, ir, jr);
            }
            j += jr;
        }
        i += ir;
    }
}

/// Full `MR`×`NR` tile of the simd matmul: constant loop bounds so the
/// accumulators live in vector registers. `inline(always)` so the body
/// inherits the caller's enabled target features (AVX2 wrapper).
#[inline(always)]
fn mm_tile_full<const NRT: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NRT]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + NRT]);
    }
    // Row slices of exact length `k` so `arow[p]` with `p in 0..k` needs no
    // bounds check inside the hot loop.
    let mut arows: [&[f32]; MR] = [&[]; MR];
    for (r, arow) in arows.iter_mut().enumerate() {
        *arow = &a[(i + r) * k..(i + r) * k + k];
    }
    for p in 0..k {
        let brow: &[f32; NRT] = b[p * n + j..p * n + j + NRT].try_into().expect("full tile cols");
        for (accr, arow) in acc.iter_mut().zip(arows.iter()) {
            let av = arow[p];
            if av != 0.0 {
                for (o, &bv) in accr.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + NRT].copy_from_slice(accr);
    }
}

/// Edge tile of the simd matmul (fewer than `MR` rows and/or `NRT` cols).
#[allow(clippy::too_many_arguments)] // mirrors the full-tile kernel signature
#[inline(always)]
fn mm_tile_partial<const NRT: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    n: usize,
    ir: usize,
    jr: usize,
) {
    let mut acc = [[0.0f32; NRT]; MR];
    for (r, accr) in acc.iter_mut().enumerate().take(ir) {
        accr[..jr].copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + jr]);
    }
    for p in 0..k {
        let brow = &b[p * n + j..p * n + j + jr];
        for (r, accr) in acc.iter_mut().enumerate().take(ir) {
            let av = a[(i + r) * k + p];
            if av != 0.0 {
                for (o, &bv) in accr[..jr].iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(ir) {
        out[(i + r) * n + j..(i + r) * n + j + jr].copy_from_slice(&accr[..jr]);
    }
}

/// Matrix product `a @ b` for rank-2 tensors.
///
/// Parallelizes over row blocks for large inputs, using
/// [`betty_runtime::configured_threads`] workers.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or either input is not rank 2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul`] with an explicit worker count.
///
/// Each worker owns a contiguous block of output rows and runs the same
/// inner loop as the serial path, so the result is bit-identical for every
/// `threads` value (`1` = no spawns at all).
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, n) = (a.rows(), b.cols());
    let mut out = vec![0.0f32; m * n];
    matmul_into_with_threads(a, b, &mut out, threads);
    Tensor::from_vec(out, &[m, n]).expect("matmul output shape")
}

/// [`matmul`] writing into `out`, which must be zero-filled `[m*n]` (the
/// kernel accumulates).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `out.len() != m*n`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    matmul_into_with_threads(a, b, out, betty_runtime::configured_threads());
}

/// [`matmul_into`] with an explicit worker count; bit-identical for every
/// `threads` value.
pub fn matmul_into_with_threads(a: &Tensor, b: &Tensor, out: &mut [f32], threads: usize) {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.len(), m * n, "matmul output length mismatch");
    if out.is_empty() {
        return; // m == 0 or n == 0: nothing to accumulate into
    }
    let block = match Backend::current() {
        Backend::Scalar => matmul_block,
        Backend::Simd => matmul_block_simd,
    };
    let flops = m * k * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && m > 1 {
        let chunk = m.div_ceil(threads);
        let adata = a.data();
        let bdata = b.data();
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let rows = out_chunk.len() / n;
                let a_chunk = &adata[t * chunk * k..t * chunk * k + rows * k];
                scope.spawn(move || {
                    block(a_chunk, bdata, out_chunk, rows, k, n);
                });
            }
        });
    } else {
        block(a.data(), b.data(), out, m, k, n);
    }
}

/// Accumulates `aᵀ @ b` into output rows `i_range`.
///
/// The `r` (shared outer dimension) loop stays outermost and ascending, so
/// each output element sees additions in exactly the serial order no matter
/// how the `i` range is sharded.
fn matmul_at_b_block(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    for r in 0..m {
        let arow = &a[r * ka..(r + 1) * ka];
        let brow = &b[r * n..(r + 1) * n];
        for (ii, o_chunk) in out.chunks_mut(n).enumerate().take(i_range.len()) {
            let av = arow[i_range.start + ii];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in o_chunk.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// [`matmul_at_b_block`] for the simd backend: the loop structure (and
/// therefore every accumulation order and zero-skip decision) is identical
/// to the scalar block — the win comes purely from compiling the inner row
/// update with AVX2 enabled, which doubles the autovectorized lane width.
/// Tiling experiments lost here: the scalar structure already streams `b`
/// and the output linearly, and `r`-ascending order per element forbids
/// the transformations that would beat it.
fn matmul_at_b_block_simd(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: identical safe code; the feature check guarantees
            // the instructions are supported.
            unsafe { matmul_at_b_block_avx512(a, b, out, m, ka, n, i_range) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { matmul_at_b_block_avx2(a, b, out, m, ka, n, i_range) };
            return;
        }
    }
    matmul_at_b_block(a, b, out, m, ka, n, i_range);
}

/// [`matmul_at_b_block`] compiled with AVX-512 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn matmul_at_b_block_avx512(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    matmul_at_b_block_body(a, b, out, m, ka, n, i_range);
}

/// [`matmul_at_b_block`] compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn matmul_at_b_block_avx2(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    matmul_at_b_block_body(a, b, out, m, ka, n, i_range);
}

/// Shared loop body for the scalar and feature-gated aᵀb blocks; inlined
/// into its wrappers so it inherits their enabled lane width.
#[inline(always)]
fn matmul_at_b_block_body(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    ka: usize,
    n: usize,
    i_range: std::ops::Range<usize>,
) {
    for r in 0..m {
        let arow = &a[r * ka..(r + 1) * ka];
        let brow = &b[r * n..(r + 1) * n];
        for (ii, o_chunk) in out.chunks_mut(n).enumerate().take(i_range.len()) {
            let av = arow[i_range.start + ii];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in o_chunk.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `aᵀ @ b` without materializing the transpose.
///
/// Parallelizes over blocks of output rows (columns of `a`) for large
/// inputs, same FLOP threshold as [`matmul`].
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul_at_b`] with an explicit worker count; bit-identical for every
/// `threads` value.
pub fn matmul_at_b_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (ka, n) = (a.cols(), b.cols());
    let mut out = vec![0.0f32; ka * n];
    matmul_at_b_into_with_threads(a, b, &mut out, threads);
    Tensor::from_vec(out, &[ka, n]).expect("matmul_at_b output shape")
}

/// [`matmul_at_b`] writing into `out`, which must be zero-filled
/// `[a.cols()*b.cols()]` (the kernel accumulates).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()` or `out` has the wrong length.
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    matmul_at_b_into_with_threads(a, b, out, betty_runtime::configured_threads());
}

/// [`matmul_at_b_into`] with an explicit worker count; bit-identical for
/// every `threads` value.
pub fn matmul_at_b_into_with_threads(a: &Tensor, b: &Tensor, out: &mut [f32], threads: usize) {
    let (m, ka) = (a.rows(), a.cols());
    let (m2, n) = (b.rows(), b.cols());
    assert_eq!(m, m2, "matmul_at_b outer dimension mismatch: {m} vs {m2}");
    assert_eq!(out.len(), ka * n, "matmul_at_b output length mismatch");
    if out.is_empty() {
        return; // ka == 0 or n == 0: nothing to accumulate into
    }
    let adata = a.data();
    let bdata = b.data();
    let block = match Backend::current() {
        Backend::Scalar => matmul_at_b_block,
        Backend::Simd => matmul_at_b_block_simd,
    };
    let flops = m * ka * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && ka > 1 {
        let chunk = ka.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                let cols = out_chunk.len() / n;
                scope.spawn(move || {
                    block(adata, bdata, out_chunk, m, ka, n, t * chunk..t * chunk + cols);
                });
            }
        });
    } else {
        block(adata, bdata, out, m, ka, n, 0..ka);
    }
}

/// Computes output rows `[i0, i0 + rows)` of `a @ bᵀ`; rows are fully
/// independent, so sharding cannot change any result bit.
fn matmul_a_bt_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, i0: usize) {
    for (ii, orow) in out.chunks_mut(n).enumerate() {
        let i = i0 + ii;
        let arow = &a[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Row/column count per dot-product tile in [`matmul_a_bt_block_simd`].
const BTR: usize = 4;

/// Register-tiled version of [`matmul_a_bt_block`]. Each output element is
/// still the plain `k`-ascending dot product the scalar loop computes (no
/// reassociation, no zero-skip — exactly the scalar semantics), but a
/// `BTR`×`BTR` tile runs 16 independent accumulation chains at once, so
/// the floating-point latency chain that serializes the scalar loop
/// overlaps 16 ways.
fn matmul_a_bt_block_simd(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, i0: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: identical safe code; the feature check guarantees
            // the instructions are supported.
            unsafe { matmul_a_bt_block_simd_avx512(a, b, out, k, n, i0) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { matmul_a_bt_block_simd_avx2(a, b, out, k, n, i0) };
            return;
        }
    }
    matmul_a_bt_block_simd_inner(a, b, out, k, n, i0);
}

/// [`matmul_a_bt_block_simd_inner`] compiled with AVX-512 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn matmul_a_bt_block_simd_avx512(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, i0: usize) {
    matmul_a_bt_block_simd_inner(a, b, out, k, n, i0);
}

/// [`matmul_a_bt_block_simd_inner`] compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn matmul_a_bt_block_simd_avx2(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, i0: usize) {
    matmul_a_bt_block_simd_inner(a, b, out, k, n, i0);
}

#[inline(always)]
fn matmul_a_bt_block_simd_inner(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    i0: usize,
) {
    if n == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / n;
    let mut ii = 0;
    while ii < rows {
        let ir = BTR.min(rows - ii);
        let mut j = 0;
        while j < n {
            let jr = BTR.min(n - j);
            // Row slices of exact length `k`: `arows[r][kk]` with
            // `kk in 0..k` compiles without bounds checks, leaving 16
            // independent mul-add chains per `kk` step.
            let mut arows: [&[f32]; BTR] = [&[]; BTR];
            for (r, arow) in arows.iter_mut().enumerate().take(ir) {
                *arow = &a[(i0 + ii + r) * k..(i0 + ii + r) * k + k];
            }
            let mut brows: [&[f32]; BTR] = [&[]; BTR];
            for (c, brow) in brows.iter_mut().enumerate().take(jr) {
                *brow = &b[(j + c) * k..(j + c) * k + k];
            }
            let mut acc = [[0.0f32; BTR]; BTR];
            if ir == BTR && jr == BTR {
                for kk in 0..k {
                    for (accr, arow) in acc.iter_mut().zip(arows.iter()) {
                        let av = arow[kk];
                        for (o, brow) in accr.iter_mut().zip(brows.iter()) {
                            *o += av * brow[kk];
                        }
                    }
                }
            } else {
                for kk in 0..k {
                    for (accr, arow) in acc.iter_mut().zip(arows.iter()).take(ir) {
                        let av = arow[kk];
                        for (o, brow) in accr.iter_mut().zip(brows.iter()).take(jr) {
                            *o += av * brow[kk];
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(ir) {
                out[(ii + r) * n + j..(ii + r) * n + j + jr].copy_from_slice(&accr[..jr]);
            }
            j += jr;
        }
        ii += ir;
    }
}

/// `a @ bᵀ` without materializing the transpose.
///
/// Parallelizes over blocks of output rows for large inputs, same FLOP
/// threshold as [`matmul`].
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_with_threads(a, b, betty_runtime::configured_threads())
}

/// [`matmul_a_bt`] with an explicit worker count; bit-identical for every
/// `threads` value.
pub fn matmul_a_bt_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, n) = (a.rows(), b.rows());
    let mut out = vec![0.0f32; m * n];
    matmul_a_bt_into_with_threads(a, b, &mut out, threads);
    Tensor::from_vec(out, &[m, n]).expect("matmul_a_bt output shape")
}

/// [`matmul_a_bt`] writing into `out` of length `a.rows()*b.rows()`. The
/// kernel overwrites every element, so `out` may hold arbitrary data.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()` or `out` has the wrong length.
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    matmul_a_bt_into_with_threads(a, b, out, betty_runtime::configured_threads());
}

/// [`matmul_a_bt_into`] with an explicit worker count; bit-identical for
/// every `threads` value.
pub fn matmul_a_bt_into_with_threads(a: &Tensor, b: &Tensor, out: &mut [f32], threads: usize) {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_a_bt inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.len(), m * n, "matmul_a_bt output length mismatch");
    if out.is_empty() {
        return; // m == 0 or n == 0: nothing to overwrite
    }
    let adata = a.data();
    let bdata = b.data();
    let block = match Backend::current() {
        Backend::Scalar => matmul_a_bt_block,
        Backend::Simd => matmul_a_bt_block_simd,
    };
    let flops = m * k * n;
    if flops >= PAR_FLOP_THRESHOLD && threads > 1 && m > 1 {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                scope.spawn(move || {
                    block(adata, bdata, out_chunk, k, n, t * chunk);
                });
            }
        });
    } else {
        block(adata, bdata, out, k, n, 0);
    }
}

/// Elementwise binary map.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn zip_map(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(data, a.shape()).expect("zip_map output shape")
}

/// [`zip_map`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if shapes differ or `out.len() != a.len()`.
pub fn zip_map_into(a: &Tensor, b: &Tensor, out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
    assert_eq!(out.len(), a.len(), "zip_map output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
}

/// Elementwise unary map.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = a.data().iter().map(|&x| f(x)).collect();
    Tensor::from_vec(data, a.shape()).expect("map output shape")
}

/// [`map`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `out.len() != a.len()`.
pub fn map_into(a: &Tensor, out: &mut [f32], f: impl Fn(f32) -> f32) {
    assert_eq!(out.len(), a.len(), "map output length mismatch");
    for (o, &x) in out.iter_mut().zip(a.data()) {
        *o = f(x);
    }
}

/// Elementwise sum.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x + y)
}

/// Elementwise difference.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) product.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x * y)
}

/// Scalar multiple.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    map(a, |x| x * s)
}

/// Adds a length-`n` row vector to every row of an `[m, n]` matrix.
///
/// # Panics
///
/// Panics if `bias` is not rank 1 of length `a.cols()`.
pub fn add_row_broadcast(a: &Tensor, bias: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; m * n];
    add_row_broadcast_into(a, bias, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("broadcast output shape")
}

/// [`add_row_broadcast`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `bias` is not rank 1 of length `a.cols()` or `out` has the
/// wrong length.
pub fn add_row_broadcast_into(a: &Tensor, bias: &Tensor, out: &mut [f32]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(
        bias.shape(),
        &[n],
        "bias must be rank-1 of length {n}, got {:?}",
        bias.shape()
    );
    assert_eq!(out.len(), m * n, "broadcast output length mismatch");
    out.copy_from_slice(a.data());
    let b = bias.data();
    for orow in out.chunks_mut(n) {
        for (o, &bv) in orow.iter_mut().zip(b) {
            *o += bv;
        }
    }
}

/// Column sums of a rank-2 tensor: `[m, n] -> [n]`.
pub fn sum_rows(a: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; a.cols()];
    sum_rows_into(a, &mut out);
    Tensor::from_vec(out, &[a.cols()]).expect("sum_rows output shape")
}

/// [`sum_rows`] writing into `out` (zeroed by the kernel first, so `out`
/// may hold arbitrary data).
///
/// # Panics
///
/// Panics if `out.len() != a.cols()`.
pub fn sum_rows_into(a: &Tensor, out: &mut [f32]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(out.len(), n, "sum_rows output length mismatch");
    out.fill(0.0);
    for i in 0..m {
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += v;
        }
    }
}

/// Multiplies each row `i` of `a` by `scalars[i]`.
///
/// # Panics
///
/// Panics if `scalars.len() != a.rows()`.
pub fn scale_rows(a: &Tensor, scalars: &[f32]) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; m * n];
    scale_rows_into(a, scalars, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("scale_rows output shape")
}

/// [`scale_rows`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `scalars.len() != a.rows()` or `out` has the wrong length.
pub fn scale_rows_into(a: &Tensor, scalars: &[f32], out: &mut [f32]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(scalars.len(), m, "one scalar per row required");
    assert_eq!(out.len(), m * n, "scale_rows output length mismatch");
    for ((orow, arow), &s) in out.chunks_mut(n).zip(a.data().chunks(n)).zip(scalars) {
        for (o, &v) in orow.iter_mut().zip(arow) {
            *o = v * s;
        }
    }
}

/// Numerically-stable row-wise log-softmax.
pub fn log_softmax_rows(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; m * n];
    log_softmax_rows_into(a, &mut out);
    Tensor::from_vec(out, &[m, n]).expect("log_softmax output shape")
}

/// [`log_softmax_rows`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `out.len() != a.len()`.
pub fn log_softmax_rows_into(a: &Tensor, out: &mut [f32]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(out.len(), m * n, "log_softmax output length mismatch");
    for i in 0..m {
        let row = a.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
        let log_z = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for (o, &v) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
            *o = v - log_z;
        }
    }
}

/// Row-wise softmax.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    map(&log_softmax_rows(a), f32::exp)
}

/// Vertical concatenation of matrices sharing a column count.
///
/// # Panics
///
/// Panics if `parts` is empty or the column counts disagree.
pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_rows requires at least one part");
    let n = parts[0].cols();
    let rows: usize = parts.iter().map(|p| p.rows()).sum();
    let mut data = vec![0.0f32; rows * n];
    concat_rows_into(parts, &mut data);
    Tensor::from_vec(data, &[rows, n]).expect("concat output shape")
}

/// [`concat_rows`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `parts` is empty, column counts disagree, or `out` has the
/// wrong length.
pub fn concat_rows_into(parts: &[&Tensor], out: &mut [f32]) {
    assert!(!parts.is_empty(), "concat_rows requires at least one part");
    let n = parts[0].cols();
    let total: usize = parts.iter().map(|p| p.len()).sum();
    assert_eq!(out.len(), total, "concat_rows output length mismatch");
    let mut offset = 0;
    for p in parts {
        assert_eq!(p.cols(), n, "concat_rows column mismatch");
        out[offset..offset + p.len()].copy_from_slice(p.data());
        offset += p.len();
    }
}

/// Horizontal concatenation of matrices sharing a row count.
///
/// # Panics
///
/// Panics if `parts` is empty or the row counts disagree.
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols requires at least one part");
    let m = parts[0].rows();
    let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut data = vec![0.0f32; m * total_cols];
    concat_cols_into(parts, &mut data);
    Tensor::from_vec(data, &[m, total_cols]).expect("concat output shape")
}

/// [`concat_cols`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if `parts` is empty, row counts disagree, or `out` has the wrong
/// length.
pub fn concat_cols_into(parts: &[&Tensor], out: &mut [f32]) {
    assert!(!parts.is_empty(), "concat_cols requires at least one part");
    let m = parts[0].rows();
    let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
    assert_eq!(out.len(), m * total_cols, "concat_cols output length mismatch");
    let mut offset = 0;
    for p in parts {
        assert_eq!(p.rows(), m, "concat_cols row mismatch");
        let c = p.cols();
        for i in 0..m {
            out[i * total_cols + offset..i * total_cols + offset + c].copy_from_slice(p.row(i));
        }
        offset += c;
    }
}

/// Extracts columns `[start, start+len)` of a matrix.
///
/// # Panics
///
/// Panics if the column range is out of bounds.
pub fn slice_cols(a: &Tensor, start: usize, len: usize) -> Tensor {
    let m = a.rows();
    let mut data = vec![0.0f32; m * len];
    slice_cols_into(a, start, len, &mut data);
    Tensor::from_vec(data, &[m, len]).expect("slice output shape")
}

/// [`slice_cols`] writing into `out` (fully overwritten).
///
/// # Panics
///
/// Panics if the column range is out of bounds or `out` has the wrong
/// length.
pub fn slice_cols_into(a: &Tensor, start: usize, len: usize, out: &mut [f32]) {
    let (m, n) = (a.rows(), a.cols());
    assert!(start + len <= n, "column slice {start}..{} > {n}", start + len);
    assert_eq!(out.len(), m * len, "slice output length mismatch");
    for i in 0..m {
        out[i * len..(i + 1) * len].copy_from_slice(&a.row(i)[start..start + len]);
    }
}

/// One Adam update's coefficients: the hyper-parameters plus the step's
/// precomputed bias corrections `1 - βᵗ` (computed once per step, outside
/// the per-element loop).
#[derive(Debug, Clone, Copy)]
pub struct AdamCoeffs {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator stabilizer ε.
    pub eps: f32,
    /// `1 - β₁ᵗ` for the current step `t`.
    pub bias1: f32,
    /// `1 - β₂ᵗ` for the current step `t`.
    pub bias2: f32,
}

/// One elementwise Adam update over a parameter slab:
/// `m ← β₁m + (1-β₁)g`, `v ← β₂v + (1-β₂)g²`,
/// `value -= lr·(m/bias1) / (√(v/bias2) + ε)`.
///
/// Every element is independent and every f32 operation (including the
/// hardware-rounded `sqrt` and divide) is identically rounded at any lane
/// width, so the backends are bit-identical by construction; the simd path
/// only widens codegen (AVX-512/AVX2 `vsqrtps`/`vdivps` retire 16/8 lanes
/// where the baseline retires 4).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn adam_step(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], c: AdamCoeffs) {
    assert_eq!(value.len(), grad.len(), "adam_step grad length mismatch");
    assert_eq!(value.len(), m.len(), "adam_step m length mismatch");
    assert_eq!(value.len(), v.len(), "adam_step v length mismatch");
    match Backend::current() {
        Backend::Scalar => adam_step_inner(value, grad, m, v, c),
        Backend::Simd => adam_step_simd(value, grad, m, v, c),
    }
}

fn adam_step_simd(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], c: AdamCoeffs) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: identical safe loop; the feature check above
            // guarantees the instructions are supported.
            unsafe { adam_step_avx512(value, grad, m, v, c) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { adam_step_avx2(value, grad, m, v, c) };
            return;
        }
    }
    adam_step_inner(value, grad, m, v, c);
}

/// [`adam_step_inner`] compiled with AVX-512 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn adam_step_avx512(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], c: AdamCoeffs) {
    adam_step_inner(value, grad, m, v, c);
}

/// [`adam_step_inner`] compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn adam_step_avx2(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], c: AdamCoeffs) {
    adam_step_inner(value, grad, m, v, c);
}

#[inline(always)]
fn adam_step_inner(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], c: AdamCoeffs) {
    for (((val, &g), mi), vi) in value
        .iter_mut()
        .zip(grad)
        .zip(m.iter_mut())
        .zip(v.iter_mut())
    {
        *mi = c.beta1 * *mi + (1.0 - c.beta1) * g;
        *vi = c.beta2 * *vi + (1.0 - c.beta2) * g * g;
        let m_hat = *mi / c.bias1;
        let v_hat = *vi / c.bias2;
        *val -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::with_backend;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    /// The simd tiles preserve the scalar per-element accumulation order
    /// (including the zero-skip semantics of each kernel), so every f32
    /// result bit must match across backends — for edge shapes, partial
    /// tiles, and every thread count.
    #[test]
    fn simd_matmuls_bit_identical_to_scalar_across_shapes_and_threads() {
        let shapes = [
            (1usize, 1usize, 1usize),
            (1, 7, 5),      // single row
            (4, 16, 16),    // exact full tiles
            (5, 3, 17),     // partial tiles both dims
            (257, 130, 129) // crosses PAR_FLOP_THRESHOLD
        ];
        for (m, k, n) in shapes {
            let a = big(m, k, 41);
            let b = big(k, n, 42);
            let bt = big(n, k, 43);
            for threads in [1usize, 4] {
                let (s1, s2, s3) = with_backend(Backend::Scalar, || {
                    (
                        matmul_with_threads(&a, &b, threads),
                        matmul_at_b_with_threads(&a, &big(m, n, 44), threads),
                        matmul_a_bt_with_threads(&a, &bt, threads),
                    )
                });
                let (v1, v2, v3) = with_backend(Backend::Simd, || {
                    (
                        matmul_with_threads(&a, &b, threads),
                        matmul_at_b_with_threads(&a, &big(m, n, 44), threads),
                        matmul_a_bt_with_threads(&a, &bt, threads),
                    )
                });
                assert_eq!(bits(&s1), bits(&v1), "matmul {m}x{k}x{n} threads={threads}");
                assert_eq!(bits(&s2), bits(&v2), "at_b {m}x{k}x{n} threads={threads}");
                assert_eq!(bits(&s3), bits(&v3), "a_bt {m}x{k}x{n} threads={threads}");
            }
        }
    }

    /// Degenerate shapes: an empty inner dimension leaves accumulating
    /// kernels at zero and makes every a_bt dot product 0.0.
    #[test]
    fn simd_matmuls_handle_k_zero() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 5]);
        let bt = Tensor::zeros(&[5, 0]);
        for backend in [Backend::Scalar, Backend::Simd] {
            with_backend(backend, || {
                assert_eq!(matmul(&a, &b).data(), &[0.0f32; 15], "{backend}");
                assert_eq!(matmul_a_bt(&a, &bt).data(), &[0.0f32; 15], "{backend}");
                let atb = matmul_at_b(&Tensor::zeros(&[0, 3]), &Tensor::zeros(&[0, 5]));
                assert_eq!(atb.data(), &[0.0f32; 15], "{backend}");
            });
        }
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = t(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[3, 4]);
        assert_eq!(c.row(2), &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 0.0, 1.0], &[2, 3]);
        let atb = matmul_at_b(&a, &b);
        assert!(atb.approx_eq(&matmul(&a.transpose(), &b), 1e-6));
        let abt = matmul_a_bt(&a, &b);
        assert!(abt.approx_eq(&matmul(&a, &b.transpose()), 1e-6));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Large enough to trigger the threaded path.
        let m = 257;
        let k = 130;
        let n = 129;
        let a = Tensor::from_vec((0..m * k).map(|i| (i % 7) as f32 - 3.0).collect(), &[m, k]).unwrap();
        let b = Tensor::from_vec((0..k * n).map(|i| (i % 5) as f32 - 2.0).collect(), &[k, n]).unwrap();
        let big = matmul(&a, &b);
        // Serial reference via the transposed kernel identity.
        let serial = matmul_at_b(&a.transpose(), &b);
        assert!(big.approx_eq(&serial, 1e-3));
    }

    /// A deterministic, mildly sparse matrix large enough to cross
    /// `PAR_FLOP_THRESHOLD` when multiplied.
    fn big(rows: usize, cols: usize, salt: u32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                if v.is_multiple_of(5) {
                    0.0
                } else {
                    (v % 17) as f32 / 4.0 - 2.0
                }
            })
            .collect();
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn matmul_at_b_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 1);
        let b = big(257, 129, 2);
        assert!(a.rows() * a.cols() * b.cols() >= super::PAR_FLOP_THRESHOLD);
        let serial = matmul_at_b_with_threads(&a, &b, 1);
        for threads in [2usize, 3, 8] {
            let par = matmul_at_b_with_threads(&a, &b, threads);
            assert_eq!(bits(&serial), bits(&par), "threads={threads}");
        }
        assert!(serial.approx_eq(&matmul(&a.transpose(), &b), 1e-3));
    }

    #[test]
    fn matmul_a_bt_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 3);
        let b = big(129, 130, 4);
        assert!(a.rows() * a.cols() * b.rows() >= super::PAR_FLOP_THRESHOLD);
        let serial = matmul_a_bt_with_threads(&a, &b, 1);
        for threads in [2usize, 3, 8] {
            let par = matmul_a_bt_with_threads(&a, &b, threads);
            assert_eq!(bits(&serial), bits(&par), "threads={threads}");
        }
        assert!(serial.approx_eq(&matmul(&a, &b.transpose()), 1e-3));
    }

    #[test]
    fn matmul_parallel_bit_identical_to_serial() {
        let a = big(257, 130, 5);
        let b = big(130, 129, 6);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                bits(&serial),
                bits(&matmul_with_threads(&a, &b, threads)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let c = add_row_broadcast(&a, &b);
        assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(sum_rows(&a).data(), &[4.0, 6.0]);
    }

    #[test]
    fn log_softmax_rows_is_normalized() {
        let a = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let ls = log_softmax_rows(&a);
        for i in 0..2 {
            let z: f32 = ls.row(i).iter().map(|&v| v.exp()).sum();
            // f32 resolution near 1000 limits accuracy on the huge-logit row.
            assert!((z - 1.0).abs() < 1e-3, "row {i} sums to {z}");
        }
        // Huge logits do not produce NaN.
        assert!(ls.all_finite());
    }

    #[test]
    fn concat_and_slice() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let v = concat_rows(&[&a, &b]);
        assert_eq!(v.shape(), &[2, 2]);
        let h = concat_cols(&[&a, &b]);
        assert_eq!(h.shape(), &[1, 4]);
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
        let s = slice_cols(&h, 1, 2);
        assert_eq!(s.data(), &[2.0, 3.0]);
    }

    #[test]
    fn scale_rows_multiplies_each_row() {
        let a = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let s = scale_rows(&a, &[2.0, 0.5]);
        assert_eq!(s.data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    // ---- bitwise regressions: block-copy kernels vs. the per-element
    // index loops they replaced ----

    #[test]
    fn row_copy_kernels_bitwise_match_index_loop_reference() {
        let a = big(13, 7, 11);
        let b = big(9, 7, 12);
        let c = big(13, 5, 13);

        // concat_rows reference: element-by-element.
        let fast = concat_rows(&[&a, &b]);
        let mut reference = vec![0.0f32; fast.len()];
        for (r, v) in reference.iter_mut().enumerate() {
            let (i, j) = (r / 7, r % 7);
            *v = if i < 13 { a.at2(i, j) } else { b.at2(i - 13, j) };
        }
        assert_eq!(bits(&fast), reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // concat_cols reference.
        let fast = concat_cols(&[&a, &c]);
        let mut reference = vec![0.0f32; fast.len()];
        for i in 0..13 {
            for j in 0..12 {
                reference[i * 12 + j] = if j < 7 { a.at2(i, j) } else { c.at2(i, j - 7) };
            }
        }
        assert_eq!(bits(&fast), reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        // slice_cols reference.
        let fast = slice_cols(&a, 2, 4);
        let mut reference = vec![0.0f32; 13 * 4];
        for i in 0..13 {
            for j in 0..4 {
                reference[i * 4 + j] = a.at2(i, 2 + j);
            }
        }
        assert_eq!(bits(&fast), reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_and_scale_rows_bitwise_match_index_loop_reference() {
        let a = big(17, 9, 21);
        let bias = Tensor::from_vec((0..9).map(|i| i as f32 * 0.37 - 1.1).collect(), &[9]).unwrap();
        let fast = add_row_broadcast(&a, &bias);
        let mut reference = a.data().to_vec();
        for i in 0..17 {
            for j in 0..9 {
                reference[i * 9 + j] += bias.at(j);
            }
        }
        assert_eq!(bits(&fast), reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

        let scalars: Vec<f32> = (0..17).map(|i| i as f32 * 0.21 - 1.6).collect();
        let fast = scale_rows(&a, &scalars);
        let mut reference = a.data().to_vec();
        for (i, &s) in scalars.iter().enumerate() {
            for v in &mut reference[i * 9..(i + 1) * 9] {
                *v *= s;
            }
        }
        assert_eq!(bits(&fast), reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn into_variants_bitwise_match_allocating_variants() {
        let a = big(19, 11, 31);
        let b = big(11, 13, 32);
        let mut out = vec![0.0f32; 19 * 13];
        matmul_into(&a, &b, &mut out);
        assert_eq!(
            bits(&matmul(&a, &b)),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let c = big(19, 13, 33);
        let mut out = vec![0.0f32; 11 * 13];
        matmul_at_b_into(&a, &c, &mut out);
        assert_eq!(
            bits(&matmul_at_b(&a, &c)),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // a_bt fully overwrites, so a dirty output buffer must not matter.
        let d = big(7, 11, 34);
        let mut out = vec![f32::NAN; 19 * 7];
        matmul_a_bt_into(&a, &d, &mut out);
        assert_eq!(
            bits(&matmul_a_bt(&a, &d)),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let mut out = vec![f32::NAN; a.len()];
        log_softmax_rows_into(&a, &mut out);
        assert_eq!(
            bits(&log_softmax_rows(&a)),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let mut out = vec![f32::NAN; 11];
        sum_rows_into(&a, &mut out);
        assert_eq!(
            bits(&sum_rows(&a)),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Adam updates are elementwise with identically-rounded ops at every
    /// lane width, so value/m/v must match scalar bit-for-bit — across
    /// lengths that exercise full vectors, tails, and the empty slab.
    #[test]
    fn adam_step_bit_identical_across_backends() {
        for len in [0usize, 1, 7, 16, 33, 1000] {
            let grad: Vec<f32> = (0..len).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
            let run = |backend| {
                with_backend(backend, || {
                    let mut value: Vec<f32> =
                        (0..len).map(|i| ((i as f32) * 0.11).cos()).collect();
                    let mut m = vec![0.01f32; len];
                    let mut v = vec![0.02f32; len];
                    for t in 1..=3i32 {
                        adam_step(
                            &mut value,
                            &grad,
                            &mut m,
                            &mut v,
                            AdamCoeffs {
                                lr: 0.01,
                                beta1: 0.9,
                                beta2: 0.999,
                                eps: 1e-8,
                                bias1: 1.0 - 0.9f32.powi(t),
                                bias2: 1.0 - 0.999f32.powi(t),
                            },
                        );
                    }
                    (bits2(&value), bits2(&m), bits2(&v))
                })
            };
            assert_eq!(
                run(crate::Backend::Scalar),
                run(crate::Backend::Simd),
                "adam_step diverged at len {len}"
            );
        }
    }

    fn bits2(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}

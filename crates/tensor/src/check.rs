//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and `betty-nn` to validate every
//! autograd op and layer against a numerical derivative.

use crate::{Graph, Tensor, VarId};

/// Result of a single gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (scaled by magnitude, floored at 1.0).
    pub max_rel_err: f32,
}

impl GradCheck {
    /// Whether the check passed at the given relative tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compares the analytic gradient of `f` at `input` against central finite
/// differences.
///
/// `f` must build a scalar-valued (`[1]`) computation from the leaf it is
/// given, on the graph it is given. The function is invoked `2 * input.len()
/// + 1` times.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar variable.
pub fn check_gradient(input: &Tensor, f: impl Fn(&mut Graph, VarId) -> VarId) -> GradCheck {
    const EPS: f32 = 1e-2;

    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let y = f(&mut g, x);
    assert_eq!(g.value(y).len(), 1, "gradient check target must be scalar");
    g.backward(y);
    let analytic = g
        .grad(x)
        .cloned()
        .unwrap_or_else(|| Tensor::zeros(input.shape()));

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..input.len() {
        let eval = |delta: f32| -> f32 {
            let mut bumped = input.clone();
            bumped.data_mut()[i] += delta;
            let mut g = Graph::new();
            let x = g.leaf(bumped);
            let y = f(&mut g, x);
            g.value(y).item()
        };
        let numeric = (eval(EPS) - eval(-EPS)) / (2.0 * EPS);
        let a = analytic.at(i);
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::randn;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn input(shape: &[usize], seed: u64) -> Tensor {
        randn(shape, &mut Pcg64Mcg::seed_from_u64(seed))
    }

    #[test]
    fn checks_matmul_chain() {
        let x = input(&[3, 4], 1);
        let res = check_gradient(&x, |g, x| {
            let w = g.leaf(input(&[4, 2], 2));
            let h = g.matmul(x, w);
            let h = g.tanh(h);
            g.sum(h)
        });
        assert!(res.passes(1e-2), "{res:?}");
    }

    #[test]
    fn checks_activations() {
        let x = input(&[2, 5], 3);
        for op in ["relu", "sigmoid", "tanh", "elu", "leaky"] {
            let res = check_gradient(&x, |g, x| {
                let a = match op {
                    "relu" => g.relu(x),
                    "sigmoid" => g.sigmoid(x),
                    "tanh" => g.tanh(x),
                    "elu" => g.elu(x, 1.0),
                    _ => g.leaky_relu(x, 0.2),
                };
                g.sum(a)
            });
            // ReLU-family kinks make FD noisy at exactly 0; inputs are
            // random so tolerate slightly more.
            assert!(res.passes(5e-2), "{op}: {res:?}");
        }
    }

    #[test]
    fn checks_segment_softmax_attention_pattern() {
        let scores = input(&[6, 2], 4);
        let seg = [0usize, 0, 1, 1, 1, 2];
        let res = check_gradient(&scores, |g, s| {
            let sm = g.segment_softmax(s, &seg, 3);
            let feats = g.leaf(input(&[6, 2], 5));
            let weighted = g.mul(sm, feats);
            let pooled = g.segment_sum(weighted, &seg, 3);
            g.sum(pooled)
        });
        assert!(res.passes(2e-2), "{res:?}");
    }

    #[test]
    fn checks_cross_entropy() {
        let logits = input(&[4, 3], 6);
        let res = check_gradient(&logits, |g, l| {
            g.cross_entropy(l, &[0, 2, 1, 1], crate::graph::Reduction::Mean)
        });
        assert!(res.passes(1e-2), "{res:?}");
    }

    #[test]
    fn checks_log_softmax_rows() {
        let x = input(&[3, 4], 11);
        let res = check_gradient(&x, |g, x| {
            let ls = g.log_softmax_rows(x);
            let t = g.tanh(ls);
            g.sum(t)
        });
        assert!(res.passes(2e-2), "{res:?}");
    }

    #[test]
    fn checks_segment_max() {
        let x = input(&[5, 3], 7);
        let res = check_gradient(&x, |g, x| {
            let m = g.segment_max(x, &[0, 1, 0, 1, 2], 3);
            g.sum(m)
        });
        assert!(res.passes(5e-2), "{res:?}");
    }
}

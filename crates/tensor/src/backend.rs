//! Runtime-dispatched compute backend selection.
//!
//! Betty ships two implementations of every hot kernel (dense matmuls,
//! the fused gather+segment reductions, the Adam update):
//!
//! * [`Backend::Scalar`] — the original straight-line loops. Kept forever
//!   as the reference: every other path is pinned against it bit-for-bit.
//! * [`Backend::Simd`] — register-tiled loops written so the compiler's
//!   auto-vectorizer emits wide lanes (the vendored toolchain has no
//!   `std::simd`), plus deterministic segment-ownership threading for the
//!   fused aggregation kernels. **Accumulation order per output element
//!   is identical to the scalar path**, so f32 results are bit-identical
//!   across backends — the speedup comes from register accumulation,
//!   operand reuse, and independent FMA chains, never from reassociation.
//!
//! Resolution order (highest priority first):
//!
//! 1. a process-wide override installed via [`set_backend_override`]
//!    (the CLI's `--backend` flag),
//! 2. the `BETTY_BACKEND` environment variable (`scalar` | `simd`),
//! 3. the default, [`Backend::Simd`].
//!
//! The resolved value is a pure function of those inputs — no CPU feature
//! sniffing — so a config is deterministic across machines.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation of the hot kernels to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Straight-line reference loops (the pre-backend behaviour).
    Scalar,
    /// Register-tiled, auto-vectorizer-friendly loops with the same
    /// per-element accumulation order as `Scalar`.
    #[default]
    Simd,
}

impl Backend {
    /// Stable lowercase name (CLI flag value, trace tag).
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }

    /// Parses a [`Backend::name`] string.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }

    /// Resolves the active backend (override > `BETTY_BACKEND` > simd).
    pub fn current() -> Backend {
        match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
            OVERRIDE_SCALAR => return Backend::Scalar,
            OVERRIDE_SIMD => return Backend::Simd,
            _ => {}
        }
        if let Ok(raw) = std::env::var("BETTY_BACKEND") {
            if let Some(b) = Backend::parse(raw.trim()) {
                return b;
            }
        }
        Backend::Simd
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_SCALAR: u8 = 1;
const OVERRIDE_SIMD: u8 = 2;

/// Process-wide backend override; `OVERRIDE_NONE` means "not set".
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_NONE);

/// Installs (or clears, with `None`) a process-wide backend override.
///
/// Takes precedence over `BETTY_BACKEND`. Used by the CLI's `--backend`
/// flag; tests use it to pin scalar-vs-simd comparisons.
pub fn set_backend_override(backend: Option<Backend>) {
    let tag = match backend {
        None => OVERRIDE_NONE,
        Some(Backend::Scalar) => OVERRIDE_SCALAR,
        Some(Backend::Simd) => OVERRIDE_SIMD,
    };
    BACKEND_OVERRIDE.store(tag, Ordering::Relaxed);
}

/// Runs `f` with the backend pinned to `backend`, restoring the previous
/// override afterwards (even on panic). Test helper: kernels consult
/// [`Backend::current`] at call time, so pinning must bracket the call.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            BACKEND_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(BACKEND_OVERRIDE.load(Ordering::Relaxed));
    set_backend_override(Some(backend));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip() {
        for b in [Backend::Scalar, Backend::Simd] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("avx512"), None);
    }

    #[test]
    fn override_beats_env_and_default_and_restores() {
        let before = Backend::current();
        let seen = with_backend(Backend::Scalar, Backend::current);
        assert_eq!(seen, Backend::Scalar);
        let seen = with_backend(Backend::Simd, Backend::current);
        assert_eq!(seen, Backend::Simd);
        assert_eq!(Backend::current(), before);
    }
}

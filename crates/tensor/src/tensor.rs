use std::fmt;
use std::sync::Arc;

use crate::{Result, TensorError};

/// A contiguous, row-major `f32` tensor.
///
/// The buffer is reference-counted; [`Tensor::clone`] is O(1) and mutation
/// goes through copy-on-write ([`Tensor::data_mut`]). Shapes are dynamic
/// (any rank ≥ 1), though the GNN stack predominantly uses rank-1 and rank-2
/// tensors.
///
/// Most arithmetic lives in free-standing kernel functions and in the
/// [`crate::Graph`] autograd API; `Tensor` itself only carries storage,
/// shape bookkeeping, and a handful of shape-preserving conveniences.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Shape,
}

/// Ranks stored without heap allocation. The GNN stack never exceeds
/// rank 2, so 4 gives generous headroom.
const MAX_INLINE_DIMS: usize = 4;

/// Tensor shape storage: small ranks live in a fixed inline array so
/// `Tensor::clone` — pervasive in autograd closure captures — performs no
/// heap allocation; higher ranks fall back to a heap vector.
#[derive(Clone)]
enum Shape {
    Inline {
        len: u8,
        dims: [usize; MAX_INLINE_DIMS],
    },
    Heap(Vec<usize>),
}

impl Shape {
    fn from_slice(dims: &[usize]) -> Self {
        if dims.len() <= MAX_INLINE_DIMS {
            let mut inline = [0usize; MAX_INLINE_DIMS];
            inline[..dims.len()].copy_from_slice(dims);
            Shape::Inline {
                len: dims.len() as u8,
                dims: inline,
            }
        } else {
            Shape::Heap(dims.to_vec())
        }
    }

    fn as_slice(&self) -> &[usize] {
        match self {
            Shape::Inline { len, dims } => &dims[..*len as usize],
            Shape::Heap(v) => v,
        }
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the product of `shape`, and [`TensorError::EmptyShape`] for an empty
    /// shape list.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            data: Arc::new(data),
            shape: Shape::from_slice(shape),
        })
    }

    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        let len = shape.iter().product();
        Self {
            data: Arc::new(vec![0.0; len]),
            shape: Shape::from_slice(shape),
        }
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        let len = shape.iter().product();
        Self {
            data: Arc::new(vec![value; len]),
            shape: Shape::from_slice(shape),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self {
            data: Arc::new(values.to_vec()),
            shape: Shape::from_slice(&[values.len()]),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.as_slice().len()
    }

    /// Number of rows, interpreting the tensor as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.ndim(), 2, "rows() requires a rank-2 tensor");
        self.shape.as_slice()[0]
    }

    /// Number of columns, interpreting the tensor as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() requires a rank-2 tensor");
        self.shape.as_slice()[1]
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer; clones the storage if shared.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Crate-internal: the backing buffer, but only if this tensor is its
    /// sole owner. Used by the buffer pool to decide whether a released
    /// tensor can be recycled without copy-on-write hazards.
    pub(crate) fn unique_buffer_mut(&mut self) -> Option<&mut Vec<f32>> {
        Arc::get_mut(&mut self.data)
    }

    /// Crate-internal: rewrite the shape in place without touching the
    /// data buffer (allocation-free for ranks up to [`MAX_INLINE_DIMS`]).
    /// The caller must keep `shape.iter().product()` equal to the buffer
    /// length.
    pub(crate) fn set_shape_in_place(&mut self, shape: &[usize]) {
        debug_assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "in-place reshape must preserve element count"
        );
        self.shape = Shape::from_slice(shape);
    }

    /// Size of the tensor contents in bytes (excluding metadata).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let expected: usize = shape.iter().product();
        if expected != self.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: self.len(),
            });
        }
        Ok(Self {
            data: Arc::clone(&self.data),
            shape: Shape::from_slice(shape),
        })
    }

    /// Borrow a row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        let cols = self.cols();
        assert!(row < self.rows(), "row {row} out of bounds");
        &self.data[row * cols..(row + 1) * cols]
    }

    /// Scalar value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not have exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    /// Element access by flat index.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, idx: usize) -> f32 {
        self.data[idx]
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or indices are out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols();
        assert!(r < self.rows() && c < cols, "index ({r},{c}) out of bounds");
        self.data[r * cols + c]
    }

    /// Transpose of a rank-2 tensor (materialized).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Self {
            data: Arc::new(out),
            shape: Shape::from_slice(&[c, r]),
        }
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Maximum absolute element; 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Whether all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True when `self` and `other` have identical shape and all elements
    /// differ by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// In-place elementwise addition of another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        let dst = self.data_mut();
        for (d, s) in dst.iter_mut().zip(other.data.iter()) {
            *d += s;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale_assign(&mut self, factor: f32) {
        for d in self.data_mut() {
            *d *= factor;
        }
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        for d in self.data_mut() {
            *d = value;
        }
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        assert!(c > 0, "argmax_rows requires at least one column");
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl Default for Tensor {
    /// A single-element zero tensor.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0, 2.0], &[3]),
            Err(TensorError::ShapeMismatch { expected: 3, actual: 2 })
        ));
        assert!(matches!(
            Tensor::from_vec(vec![], &[]),
            Err(TensorError::EmptyShape)
        ));
    }

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2], 3.5);
        assert_eq!(f.data(), &[3.5, 3.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at2(0, 1), 4.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn copy_on_write() {
        let a = Tensor::zeros(&[3]);
        let mut b = a.clone();
        b.data_mut()[0] = 7.0;
        assert_eq!(a.at(0), 0.0);
        assert_eq!(b.at(0), 7.0);
    }

    #[test]
    fn row_and_at2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 1]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[1.5, 2.5]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[3.0, 5.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -4.0, 3.0]);
        assert_eq!(t.sum_all(), 0.0);
        assert_eq!(t.mean_all(), 0.0);
        assert_eq!(t.max_abs(), 4.0);
        assert!((t.norm() - (26.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0 + 1e-6, 2.0 - 1e-6]);
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        let c = Tensor::from_slice(&[1.0]);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{t:?}").is_empty());
    }

    #[test]
    fn size_bytes_counts_f32() {
        let t = Tensor::zeros(&[10, 3]);
        assert_eq!(t.size_bytes(), 120);
    }
}

//! Storage dtypes for mixed-precision training.
//!
//! Betty's compute is f32 everywhere — gradients, optimizer moments, and
//! every accumulation. What `DType` controls is *storage*: node features
//! (both `FeatureStore` backends, including the on-disk shard payloads)
//! and forward activations can be held at bf16/f16 width, halving the
//! bytes the Eq. 5 planner has to budget for. A stored value is encoded
//! with round-to-nearest-even and decoded back to f32 before any
//! arithmetic touches it, so a run at a given dtype is deterministic:
//! quantization is a pure function of the value, never of timing or
//! thread count.

use std::fmt;

/// Width of a stored tensor value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE float — the reference storage (no quantization).
    #[default]
    F32,
    /// bfloat16: f32's exponent range, 8-bit significand. Preferred for
    /// training because overflow behaviour matches f32.
    Bf16,
    /// IEEE binary16: 5-bit exponent, 11-bit significand. More mantissa
    /// than bf16 but overflows past ~65504.
    F16,
}

impl DType {
    /// Bytes one stored value occupies at this width.
    pub const fn bytes_per_value(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::Bf16 | DType::F16 => 2,
        }
    }

    /// Stable lowercase name (CLI flag value, trace tag, shard header).
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
            DType::F16 => "f16",
        }
    }

    /// Parses a [`DType::name`] string.
    pub fn parse(s: &str) -> Option<DType> {
        match s {
            "f32" => Some(DType::F32),
            "bf16" => Some(DType::Bf16),
            "f16" => Some(DType::F16),
            _ => None,
        }
    }

    /// Stable numeric tag for on-disk headers.
    pub const fn tag(self) -> u32 {
        match self {
            DType::F32 => 0,
            DType::Bf16 => 1,
            DType::F16 => 2,
        }
    }

    /// Inverse of [`DType::tag`].
    pub fn from_tag(tag: u32) -> Option<DType> {
        match tag {
            0 => Some(DType::F32),
            1 => Some(DType::Bf16),
            2 => Some(DType::F16),
            _ => None,
        }
    }

    /// The nearest value representable at this width (round-to-nearest-
    /// even). `F32` is the identity.
    #[inline]
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            DType::F32 => v,
            DType::Bf16 => bf16_bits_to_f32(f32_to_bf16_bits(v)),
            DType::F16 => f16_bits_to_f32(f32_to_f16_bits(v)),
        }
    }

    /// Quantizes every element in place. `F32` touches nothing.
    pub fn quantize_slice(self, data: &mut [f32]) {
        match self {
            DType::F32 => {}
            DType::Bf16 => {
                for v in data {
                    *v = bf16_bits_to_f32(f32_to_bf16_bits(*v));
                }
            }
            DType::F16 => {
                for v in data {
                    *v = f16_bits_to_f32(f32_to_f16_bits(*v));
                }
            }
        }
    }

    /// Encodes one value into 16 storage bits.
    ///
    /// # Panics
    ///
    /// Panics for `F32`, which has no 16-bit encoding.
    #[inline]
    pub fn encode16(self, v: f32) -> u16 {
        match self {
            DType::F32 => panic!("f32 has no 16-bit encoding"),
            DType::Bf16 => f32_to_bf16_bits(v),
            DType::F16 => f32_to_f16_bits(v),
        }
    }

    /// Decodes 16 storage bits back to f32.
    ///
    /// # Panics
    ///
    /// Panics for `F32`, which has no 16-bit encoding.
    #[inline]
    pub fn decode16(self, bits: u16) -> f32 {
        match self {
            DType::F32 => panic!("f32 has no 16-bit encoding"),
            DType::Bf16 => bf16_bits_to_f32(bits),
            DType::F16 => f16_bits_to_f32(bits),
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// f32 → bf16 with round-to-nearest-even. NaNs keep their sign and top
/// payload bits (with the quiet bit forced if truncation would otherwise
/// produce an infinity pattern).
#[inline]
pub fn f32_to_bf16_bits(v: f32) -> u16 {
    let x = v.to_bits();
    if v.is_nan() {
        let h = (x >> 16) as u16;
        return if h & 0x007f == 0 { h | 0x0040 } else { h };
    }
    let round = (x >> 16) & 1;
    (x.wrapping_add(0x7fff + round) >> 16) as u16
}

/// bf16 → f32 (exact: bf16 values are a subset of f32).
#[inline]
pub fn bf16_bits_to_f32(bits: u16) -> f32 {
    f32::from_bits(u32::from(bits) << 16)
}

/// f32 → IEEE binary16 with round-to-nearest-even, including subnormal
/// and overflow-to-infinity handling.
#[inline]
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let x = v.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xff) as i32;
    let man = x & 0x007f_ffff;
    if exp == 0xff {
        if man == 0 {
            return sign | 0x7c00; // ±inf
        }
        let m = ((man >> 13) & 0x3ff) as u16;
        return sign | 0x7c00 | if m == 0 { 0x0200 } else { m };
    }
    let e = exp - 127;
    if e >= 16 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e >= -14 {
        // Normal half: drop 13 mantissa bits with RNE; a mantissa carry
        // correctly bumps the exponent (up to infinity).
        let mant = man >> 13;
        let rest = man & 0x1fff;
        let mut h = u32::from(sign) | (((e + 15) as u32) << 10) | mant;
        if rest > 0x1000 || (rest == 0x1000 && (mant & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    if e < -25 {
        return sign; // below half the smallest subnormal → ±0
    }
    // Subnormal half: shift the implicit-1 mantissa into place with RNE.
    let full = man | 0x0080_0000;
    let shift = (13 + (-14 - e)) as u32;
    let mant = full >> shift;
    let rest = full & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let mut h = u32::from(sign) | mant;
    if rest > half || (rest == half && (mant & 1) == 1) {
        h += 1;
    }
    h as u16
}

/// IEEE binary16 → f32 (exact: every half value is representable).
#[inline]
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let man = u32::from(bits & 0x03ff);
    match exp {
        0 => {
            if man == 0 {
                f32::from_bits(sign)
            } else {
                // Subnormal: value = man × 2⁻²⁴, exact in f32.
                const TWO_NEG_24: f32 = 5.960_464_5e-8;
                let v = man as f32 * TWO_NEG_24;
                if sign != 0 {
                    -v
                } else {
                    v
                }
            }
        }
        0x1f => f32::from_bits(sign | 0x7f80_0000 | (man << 13)),
        _ => f32::from_bits(sign | ((u32::from(exp) + 112) << 23) | (man << 13)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_names_tags_round_trip() {
        for d in [DType::F32, DType::Bf16, DType::F16] {
            assert_eq!(DType::parse(d.name()), Some(d));
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::F32.bytes_per_value(), 4);
        assert_eq!(DType::Bf16.bytes_per_value(), 2);
        assert_eq!(DType::F16.bytes_per_value(), 2);
        assert_eq!(DType::parse("f64"), None);
        assert_eq!(DType::from_tag(9), None);
    }

    /// Every one of the 65536 bf16 bit patterns must survive
    /// decode → encode unchanged: stored values are exactly
    /// representable, so re-encoding them is the identity.
    #[test]
    fn bf16_round_trip_is_exact_on_all_patterns() {
        for bits in 0..=u16::MAX {
            let v = bf16_bits_to_f32(bits);
            assert_eq!(
                f32_to_bf16_bits(v),
                bits,
                "bf16 pattern {bits:#06x} (value {v}) did not round-trip"
            );
        }
    }

    /// Same exhaustive round-trip for binary16.
    #[test]
    fn f16_round_trip_is_exact_on_all_patterns() {
        for bits in 0..=u16::MAX {
            let v = f16_bits_to_f32(bits);
            assert_eq!(
                f32_to_f16_bits(v),
                bits,
                "f16 pattern {bits:#06x} (value {v}) did not round-trip"
            );
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // largest normal half
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // rounds to +inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        // Smallest subnormal and half of it (ties-to-even → 0).
        assert_eq!(f16_bits_to_f32(0x0001), 5.960_464_5e-8);
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001);
        assert_eq!(f32_to_f16_bits(2.980_232_2e-8), 0x0000);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_known_values() {
        assert_eq!(f32_to_bf16_bits(0.0), 0x0000);
        assert_eq!(f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(f32_to_bf16_bits(f32::INFINITY), 0x7f80);
        // 1.0039062 is exactly between 1.0 and the next bf16 (1.0078125):
        // ties to even → 1.0.
        assert_eq!(f32_to_bf16_bits(1.003_906_2), 0x3f80);
        // Just above the tie rounds up.
        assert_eq!(f32_to_bf16_bits(1.004), 0x3f81);
        // Huge finite f32 overflows to bf16 infinity via the carry.
        assert_eq!(f32_to_bf16_bits(f32::MAX), 0x7f80);
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_is_idempotent() {
        let values = [0.0f32, -1.5, 3.375, 1e-3, 1e4, -2.7e-5, 123.456];
        for d in [DType::F32, DType::Bf16, DType::F16] {
            for &v in &values {
                let q = d.quantize(v);
                assert_eq!(
                    q.to_bits(),
                    d.quantize(q).to_bits(),
                    "{d} quantize not idempotent at {v}"
                );
            }
        }
        let mut data = values.to_vec();
        DType::Bf16.quantize_slice(&mut data);
        for (q, &v) in data.iter().zip(&values) {
            assert_eq!(q.to_bits(), DType::Bf16.quantize(v).to_bits());
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        // bf16 keeps 8 significand bits → relative error ≤ 2⁻⁸; f16 keeps
        // 11 → ≤ 2⁻¹¹ (for values in normal range).
        let mut v = 0.001f32;
        while v < 1e4 {
            let b = DType::Bf16.quantize(v);
            assert!((b - v).abs() / v <= 1.0 / 256.0, "bf16 error at {v}: {b}");
            let h = DType::F16.quantize(v);
            assert!((h - v).abs() / v <= 1.0 / 2048.0, "f16 error at {v}: {h}");
            v *= 1.7;
        }
    }
}

use std::fmt;

/// Error type for fallible tensor construction and reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    ShapeMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A shape with a zero-length dimension list was provided where a
    /// non-scalar shape is required.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => write!(
                f,
                "shape requires {expected} elements but buffer has {actual}"
            ),
            TensorError::EmptyShape => write!(f, "shape must have at least one dimension"),
        }
    }
}

impl std::error::Error for TensorError {}

//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to its variables in execution
//! order (the *tape*). [`Graph::backward`] walks the tape in reverse and
//! accumulates gradients into every reachable leaf. Each op's adjoint is a
//! boxed closure capturing the (reference-counted, hence cheap) tensors it
//! needs.
//!
//! The engine is deliberately define-by-run: GNN forward passes are shaped by
//! the sampled graph structure, so a new tape per micro-batch is the natural
//! fit (and mirrors how PyTorch/DGL execute the original Betty).
//!
//! Unlike a naive tape, this one owns a [`BufferPool`]: forward values and
//! backward gradients are drawn from size-class free lists, and
//! [`Graph::reset`] drains the finished tape back into the pool instead of
//! freeing it. Micro-batched training replays near-identical shapes every
//! step, so after a warm-up step the tape is rebuilt with almost no heap
//! allocation. Pooled and unpooled execution run the same kernels on the
//! same bytes — every pooled buffer is fully written before it is read — so
//! results are bit-identical either way.

use crate::dtype::DType;
use crate::kernels;
use crate::pool::{BufferPool, PoolStats};
use crate::segment;
use crate::Tensor;

/// Handle to a variable stored on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

/// Parent list specialized for the common arities so recording an op does
/// not allocate a `Vec` per node.
enum Parents {
    None,
    One(VarId),
    Two(VarId, VarId),
    Many(Vec<VarId>),
}

impl Parents {
    fn from_slice(ids: &[VarId]) -> Self {
        match ids {
            [] => Parents::None,
            [a] => Parents::One(*a),
            [a, b] => Parents::Two(*a, *b),
            _ => Parents::Many(ids.to_vec()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Parents::None => 0,
            Parents::One(_) => 1,
            Parents::Two(..) => 2,
            Parents::Many(v) => v.len(),
        }
    }

    fn get(&self, i: usize) -> VarId {
        match (self, i) {
            (Parents::One(a), 0) => *a,
            (Parents::Two(a, _), 0) => *a,
            (Parents::Two(_, b), 1) => *b,
            (Parents::Many(v), _) => v[i],
            _ => panic!("parent index {i} out of range"),
        }
    }
}

/// Pointwise activation recorded by [`Op::Unary`]; `dfdx` computes the
/// derivative from the op's input `x` and output `y` (whichever is cheaper
/// for the particular function).
#[derive(Clone, Copy)]
enum UnaryKind {
    Relu,
    LeakyRelu(f32),
    Elu(f32),
    Sigmoid,
    Tanh,
}

impl UnaryKind {
    fn apply(self, x: f32) -> f32 {
        match self {
            UnaryKind::Relu => x.max(0.0),
            UnaryKind::LeakyRelu(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            UnaryKind::Elu(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * (x.exp() - 1.0)
                }
            }
            UnaryKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryKind::Tanh => x.tanh(),
        }
    }

    fn dfdx(self, x: f32, y: f32) -> f32 {
        match self {
            UnaryKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryKind::LeakyRelu(alpha) => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            UnaryKind::Elu(alpha) => {
                if x > 0.0 {
                    1.0
                } else {
                    y + alpha
                }
            }
            UnaryKind::Sigmoid => y * (1.0 - y),
            UnaryKind::Tanh => 1.0 - y * y,
        }
    }
}

/// The recorded operation of a non-leaf node.
///
/// Unlike a boxed closure, an `Op` is a plain enum: recording it performs no
/// heap allocation beyond its payload, and every payload that does allocate
/// (index lists, auxiliary tensors) is drawn from — and returned to — the
/// tape's [`BufferPool`] so steady-state steps rebuild the tape without
/// touching the allocator. Most adjoints need no payload at all: parent and
/// output values are read back from the tape during the backward sweep.
enum Op {
    Add,
    Sub,
    Mul,
    Scale(f32),
    Unary(UnaryKind),
    /// Payload: the dropout mask pre-scaled by `1/(1-p)`.
    DropoutMask(Tensor),
    Matmul,
    AddBias,
    ScaleRowsBy,
    MulScalarVar,
    ConcatCols,
    ConcatRows,
    SliceCols {
        start: usize,
        len: usize,
    },
    /// Prefix-rows view: the output is the first `rows()` rows of the parent.
    SliceRows,
    Sum,
    GatherRows(Vec<usize>),
    ScatterRows(Vec<usize>),
    SegmentSum(Vec<usize>),
    SegmentMean {
        ids: Vec<usize>,
        /// `[n_segments]`: `1 / max(count, 1)` per segment.
        inv: Tensor,
    },
    SegmentMax {
        /// Row index of each `(segment, column)` winner; `usize::MAX` marks
        /// an empty segment.
        argmax: Vec<usize>,
    },
    FusedSum {
        gather_ids: Vec<usize>,
        segment_ids: Vec<usize>,
    },
    FusedMean {
        gather_ids: Vec<usize>,
        segment_ids: Vec<usize>,
        /// `[n_segments]`: `1 / count` per segment (0 for empty segments).
        inv: Tensor,
    },
    FusedWeightedSum {
        gather_ids: Vec<usize>,
        segment_ids: Vec<usize>,
        /// `[num_edges]` per-edge weights.
        weights: Tensor,
    },
    SegmentSoftmax {
        ids: Vec<usize>,
        n_segments: usize,
    },
    LogSoftmaxRows,
    CrossEntropy {
        /// `[n, classes]` log-softmax of the logits, kept for the adjoint.
        log_probs: Tensor,
        targets: Vec<usize>,
        reduction: Reduction,
    },
}

impl Op {
    /// Returns the op's pooled payloads to `pool` when the tape resets.
    /// Payload tensors that still alias a node value are skipped by
    /// [`BufferPool::give`] and simply dropped.
    fn recycle_into(self, pool: &mut BufferPool) {
        match self {
            Op::DropoutMask(t) => pool.give(t),
            Op::GatherRows(idx) | Op::ScatterRows(idx) | Op::SegmentSum(idx) => {
                pool.give_indices(idx);
            }
            Op::SegmentMean { ids, inv } => {
                pool.give_indices(ids);
                pool.give(inv);
            }
            Op::SegmentMax { argmax } => pool.give_indices(argmax),
            Op::FusedSum {
                gather_ids,
                segment_ids,
            } => {
                pool.give_indices(gather_ids);
                pool.give_indices(segment_ids);
            }
            Op::FusedMean {
                gather_ids,
                segment_ids,
                inv,
            } => {
                pool.give_indices(gather_ids);
                pool.give_indices(segment_ids);
                pool.give(inv);
            }
            Op::FusedWeightedSum {
                gather_ids,
                segment_ids,
                weights,
            } => {
                pool.give_indices(gather_ids);
                pool.give_indices(segment_ids);
                pool.give(weights);
            }
            Op::SegmentSoftmax { ids, .. } => pool.give_indices(ids),
            Op::CrossEntropy {
                log_probs, targets, ..
            } => {
                pool.give(log_probs);
                pool.give_indices(targets);
            }
            _ => {}
        }
    }

    /// Adjoint: maps the output gradient `g` of node `i` to one gradient per
    /// parent (in parent order), pushed into `out`. Gradients are drawn from
    /// the pool so the backward sweep recycles them.
    fn backward(
        &self,
        nodes: &[Node],
        i: usize,
        g: &Tensor,
        pool: &mut BufferPool,
        out: &mut Vec<Tensor>,
    ) {
        let parent = |j: usize| &nodes[nodes[i].parents.get(j).0].value;
        let value = &nodes[i].value;
        match self {
            Op::Add => {
                out.push(pooled_copy(pool, g));
                out.push(pooled_copy(pool, g));
            }
            Op::Sub => {
                out.push(pooled_copy(pool, g));
                let mut db = pool.scratch(g.shape());
                kernels::map_into(g, db.data_mut(), |x| -x);
                out.push(db);
            }
            Op::Mul => {
                let (av, bv) = (parent(0), parent(1));
                let mut da = pool.scratch(g.shape());
                kernels::zip_map_into(g, bv, da.data_mut(), |x, y| x * y);
                out.push(da);
                let mut db = pool.scratch(g.shape());
                kernels::zip_map_into(g, av, db.data_mut(), |x, y| x * y);
                out.push(db);
            }
            Op::Scale(s) => {
                let s = *s;
                let mut da = pool.scratch(g.shape());
                kernels::map_into(g, da.data_mut(), |x| x * s);
                out.push(da);
            }
            Op::Unary(kind) => {
                let x = parent(0);
                let mut o = pooled_copy(pool, g);
                let od = o.data_mut();
                for ((ov, &xv), &yv) in od.iter_mut().zip(x.data()).zip(value.data()) {
                    *ov *= kind.dfdx(xv, yv);
                }
                out.push(o);
            }
            Op::DropoutMask(scaled_mask) => {
                let mut da = pool.scratch(g.shape());
                kernels::zip_map_into(g, scaled_mask, da.data_mut(), |x, y| x * y);
                out.push(da);
            }
            Op::Matmul => {
                let (av, bv) = (parent(0), parent(1));
                let mut da = pool.scratch(av.shape());
                kernels::matmul_a_bt_into(g, bv, da.data_mut());
                out.push(da);
                let mut db = pool.zeros(bv.shape());
                kernels::matmul_at_b_into(av, g, db.data_mut());
                out.push(db);
            }
            Op::AddBias => {
                out.push(pooled_copy(pool, g));
                let mut db = pool.scratch(&[g.cols()]);
                kernels::sum_rows_into(g, db.data_mut());
                out.push(db);
            }
            Op::ScaleRowsBy => {
                let (av, sv) = (parent(0), parent(1));
                let mut da = pool.scratch(g.shape());
                kernels::scale_rows_into(g, sv.data(), da.data_mut());
                out.push(da);
                let (rows, cols) = (av.rows(), av.cols());
                let mut ds = pool.scratch(&[rows, 1]);
                for (r, d) in ds.data_mut().iter_mut().enumerate() {
                    let grow = g.row(r);
                    let arow = av.row(r);
                    *d = (0..cols).map(|c| grow[c] * arow[c]).sum();
                }
                out.push(ds);
            }
            Op::MulScalarVar => {
                let (av, sv) = (parent(0), parent(1));
                let sval = sv.item();
                let mut da = pool.scratch(g.shape());
                kernels::map_into(g, da.data_mut(), |x| x * sval);
                out.push(da);
                let ds: f32 = g
                    .data()
                    .iter()
                    .zip(av.data())
                    .map(|(&x, &y)| x * y)
                    .sum();
                let mut dst = pool.scratch(&[1]);
                dst.data_mut()[0] = ds;
                out.push(dst);
            }
            Op::ConcatCols => {
                let mut offset = 0;
                for j in 0..nodes[i].parents.len() {
                    let w = parent(j).cols();
                    let mut part = pool.scratch(&[g.rows(), w]);
                    kernels::slice_cols_into(g, offset, w, part.data_mut());
                    out.push(part);
                    offset += w;
                }
            }
            Op::ConcatRows => {
                let cols = g.cols();
                let mut offset = 0;
                for j in 0..nodes[i].parents.len() {
                    let h = parent(j).rows();
                    let mut part = pool.scratch(&[h, cols]);
                    part.data_mut()
                        .copy_from_slice(&g.data()[offset * cols..(offset + h) * cols]);
                    out.push(part);
                    offset += h;
                }
            }
            Op::SliceCols { start, len } => {
                let (rows, cols) = (parent(0).rows(), parent(0).cols());
                let mut full = pool.zeros(&[rows, cols]);
                let fd = full.data_mut();
                for r in 0..rows {
                    fd[r * cols + start..r * cols + start + len].copy_from_slice(g.row(r));
                }
                out.push(full);
            }
            Op::SliceRows => {
                let (rows, cols) = (parent(0).rows(), parent(0).cols());
                let head = g.rows() * cols;
                let mut full = pool.zeros(&[rows, cols]);
                full.data_mut()[..head].copy_from_slice(g.data());
                out.push(full);
            }
            Op::Sum => {
                out.push(pool.full(parent(0).shape(), g.item()));
            }
            Op::GatherRows(idx) => {
                let src = parent(0);
                let mut o = pool.zeros(&[src.rows(), src.cols()]);
                segment::scatter_add_rows(&mut o, g, idx);
                out.push(o);
            }
            Op::ScatterRows(idx) => {
                let mut o = pool.scratch(&[idx.len(), g.cols()]);
                segment::gather_rows_into(g, idx, o.data_mut());
                out.push(o);
            }
            Op::SegmentSum(ids) => {
                let mut o = pool.scratch(&[ids.len(), g.cols()]);
                segment::gather_rows_into(g, ids, o.data_mut());
                out.push(o);
            }
            Op::SegmentMean { ids, inv } => {
                let cols = g.cols();
                let mut grad = pool.scratch(&[ids.len(), cols]);
                segment::gather_rows_into(g, ids, grad.data_mut());
                let gd = grad.data_mut();
                let inv = inv.data();
                for (r, &s) in ids.iter().enumerate() {
                    for v in &mut gd[r * cols..(r + 1) * cols] {
                        *v *= inv[s];
                    }
                }
                out.push(grad);
            }
            Op::SegmentMax { argmax } => {
                let src = parent(0);
                let (rows, cols) = (src.rows(), src.cols());
                let n_segments = g.rows();
                let mut o = pool.zeros(&[rows, cols]);
                let od = o.data_mut();
                for s in 0..n_segments {
                    for c in 0..cols {
                        let winner = argmax[s * cols + c];
                        if winner != usize::MAX {
                            od[winner * cols + c] += g.at2(s, c);
                        }
                    }
                }
                out.push(o);
            }
            Op::FusedSum {
                gather_ids,
                segment_ids,
            } => {
                let mut o = pool.zeros(&[parent(0).rows(), g.cols()]);
                segment::fused_gather_segment_sum_backward_into(
                    g,
                    gather_ids,
                    segment_ids,
                    None,
                    o.data_mut(),
                );
                out.push(o);
            }
            Op::FusedMean {
                gather_ids,
                segment_ids,
                inv,
            } => {
                let mut o = pool.zeros(&[parent(0).rows(), g.cols()]);
                segment::fused_gather_segment_sum_backward_into(
                    g,
                    gather_ids,
                    segment_ids,
                    Some(inv.data()),
                    o.data_mut(),
                );
                out.push(o);
            }
            Op::FusedWeightedSum {
                gather_ids,
                segment_ids,
                weights,
            } => {
                let mut o = pool.zeros(&[parent(0).rows(), g.cols()]);
                segment::fused_gather_segment_weighted_sum_backward_into(
                    g,
                    gather_ids,
                    segment_ids,
                    &weights.data()[..gather_ids.len()],
                    o.data_mut(),
                );
                out.push(o);
            }
            Op::SegmentSoftmax { ids, n_segments } => {
                // dX = y ⊙ (g − Σ_seg (g ⊙ y)), per column within a segment.
                let y = value;
                let cols = y.cols();
                let mut gy = pool.scratch(y.shape());
                kernels::zip_map_into(g, y, gy.data_mut(), |x, yv| x * yv);
                let mut sums = pool.zeros(&[*n_segments, cols]);
                segment::segment_sum_into(&gy, ids, sums.data_mut());
                let mut o = pooled_copy(pool, g);
                let od = o.data_mut();
                for (r, &s) in ids.iter().enumerate() {
                    for c in 0..cols {
                        od[r * cols + c] = y.at2(r, c) * (od[r * cols + c] - sums.at2(s, c));
                    }
                }
                pool.give(gy);
                pool.give(sums);
                out.push(o);
            }
            Op::LogSoftmaxRows => {
                let y = value;
                let (rows, cols) = (y.rows(), y.cols());
                let mut o = pooled_copy(pool, g);
                let od = o.data_mut();
                for r in 0..rows {
                    let row_sum: f32 = g.row(r).iter().sum();
                    for c in 0..cols {
                        od[r * cols + c] -= y.at2(r, c).exp() * row_sum;
                    }
                }
                out.push(o);
            }
            Op::CrossEntropy {
                log_probs,
                targets,
                reduction,
            } => {
                let (n, classes) = (log_probs.rows(), log_probs.cols());
                let upstream = g.item();
                let scale = match reduction {
                    Reduction::Mean => upstream / n.max(1) as f32,
                    Reduction::Sum => upstream,
                };
                let mut grad = pool.scratch(log_probs.shape());
                let gd = grad.data_mut();
                kernels::map_into(log_probs, gd, f32::exp);
                for (r, &t) in targets.iter().enumerate() {
                    gd[r * classes + t] -= 1.0;
                }
                for v in gd.iter_mut() {
                    *v *= scale;
                }
                out.push(grad);
            }
        }
    }
}

struct Node {
    value: Tensor,
    parents: Parents,
    /// `None` for leaves; otherwise the recorded operation.
    op: Option<Op>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.op.is_none() && matches!(self.parents, Parents::None)
    }
}

/// Loss reduction mode for [`Graph::cross_entropy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Average the per-example losses.
    #[default]
    Mean,
    /// Sum the per-example losses.
    Sum,
}

/// A dynamic computation tape backed by a [`BufferPool`].
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    pool: BufferPool,
    /// Reused per-node gradient staging for the backward sweep.
    backward_scratch: Vec<Tensor>,
    /// Incrementally maintained: bumped in `push`, zeroed in `reset`.
    activation_bytes: usize,
    /// Storage width simulated for non-leaf, non-scalar tape values. At
    /// bf16/f16, every such value is rounded onto the 16-bit grid as it is
    /// recorded (so numerics match a device that truly stores halves) and
    /// [`Graph::activation_bytes`] counts it at 2 bytes per element.
    /// Leaves (parameters, gathered inputs) and loss scalars stay f32.
    activation_dtype: DType,
}

/// Bytes a node's value would occupy on a device storing activations at
/// `dtype`. Leaves and scalars are always held at f32 width.
fn stored_activation_bytes(dtype: DType, is_leaf: bool, value: &Tensor) -> usize {
    if is_leaf || value.len() <= 1 {
        value.size_bytes()
    } else {
        value.len() * dtype.bytes_per_value()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("pool", &self.pool)
            .finish()
    }
}

/// Copies `g` into a pooled buffer. Used where an adjoint is the identity:
/// handing out an `Arc` clone instead would tie the gradient's storage to
/// the tape and defeat recycling.
fn pooled_copy(pool: &mut BufferPool, g: &Tensor) -> Tensor {
    let mut out = pool.scratch(g.shape());
    out.data_mut().copy_from_slice(g.data());
    out
}

impl Graph {
    /// Creates an empty tape with an enabled buffer pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes held by all tape values (forward activations).
    ///
    /// The device simulator uses this to account for activation memory.
    /// Maintained incrementally; debug builds re-derive it from a full scan
    /// to catch drift.
    pub fn activation_bytes(&self) -> usize {
        debug_assert_eq!(
            self.activation_bytes,
            self.nodes
                .iter()
                .map(|n| stored_activation_bytes(self.activation_dtype, n.is_leaf(), &n.value))
                .sum::<usize>(),
            "incremental activation byte counter drifted from full recount"
        );
        self.activation_bytes
    }

    /// Sets the storage width simulated for forward activations.
    ///
    /// Non-leaf, non-scalar values recorded after this call are rounded
    /// onto the dtype's grid (round-to-nearest-even) and accounted at its
    /// width; already-recorded values keep their bits but the byte counter
    /// is recomputed under the new width. Call this on a fresh (or reset)
    /// tape — typically once, when the trainer is built.
    pub fn set_activation_dtype(&mut self, dtype: DType) {
        self.activation_dtype = dtype;
        self.activation_bytes = self
            .nodes
            .iter()
            .map(|n| stored_activation_bytes(dtype, n.is_leaf(), &n.value))
            .sum();
    }

    /// The storage width simulated for forward activations.
    pub fn activation_dtype(&self) -> DType {
        self.activation_dtype
    }

    /// Clears the tape for reuse, retaining buffer capacity.
    ///
    /// Op payloads are dismantled first — auxiliary tensors they hold may
    /// alias node values, which can only be recycled once uniquely owned.
    /// Payload index lists, node values, and gradients then all drain into
    /// the pool, so rebuilding a same-shaped tape performs (almost) no
    /// allocation.
    pub fn reset(&mut self) {
        let Graph {
            nodes, grads, pool, ..
        } = self;
        for node in nodes.iter_mut() {
            if let Some(op) = node.op.take() {
                op.recycle_into(pool);
            }
        }
        for node in nodes.drain(..) {
            pool.give(node.value);
        }
        for g in grads.drain(..).flatten() {
            pool.give(g);
        }
        self.activation_bytes = 0;
    }

    /// Cumulative buffer-pool counters (hits, misses, bytes recycled).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Enables or disables buffer recycling (disabled pools are transparent:
    /// identical kernels and values, fresh allocations).
    pub fn set_pool_enabled(&mut self, enabled: bool) {
        self.pool.set_enabled(enabled);
    }

    /// Whether buffer recycling is on.
    pub fn pool_enabled(&self) -> bool {
        self.pool.enabled()
    }

    /// Takes a pooled buffer with *unspecified contents* for use outside the
    /// tape (e.g. staging gathered input features). The caller must
    /// overwrite every element; hand it back with [`Graph::recycle`].
    pub fn take_scratch(&mut self, shape: &[usize]) -> Tensor {
        self.pool.scratch(shape)
    }

    /// Returns a tensor to this tape's pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.give(t);
    }

    /// Takes an empty pooled index buffer (e.g. for staging gather indices
    /// or targets); hand it back with [`Graph::recycle_indices`].
    pub fn take_indices(&mut self) -> Vec<usize> {
        self.pool.take_indices()
    }

    /// Returns an index buffer to this tape's pool for reuse.
    pub fn recycle_indices(&mut self, v: Vec<usize>) {
        self.pool.give_indices(v);
    }

    fn push(&mut self, mut value: Tensor, parents: Parents, op: Option<Op>) -> VarId {
        let is_leaf = op.is_none() && matches!(parents, Parents::None);
        if self.activation_dtype != DType::F32 && !is_leaf && value.len() > 1 {
            self.activation_dtype.quantize_slice(value.data_mut());
        }
        self.activation_bytes += stored_activation_bytes(self.activation_dtype, is_leaf, &value);
        let id = VarId(self.nodes.len());
        self.nodes.push(Node { value, parents, op });
        id
    }

    /// Copies `ids` into a pooled index buffer (for op payloads that must
    /// outlive the caller's slice).
    fn pooled_indices(&mut self, ids: &[usize]) -> Vec<usize> {
        let mut v = self.pool.take_indices();
        v.extend_from_slice(ids);
        v
    }

    /// Registers a leaf variable (input or parameter).
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(value, Parents::None, None)
    }

    /// The forward value of a variable.
    pub fn value(&self, v: VarId) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a variable after [`Graph::backward`], if it was
    /// reached by the backward sweep.
    pub fn grad(&self, v: VarId) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ---- elementwise ----

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut value = pool.scratch(nodes[a.0].value.shape());
        kernels::zip_map_into(
            &nodes[a.0].value,
            &nodes[b.0].value,
            value.data_mut(),
            |x, y| x + y,
        );
        self.push(value, Parents::Two(a, b), Some(Op::Add))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut value = pool.scratch(nodes[a.0].value.shape());
        kernels::zip_map_into(
            &nodes[a.0].value,
            &nodes[b.0].value,
            value.data_mut(),
            |x, y| x - y,
        );
        self.push(value, Parents::Two(a, b), Some(Op::Sub))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut value = pool.scratch(nodes[a.0].value.shape());
        kernels::zip_map_into(
            &nodes[a.0].value,
            &nodes[b.0].value,
            value.data_mut(),
            |x, y| x * y,
        );
        self.push(value, Parents::Two(a, b), Some(Op::Mul))
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut value = pool.scratch(nodes[a.0].value.shape());
        kernels::map_into(&nodes[a.0].value, value.data_mut(), |x| x * s);
        self.push(value, Parents::One(a), Some(Op::Scale(s)))
    }

    // ---- activations ----

    fn unary(&mut self, a: VarId, kind: UnaryKind) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut y = pool.scratch(nodes[a.0].value.shape());
        kernels::map_into(&nodes[a.0].value, y.data_mut(), |x| kind.apply(x));
        self.push(y, Parents::One(a), Some(Op::Unary(kind)))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary(a, UnaryKind::Relu)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: VarId, alpha: f32) -> VarId {
        self.unary(a, UnaryKind::LeakyRelu(alpha))
    }

    /// Exponential linear unit with scale `alpha`.
    pub fn elu(&mut self, a: VarId, alpha: f32) -> VarId {
        self.unary(a, UnaryKind::Elu(alpha))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.unary(a, UnaryKind::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary(a, UnaryKind::Tanh)
    }

    /// Inverted-dropout with keep-probability `1 - p`, using the caller's
    /// pre-drawn `mask` of zeros/ones (so training remains deterministic
    /// under a seeded RNG).
    ///
    /// # Panics
    ///
    /// Panics if `mask` shape differs from `a` or `p >= 1.0`.
    pub fn dropout_with_mask(&mut self, a: VarId, mask: &Tensor, p: f32) -> VarId {
        assert!(p < 1.0, "dropout probability must be < 1.0");
        assert_eq!(mask.shape(), self.value(a).shape(), "mask shape mismatch");
        let scale = 1.0 / (1.0 - p);
        let Graph { nodes, pool, .. } = self;
        // Kept by the op payload and recycled at reset.
        let mut scaled_mask = pool.scratch(mask.shape());
        kernels::map_into(mask, scaled_mask.data_mut(), |x| x * scale);
        let mut value = pool.scratch(scaled_mask.shape());
        kernels::zip_map_into(&nodes[a.0].value, &scaled_mask, value.data_mut(), |x, y| {
            x * y
        });
        self.push(value, Parents::One(a), Some(Op::DropoutMask(scaled_mask)))
    }

    // ---- linear algebra ----

    /// Matrix product of rank-2 variables.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut value = pool.zeros(&[av.rows(), bv.cols()]);
        kernels::matmul_into(av, bv, value.data_mut());
        self.push(value, Parents::Two(a, b), Some(Op::Matmul))
    }

    /// Adds a rank-1 bias to every row of a rank-2 variable.
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let mut value = pool.scratch(nodes[a.0].value.shape());
        kernels::add_row_broadcast_into(
            &nodes[a.0].value,
            &nodes[bias.0].value,
            value.data_mut(),
        );
        self.push(value, Parents::Two(a, bias), Some(Op::AddBias))
    }

    /// Multiplies each row `r` of `[m, n]` variable `a` by the scalar in row
    /// `r` of `[m, 1]` variable `s` (column broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `[a.rows(), 1]`.
    pub fn scale_rows_by(&mut self, a: VarId, s: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let (av, sv) = (&nodes[a.0].value, &nodes[s.0].value);
        assert_eq!(
            sv.shape(),
            &[av.rows(), 1],
            "row scaler must be [rows, 1], got {:?}",
            sv.shape()
        );
        let mut value = pool.scratch(av.shape());
        kernels::scale_rows_into(av, sv.data(), value.data_mut());
        self.push(value, Parents::Two(a, s), Some(Op::ScaleRowsBy))
    }

    /// Multiplies every element of `a` by the single-element variable `s`
    /// (a *learnable* scalar, e.g. GIN's `1 + ε`).
    ///
    /// # Panics
    ///
    /// Panics if `s` does not hold exactly one element.
    pub fn mul_scalar_var(&mut self, a: VarId, s: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let (av, sv) = (&nodes[a.0].value, &nodes[s.0].value);
        assert_eq!(sv.len(), 1, "scalar variable must hold one element");
        let sval = sv.item();
        let mut value = pool.scratch(av.shape());
        kernels::map_into(av, value.data_mut(), |x| x * sval);
        self.push(value, Parents::Two(a, s), Some(Op::MulScalarVar))
    }

    // ---- shape ----

    /// Horizontal concatenation of rank-2 variables sharing a row count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts disagree.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let Graph { nodes, pool, .. } = self;
        let rows = nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|&p| nodes[p.0].value.cols()).sum();
        let mut value = pool.scratch(&[rows, total]);
        let vd = value.data_mut();
        let mut offset = 0;
        for &p in parts {
            let t = &nodes[p.0].value;
            let w = t.cols();
            assert_eq!(t.rows(), rows, "concat_cols row count mismatch");
            for r in 0..rows {
                vd[r * total + offset..r * total + offset + w].copy_from_slice(t.row(r));
            }
            offset += w;
        }
        self.push(value, Parents::from_slice(parts), Some(Op::ConcatCols))
    }

    /// Vertical concatenation of rank-2 variables sharing a column count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts disagree.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let Graph { nodes, pool, .. } = self;
        let cols = nodes[parts[0].0].value.cols();
        let total: usize = parts.iter().map(|&p| nodes[p.0].value.rows()).sum();
        let mut value = pool.scratch(&[total, cols]);
        let vd = value.data_mut();
        let mut offset = 0;
        for &p in parts {
            let t = &nodes[p.0].value;
            assert_eq!(t.cols(), cols, "concat_rows column count mismatch");
            let h = t.rows();
            vd[offset * cols..(offset + h) * cols].copy_from_slice(t.data());
            offset += h;
        }
        self.push(value, Parents::from_slice(parts), Some(Op::ConcatRows))
    }

    /// Extracts columns `[start, start+len)` of a rank-2 variable.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let av = &nodes[a.0].value;
        let rows = av.rows();
        let mut value = pool.scratch(&[rows, len]);
        kernels::slice_cols_into(av, start, len, value.data_mut());
        self.push(value, Parents::One(a), Some(Op::SliceCols { start, len }))
    }

    /// Takes the first `len` rows of a rank-2 variable (one contiguous
    /// copy — e.g. a block's destination self-features, which lead the
    /// source rows by construction).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the row count.
    pub fn slice_rows(&mut self, a: VarId, len: usize) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let av = &nodes[a.0].value;
        let cols = av.cols();
        assert!(len <= av.rows(), "slice_rows past the end");
        let mut value = pool.scratch(&[len, cols]);
        value.data_mut().copy_from_slice(&av.data()[..len * cols]);
        self.push(value, Parents::One(a), Some(Op::SliceRows))
    }

    // ---- reductions ----

    /// Sum of all elements as a `[1]` tensor.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let total = nodes[a.0].value.sum_all();
        let mut value = pool.scratch(&[1]);
        value.data_mut()[0] = total;
        self.push(value, Parents::One(a), Some(Op::Sum))
    }

    /// Mean of all elements as a `[1]` tensor.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let n = self.value(a).len() as f32;
        let s = self.sum(a);
        self.scale(s, 1.0 / n)
    }

    // ---- graph aggregation primitives ----

    /// Gathers rows of `src` at `indices` (edge-expansion of node features).
    pub fn gather_rows(&mut self, src: VarId, indices: &[usize]) -> VarId {
        let idx = self.pooled_indices(indices);
        let Graph { nodes, pool, .. } = self;
        let srcv = &nodes[src.0].value;
        let mut value = pool.scratch(&[idx.len(), srcv.cols()]);
        segment::gather_rows_into(srcv, &idx, value.data_mut());
        self.push(value, Parents::One(src), Some(Op::GatherRows(idx)))
    }

    /// Places row `r` of `values` into row `indices[r]` of a fresh
    /// `[n_rows, cols]` output (rows not referenced stay zero).
    ///
    /// # Panics
    ///
    /// Panics if `indices` contains duplicates (the op would otherwise drop
    /// gradient mass silently).
    pub fn scatter_rows(&mut self, values: VarId, indices: &[usize], n_rows: usize) -> VarId {
        let mut seen = vec![false; n_rows];
        for &i in indices {
            assert!(!seen[i], "scatter_rows requires unique indices, {i} repeats");
            seen[i] = true;
        }
        let idx = self.pooled_indices(indices);
        let Graph { nodes, pool, .. } = self;
        let cols = nodes[values.0].value.cols();
        let mut value = pool.zeros(&[n_rows, cols]);
        segment::scatter_rows_into(&nodes[values.0].value, &idx, value.data_mut());
        self.push(value, Parents::One(values), Some(Op::ScatterRows(idx)))
    }

    /// Per-segment sum over rows of `values` keyed by `segment_ids`.
    pub fn segment_sum(&mut self, values: VarId, segment_ids: &[usize], n_segments: usize) -> VarId {
        let ids = self.pooled_indices(segment_ids);
        let Graph { nodes, pool, .. } = self;
        let cols = nodes[values.0].value.cols();
        let mut value = pool.zeros(&[n_segments, cols]);
        segment::segment_sum_into(&nodes[values.0].value, &ids, value.data_mut());
        self.push(value, Parents::One(values), Some(Op::SegmentSum(ids)))
    }

    /// Per-segment mean over rows of `values` keyed by `segment_ids`.
    pub fn segment_mean(
        &mut self,
        values: VarId,
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let ids = self.pooled_indices(segment_ids);
        let mut counts = self.pool.take_indices();
        counts.resize(n_segments, 0);
        for &s in &ids {
            assert!(s < n_segments, "segment id {s} >= {n_segments}");
            counts[s] += 1;
        }
        let Graph { nodes, pool, .. } = self;
        let cols = nodes[values.0].value.cols();
        let mut value = pool.zeros(&[n_segments, cols]);
        segment::segment_sum_into(&nodes[values.0].value, &ids, value.data_mut());
        // One spare slot keeps the payload shape non-empty when there are
        // no segments; every element is written either way.
        let mut inv = pool.scratch(&[n_segments.max(1)]);
        let invd = inv.data_mut();
        invd[0] = 1.0;
        for (s, &cnt) in counts.iter().enumerate() {
            invd[s] = 1.0 / cnt.max(1) as f32;
        }
        let vd = value.data_mut();
        for (s, &cnt) in counts.iter().enumerate() {
            if cnt > 1 {
                let scale = 1.0 / cnt as f32;
                for v in &mut vd[s * cols..(s + 1) * cols] {
                    *v *= scale;
                }
            }
        }
        pool.give_indices(counts);
        self.push(
            value,
            Parents::One(values),
            Some(Op::SegmentMean { ids, inv }),
        )
    }

    /// Per-segment elementwise max over rows of `values`.
    pub fn segment_max(&mut self, values: VarId, segment_ids: &[usize], n_segments: usize) -> VarId {
        let mut argmax = self.pool.take_indices();
        let Graph { nodes, pool, .. } = self;
        let vv = &nodes[values.0].value;
        let cols = vv.cols();
        let mut value = pool.scratch(&[n_segments, cols]);
        segment::segment_max_into_reusing(vv, segment_ids, value.data_mut(), &mut argmax);
        self.push(
            value,
            Parents::One(values),
            Some(Op::SegmentMax { argmax }),
        )
    }

    /// Fused neighbor-sum: for each segment (destination), sums the source
    /// rows selected by `gather_ids` whose edge belongs to that segment —
    /// without materializing the `[E, D]` message tensor. This is the
    /// memory-efficient path GNN frameworks use for Sum/Mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the index slices disagree in length.
    pub fn fused_neighbor_sum(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let g_ids = self.pooled_indices(gather_ids);
        let s_ids = self.pooled_indices(segment_ids);
        let Graph { nodes, pool, .. } = self;
        let srcv = &nodes[src.0].value;
        let mut value = pool.zeros(&[n_segments, srcv.cols()]);
        segment::fused_gather_segment_sum_into(srcv, &g_ids, &s_ids, value.data_mut());
        self.push(
            value,
            Parents::One(src),
            Some(Op::FusedSum {
                gather_ids: g_ids,
                segment_ids: s_ids,
            }),
        )
    }

    /// Fused neighbor-mean: like [`Graph::fused_neighbor_sum`] but
    /// normalized by each segment's in-degree (empty segments stay zero).
    ///
    /// # Panics
    ///
    /// Panics if the index slices disagree in length.
    pub fn fused_neighbor_mean(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let g_ids = self.pooled_indices(gather_ids);
        let s_ids = self.pooled_indices(segment_ids);
        let mut counts = self.pool.take_indices();
        counts.resize(n_segments, 0);
        for &s in &s_ids {
            assert!(s < n_segments, "segment id {s} >= {n_segments}");
            counts[s] += 1;
        }
        let Graph { nodes, pool, .. } = self;
        // See `segment_mean` for the spare-slot convention.
        let mut inv = pool.scratch(&[n_segments.max(1)]);
        let invd = inv.data_mut();
        invd[0] = 0.0;
        for (s, &cnt) in counts.iter().enumerate() {
            invd[s] = if cnt == 0 { 0.0 } else { 1.0 / cnt as f32 };
        }
        pool.give_indices(counts);
        let srcv = &nodes[src.0].value;
        let cols = srcv.cols();
        let mut value = pool.zeros(&[n_segments, cols]);
        segment::fused_gather_segment_sum_into(srcv, &g_ids, &s_ids, value.data_mut());
        {
            let vdata = value.data_mut();
            for (s, &scale) in inv.data().iter().take(n_segments).enumerate() {
                for v in &mut vdata[s * cols..(s + 1) * cols] {
                    *v *= scale;
                }
            }
        }
        self.push(
            value,
            Parents::One(src),
            Some(Op::FusedMean {
                gather_ids: g_ids,
                segment_ids: s_ids,
                inv,
            }),
        )
    }

    /// Weighted fused neighbor-sum: like [`Graph::fused_neighbor_sum`] but
    /// each edge contributes `weights[e] · src[gather_ids[e]]` — the kernel
    /// behind degree-normalized aggregations (GCN).
    ///
    /// # Panics
    ///
    /// Panics if the index/weight slices disagree in length.
    pub fn fused_neighbor_weighted_sum(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        weights: &[f32],
        n_segments: usize,
    ) -> VarId {
        let g_ids = self.pooled_indices(gather_ids);
        let s_ids = self.pooled_indices(segment_ids);
        let Graph { nodes, pool, .. } = self;
        let mut ws = pool.scratch(&[weights.len().max(1)]);
        ws.data_mut()[0] = 0.0;
        ws.data_mut()[..weights.len()].copy_from_slice(weights);
        let srcv = &nodes[src.0].value;
        let cols = srcv.cols();
        let mut value = pool.zeros(&[n_segments, cols]);
        segment::fused_gather_segment_weighted_sum_into(
            srcv,
            &g_ids,
            &s_ids,
            &ws.data()[..weights.len()],
            value.data_mut(),
        );
        self.push(
            value,
            Parents::One(src),
            Some(Op::FusedWeightedSum {
                gather_ids: g_ids,
                segment_ids: s_ids,
                weights: ws,
            }),
        )
    }

    /// Softmax within each segment (column-wise), used for attention weights.
    pub fn segment_softmax(
        &mut self,
        values: VarId,
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let ids = self.pooled_indices(segment_ids);
        let Graph { nodes, pool, .. } = self;
        let vv = &nodes[values.0].value;
        let mut value = pool.scratch(vv.shape());
        segment::segment_softmax_into(vv, &ids, n_segments, value.data_mut());
        self.push(
            value,
            Parents::One(values),
            Some(Op::SegmentSoftmax { ids, n_segments }),
        )
    }

    /// Row-wise log-softmax (numerically stable).
    ///
    /// Backward: `dX = dY − softmax(X) · rowsum(dY)`.
    pub fn log_softmax_rows(&mut self, a: VarId) -> VarId {
        let Graph { nodes, pool, .. } = self;
        let av = &nodes[a.0].value;
        let mut value = pool.scratch(av.shape());
        kernels::log_softmax_rows_into(av, value.data_mut());
        self.push(value, Parents::One(a), Some(Op::LogSoftmaxRows))
    }

    // ---- losses ----

    /// Fused softmax cross-entropy against integer class targets.
    ///
    /// Returns a `[1]` loss. With [`Reduction::Mean`] the gradient is
    /// `(softmax - onehot) / N`; with [`Reduction::Sum`] it is unscaled —
    /// the form needed for exact micro-batch gradient accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of
    /// class range.
    pub fn cross_entropy(&mut self, logits: VarId, targets: &[usize], reduction: Reduction) -> VarId {
        let tg = self.pooled_indices(targets);
        let Graph { nodes, pool, .. } = self;
        let lv = &nodes[logits.0].value;
        let (n, classes) = (lv.rows(), lv.cols());
        assert_eq!(tg.len(), n, "one target per logit row");
        let mut log_probs = pool.scratch(lv.shape());
        kernels::log_softmax_rows_into(lv, log_probs.data_mut());
        let mut total = 0.0f32;
        for (r, &t) in tg.iter().enumerate() {
            assert!(t < classes, "target {t} out of range for {classes} classes");
            total -= log_probs.at2(r, t);
        }
        let loss = match reduction {
            Reduction::Mean => total / n.max(1) as f32,
            Reduction::Sum => total,
        };
        let mut value = pool.scratch(&[1]);
        value.data_mut()[0] = loss;
        self.push(
            value,
            Parents::One(logits),
            Some(Op::CrossEntropy {
                log_probs,
                targets: tg,
                reduction,
            }),
        )
    }

    // ---- backward ----

    /// Runs reverse-mode differentiation from `root` (typically the loss).
    ///
    /// Seeds the root gradient with ones and accumulates into every
    /// reachable variable; query results with [`Graph::grad`]. Calling
    /// `backward` again replaces previous gradients. Gradient buffers come
    /// from (and return to) the tape's pool.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not on this tape.
    pub fn backward(&mut self, root: VarId) {
        assert!(root.0 < self.nodes.len(), "root variable not on this tape");
        let Graph {
            nodes,
            grads,
            pool,
            backward_scratch: scratch,
            ..
        } = self;
        for g in grads.drain(..).flatten() {
            pool.give(g);
        }
        grads.resize(nodes.len(), None);
        grads[root.0] = Some(pool.full(nodes[root.0].value.shape(), 1.0));
        for i in (0..=root.0).rev() {
            let Some(op) = &nodes[i].op else {
                continue;
            };
            // Parents always precede their child on the tape, so splitting
            // at `i` lets us read this node's gradient while accumulating
            // into earlier slots.
            let (earlier, rest) = grads.split_at_mut(i);
            let Some(gout) = rest[0].as_ref() else {
                continue;
            };
            op.backward(nodes, i, gout, pool, scratch);
            let parents = &nodes[i].parents;
            debug_assert_eq!(scratch.len(), parents.len(), "one gradient per parent");
            for (idx, pg) in scratch.drain(..).enumerate() {
                let p = parents.get(idx);
                debug_assert_eq!(
                    pg.shape(),
                    nodes[p.0].value.shape(),
                    "gradient shape mismatch for parent {p:?} of node {i}"
                );
                match &mut earlier[p.0] {
                    Some(existing) => {
                        existing.add_assign(&pg);
                        pool.give(pg);
                    }
                    slot @ None => *slot = Some(pg),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn add_mul_backward() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[2.0, 3.0], &[2]));
        let b = g.leaf(t(&[4.0, 5.0], &[2]));
        let c = g.mul(a, b);
        let d = g.add(c, a);
        let loss = g.sum(d);
        g.backward(loss);
        // d = a*b + a → dL/da = b + 1, dL/db = a
        assert_eq!(g.grad(a).unwrap().data(), &[5.0, 6.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let mut g = Graph::new();
        let x = g.leaf(t(&[1.0, 2.0], &[1, 2]));
        let w = g.leaf(t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]));
        let y = g.matmul(x, w);
        let loss = g.sum(y);
        g.backward(loss);
        // dW = xᵀ · 1 = [[1,1],[2,2]]; dx = 1 · Wᵀ = [3+4, 5+6]
        assert_eq!(g.grad(w).unwrap().data(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(g.grad(x).unwrap().data(), &[7.0, 11.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // a used twice: gradient must accumulate.
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.5], &[1]));
        let b = g.add(a, a);
        let loss = g.sum(b);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0]);
    }

    #[test]
    fn cross_entropy_mean_gradient_is_softmax_minus_onehot_over_n() {
        let mut g = Graph::new();
        let logits = g.leaf(t(&[0.0, 0.0, 1.0, 0.0], &[2, 2]));
        let loss = g.cross_entropy(logits, &[0, 1], Reduction::Mean);
        g.backward(loss);
        let grad = g.grad(logits).unwrap();
        // Row 0: softmax = [.5,.5], target 0 → ([.5-1, .5])/2
        assert!((grad.at2(0, 0) + 0.25).abs() < 1e-6);
        assert!((grad.at2(0, 1) - 0.25).abs() < 1e-6);
        // Gradients sum to zero per row.
        assert!((grad.at2(1, 0) + grad.at2(1, 1)).abs() < 1e-6);
    }

    #[test]
    fn sum_reduction_scales_like_n_times_mean() {
        let logits_t = t(&[0.2, -0.3, 0.7, 0.1, 0.5, -0.2], &[2, 3]);
        let targets = [2usize, 0];

        let mut g1 = Graph::new();
        let l1 = g1.leaf(logits_t.clone());
        let loss1 = g1.cross_entropy(l1, &targets, Reduction::Mean);
        g1.backward(loss1);

        let mut g2 = Graph::new();
        let l2 = g2.leaf(logits_t);
        let loss2 = g2.cross_entropy(l2, &targets, Reduction::Sum);
        g2.backward(loss2);

        assert!(
            (g1.value(loss1).item() * 2.0 - g2.value(loss2).item()).abs() < 1e-5,
            "sum = n * mean"
        );
        let scaled = crate::kernels::scale(g2.grad(l2).unwrap(), 0.5);
        assert!(g1.grad(l1).unwrap().approx_eq(&scaled, 1e-6));
    }

    #[test]
    fn segment_ops_backward() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0, 3.0], &[3, 1]));
        let s = g.segment_mean(v, &[0, 0, 1], 2);
        let loss = g.sum(s);
        g.backward(loss);
        // Mean over 2 rows → each contributes 1/2; singleton contributes 1.
        assert_eq!(g.grad(v).unwrap().data(), &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn fused_neighbor_ops_match_unfused() {
        let src_t = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let gather = [0usize, 2, 2, 1];
        let seg = [0usize, 0, 1, 1];

        // Fused mean.
        let mut gf = Graph::new();
        let s1 = gf.leaf(src_t.clone());
        let fused = gf.fused_neighbor_mean(s1, &gather, &seg, 3);
        let l1 = gf.sum(fused);
        gf.backward(l1);

        // Unfused reference: gather → segment_mean.
        let mut gu = Graph::new();
        let s2 = gu.leaf(src_t.clone());
        let msgs = gu.gather_rows(s2, &gather);
        let mean = gu.segment_mean(msgs, &seg, 3);
        let l2 = gu.sum(mean);
        gu.backward(l2);

        assert!(gf.value(fused).approx_eq(gu.value(mean), 1e-6));
        assert!(gf
            .grad(s1)
            .unwrap()
            .approx_eq(gu.grad(s2).unwrap(), 1e-6));
        // The fused tape holds strictly fewer activation bytes.
        assert!(gf.activation_bytes() < gu.activation_bytes());

        // Fused sum agrees with gather → segment_sum too.
        let mut gs = Graph::new();
        let s3 = gs.leaf(src_t.clone());
        let fsum = gs.fused_neighbor_sum(s3, &gather, &seg, 3);
        let mut gr = Graph::new();
        let s4 = gr.leaf(src_t);
        let msgs = gr.gather_rows(s4, &gather);
        let rsum = gr.segment_sum(msgs, &seg, 3);
        assert!(gs.value(fsum).approx_eq(gr.value(rsum), 1e-6));
        let ls = gs.sum(fsum);
        gs.backward(ls);
        let lr = gr.sum(rsum);
        gr.backward(lr);
        assert!(gs
            .grad(s3)
            .unwrap()
            .approx_eq(gr.grad(s4).unwrap(), 1e-6));
    }

    #[test]
    fn fused_mean_empty_segment_is_zero() {
        let mut g = Graph::new();
        let s = g.leaf(t(&[1.0, 2.0], &[1, 2]));
        let m = g.fused_neighbor_mean(s, &[0], &[2], 3);
        assert_eq!(g.value(m).row(0), &[0.0, 0.0]);
        assert_eq!(g.value(m).row(2), &[1.0, 2.0]);
    }

    #[test]
    fn gather_backward_scatters() {
        let mut g = Graph::new();
        let src = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let gathered = g.gather_rows(src, &[0, 0, 1]);
        let loss = g.sum(gathered);
        g.backward(loss);
        assert_eq!(g.grad(src).unwrap().data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn scatter_rows_backward_gathers() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0], &[2, 1]));
        let s = g.scatter_rows(v, &[2, 0], 3);
        assert_eq!(g.value(s).data(), &[2.0, 0.0, 1.0]);
        let doubled = g.scale(s, 2.0);
        let loss = g.sum(doubled);
        g.backward(loss);
        assert_eq!(g.grad(v).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "unique indices")]
    fn scatter_rows_rejects_duplicates() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0], &[2, 1]));
        g.scatter_rows(v, &[0, 0], 2);
    }

    #[test]
    fn slice_concat_roundtrip_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let left = g.slice_cols(a, 0, 1);
        let right = g.slice_cols(a, 1, 1);
        let back = g.concat_cols(&[left, right]);
        let loss = g.sum(back);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn dropout_mask_zeroes_and_rescales() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 1.0, 1.0, 1.0], &[4]));
        let mask = t(&[1.0, 0.0, 1.0, 0.0], &[4]);
        let d = g.dropout_with_mask(a, &mask, 0.5);
        assert_eq!(g.value(d).data(), &[2.0, 0.0, 2.0, 0.0]);
        let loss = g.sum(d);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_twice_replaces_grads() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0], &[1]));
        let b = g.scale(a, 3.0);
        let loss = g.sum(b);
        g.backward(loss);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0]);
    }

    #[test]
    fn unreached_vars_have_no_grad() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0], &[1]));
        let b = g.leaf(t(&[1.0], &[1]));
        let loss = g.sum(a);
        g.backward(loss);
        assert!(g.grad(b).is_none());
    }

    /// One small training-ish step: forward, loss, backward.
    fn run_step(g: &mut Graph) -> (f32, Vec<u32>) {
        let x = g.leaf(t(&[0.3, -0.7, 1.1, 0.4, -0.2, 0.9], &[3, 2]));
        let w = g.leaf(t(&[0.5, -1.0, 0.25, 2.0], &[2, 2]));
        let b = g.leaf(t(&[0.1, -0.1], &[2]));
        let h = g.matmul(x, w);
        let hb = g.add_bias(h, b);
        let act = g.relu(hb);
        let agg = g.fused_neighbor_mean(act, &[0, 1, 2, 2], &[0, 0, 1, 1], 2);
        let loss = g.cross_entropy(agg, &[0, 1], Reduction::Sum);
        g.backward(loss);
        let loss_val = g.value(loss).item();
        let wg: Vec<u32> = g.grad(w).unwrap().data().iter().map(|v| v.to_bits()).collect();
        (loss_val, wg)
    }

    #[test]
    fn reset_recycles_buffers_and_preserves_bits() {
        let mut g = Graph::new();
        let (loss1, wg1) = run_step(&mut g);
        let misses_after_first = g.pool_stats().misses;
        assert!(misses_after_first > 0, "first step must populate the pool");

        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.activation_bytes(), 0);

        let (loss2, wg2) = run_step(&mut g);
        // Identical shapes: the second step must be served from the pool.
        assert_eq!(
            g.pool_stats().misses,
            misses_after_first,
            "steady-state step should not miss the pool"
        );
        assert!(g.pool_stats().hits > 0);
        // And recycling must not perturb a single bit.
        assert_eq!(loss1.to_bits(), loss2.to_bits());
        assert_eq!(wg1, wg2);
    }

    #[test]
    fn pooled_and_unpooled_are_bit_identical() {
        let mut pooled = Graph::new();
        // Warm the pool so the second pooled step runs on recycled buffers.
        run_step(&mut pooled);
        pooled.reset();
        let (loss_p, wg_p) = run_step(&mut pooled);

        let mut plain = Graph::new();
        plain.set_pool_enabled(false);
        let (loss_u, wg_u) = run_step(&mut plain);

        assert_eq!(loss_p.to_bits(), loss_u.to_bits());
        assert_eq!(wg_p, wg_u);
    }

    #[test]
    fn activation_bytes_tracks_incrementally() {
        let mut g = Graph::new();
        assert_eq!(g.activation_bytes(), 0);
        let a = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        assert_eq!(g.activation_bytes(), 16);
        let b = g.relu(a);
        assert_eq!(g.activation_bytes(), 32);
        let _ = g.sum(b);
        assert_eq!(g.activation_bytes(), 36);
        g.reset();
        assert_eq!(g.activation_bytes(), 0);
    }

    /// At bf16 width, non-leaf multi-element values are quantized onto the
    /// bf16 grid and counted at 2 bytes/element; leaves and scalars stay
    /// f32 at 4 bytes.
    #[test]
    fn activation_dtype_quantizes_and_halves_byte_accounting() {
        let mut g = Graph::new();
        g.set_activation_dtype(DType::Bf16);
        assert_eq!(g.activation_dtype(), DType::Bf16);

        let a = g.leaf(t(&[1.0, 2.5000123, -3.0, 0.4999], &[2, 2]));
        // Leaf stays exact and full-width.
        assert_eq!(g.value(a).data(), &[1.0, 2.5000123, -3.0, 0.4999]);
        assert_eq!(g.activation_bytes(), 16);

        let b = g.scale(a, 1.0);
        for (&q, &v) in g.value(b).data().iter().zip(g.value(a).data()) {
            assert_eq!(q.to_bits(), DType::Bf16.quantize(v).to_bits());
        }
        // Non-leaf counted at bf16 width: 4 × 2 bytes.
        assert_eq!(g.activation_bytes(), 16 + 8);

        // Loss scalar stays f32 width (4 bytes) and unquantized.
        let s = g.sum(b);
        assert_eq!(g.value(s).len(), 1);
        assert_eq!(g.activation_bytes(), 16 + 8 + 4);

        // Re-widening recomputes the counter over recorded nodes.
        g.set_activation_dtype(DType::F32);
        assert_eq!(g.activation_bytes(), 16 + 16 + 4);
        g.reset();
        assert_eq!(g.activation_bytes(), 0);
    }

    /// A bf16 run is deterministic: identical bits across repeats, and the
    /// backward sweep still produces finite, usable gradients.
    #[test]
    fn activation_dtype_run_is_deterministic_with_gradients() {
        let run = |dtype: DType| {
            let mut g = Graph::new();
            g.set_activation_dtype(dtype);
            let x = g.leaf(t(&[0.3, -1.2, 2.7, 0.01, 5.5, -0.625], &[2, 3]));
            let w = g.leaf(t(&[0.5, -1.0, 0.25, 2.0, 0.125, -0.75], &[3, 2]));
            let y = g.matmul(x, w);
            let r = g.relu(y);
            let loss = g.sum(r);
            g.backward(loss);
            let lb = g.value(loss).data()[0].to_bits();
            let wb: Vec<u32> = g.grad(w).unwrap().data().iter().map(|v| v.to_bits()).collect();
            (lb, wb)
        };
        for dtype in [DType::Bf16, DType::F16] {
            let (l1, g1) = run(dtype);
            let (l2, g2) = run(dtype);
            assert_eq!(l1, l2, "{dtype} loss must be bit-stable across runs");
            assert_eq!(g1, g2, "{dtype} grads must be bit-stable across runs");
            assert!(f32::from_bits(l1).is_finite());
        }
        // And bf16 genuinely differs from f32 on this input (quantization
        // is active, not a no-op).
        let (lf, _) = run(DType::F32);
        let (lb, _) = run(DType::Bf16);
        assert_ne!(lf, lb);
    }

    #[test]
    fn take_scratch_and_recycle_roundtrip() {
        let mut g = Graph::new();
        let mut s = g.take_scratch(&[4, 3]);
        s.fill(1.0);
        g.recycle(s);
        let s2 = g.take_scratch(&[3, 4]);
        assert_eq!(s2.len(), 12);
        assert_eq!(g.pool_stats().hits, 1);
    }
}

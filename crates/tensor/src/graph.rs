//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to its variables in execution
//! order (the *tape*). [`Graph::backward`] walks the tape in reverse and
//! accumulates gradients into every reachable leaf. Each op's adjoint is a
//! boxed closure capturing the (reference-counted, hence cheap) tensors it
//! needs.
//!
//! The engine is deliberately define-by-run: GNN forward passes are shaped by
//! the sampled graph structure, so a new tape per micro-batch is the natural
//! fit (and mirrors how PyTorch/DGL execute the original Betty).

use crate::kernels;
use crate::segment;
use crate::Tensor;

/// Handle to a variable stored on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<VarId>,
    /// `None` for leaves; otherwise maps the output gradient to one gradient
    /// tensor per parent (in `parents` order).
    backward: Option<BackwardFn>,
}

/// Loss reduction mode for [`Graph::cross_entropy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Average the per-example losses.
    #[default]
    Mean,
    /// Sum the per-example losses.
    Sum,
}

/// A dynamic computation tape.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes held by all tape values (forward activations).
    ///
    /// The device simulator uses this to account for activation memory.
    pub fn activation_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.value.size_bytes()).sum()
    }

    fn push(&mut self, value: Tensor, parents: Vec<VarId>, backward: Option<BackwardFn>) -> VarId {
        let id = VarId(self.nodes.len());
        self.nodes.push(Node {
            value,
            parents,
            backward,
        });
        id
    }

    /// Registers a leaf variable (input or parameter).
    pub fn leaf(&mut self, value: Tensor) -> VarId {
        self.push(value, vec![], None)
    }

    /// The forward value of a variable.
    pub fn value(&self, v: VarId) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a variable after [`Graph::backward`], if it was
    /// reached by the backward sweep.
    pub fn grad(&self, v: VarId) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ---- elementwise ----

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = kernels::add(self.value(a), self.value(b));
        self.push(
            value,
            vec![a, b],
            Some(Box::new(|g: &Tensor| vec![g.clone(), g.clone()])),
        )
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let value = kernels::sub(self.value(a), self.value(b));
        self.push(
            value,
            vec![a, b],
            Some(Box::new(|g: &Tensor| {
                vec![g.clone(), kernels::scale(g, -1.0)]
            })),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = kernels::mul(&av, &bv);
        self.push(
            value,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                vec![kernels::mul(g, &bv), kernels::mul(g, &av)]
            })),
        )
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let value = kernels::scale(self.value(a), s);
        self.push(
            value,
            vec![a],
            Some(Box::new(move |g: &Tensor| vec![kernels::scale(g, s)])),
        )
    }

    // ---- activations ----

    fn unary(
        &mut self,
        a: VarId,
        f: impl Fn(f32) -> f32,
        dfdx_from_xy: impl Fn(f32, f32) -> f32 + 'static,
    ) -> VarId {
        let x = self.value(a).clone();
        let y = kernels::map(&x, f);
        let yc = y.clone();
        self.push(
            y,
            vec![a],
            Some(Box::new(move |g: &Tensor| {
                let mut out = g.clone();
                let od = out.data_mut();
                for ((o, &xv), &yv) in od.iter_mut().zip(x.data()).zip(yc.data()) {
                    *o *= dfdx_from_xy(xv, yv);
                }
                vec![out]
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: VarId, alpha: f32) -> VarId {
        self.unary(
            a,
            move |x| if x > 0.0 { x } else { alpha * x },
            move |x, _| if x > 0.0 { 1.0 } else { alpha },
        )
    }

    /// Exponential linear unit with scale `alpha`.
    pub fn elu(&mut self, a: VarId, alpha: f32) -> VarId {
        self.unary(
            a,
            move |x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) },
            move |x, y| if x > 0.0 { 1.0 } else { y + alpha },
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary(a, f32::tanh, |_, y| 1.0 - y * y)
    }

    /// Inverted-dropout with keep-probability `1 - p`, using the caller's
    /// pre-drawn `mask` of zeros/ones (so training remains deterministic
    /// under a seeded RNG).
    ///
    /// # Panics
    ///
    /// Panics if `mask` shape differs from `a` or `p >= 1.0`.
    pub fn dropout_with_mask(&mut self, a: VarId, mask: &Tensor, p: f32) -> VarId {
        assert!(p < 1.0, "dropout probability must be < 1.0");
        assert_eq!(mask.shape(), self.value(a).shape(), "mask shape mismatch");
        let scale = 1.0 / (1.0 - p);
        let scaled_mask = kernels::scale(mask, scale);
        let value = kernels::mul(self.value(a), &scaled_mask);
        self.push(
            value,
            vec![a],
            Some(Box::new(move |g: &Tensor| {
                vec![kernels::mul(g, &scaled_mask)]
            })),
        )
    }

    // ---- linear algebra ----

    /// Matrix product of rank-2 variables.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = kernels::matmul(&av, &bv);
        self.push(
            value,
            vec![a, b],
            Some(Box::new(move |g: &Tensor| {
                vec![kernels::matmul_a_bt(g, &bv), kernels::matmul_at_b(&av, g)]
            })),
        )
    }

    /// Adds a rank-1 bias to every row of a rank-2 variable.
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> VarId {
        let value = kernels::add_row_broadcast(self.value(a), self.value(bias));
        self.push(
            value,
            vec![a, bias],
            Some(Box::new(|g: &Tensor| vec![g.clone(), kernels::sum_rows(g)])),
        )
    }

    /// Multiplies each row `r` of `[m, n]` variable `a` by the scalar in row
    /// `r` of `[m, 1]` variable `s` (column broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `[a.rows(), 1]`.
    pub fn scale_rows_by(&mut self, a: VarId, s: VarId) -> VarId {
        let av = self.value(a).clone();
        let sv = self.value(s).clone();
        assert_eq!(
            sv.shape(),
            &[av.rows(), 1],
            "row scaler must be [rows, 1], got {:?}",
            sv.shape()
        );
        let value = kernels::scale_rows(&av, sv.data());
        self.push(
            value,
            vec![a, s],
            Some(Box::new(move |g: &Tensor| {
                let da = kernels::scale_rows(g, sv.data());
                let cols = av.cols();
                let mut ds = vec![0.0f32; av.rows()];
                for (r, d) in ds.iter_mut().enumerate() {
                    let grow = g.row(r);
                    let arow = av.row(r);
                    *d = (0..cols).map(|c| grow[c] * arow[c]).sum();
                }
                vec![
                    da,
                    Tensor::from_vec(ds, &[av.rows(), 1]).expect("scale_rows grad shape"),
                ]
            })),
        )
    }

    /// Multiplies every element of `a` by the single-element variable `s`
    /// (a *learnable* scalar, e.g. GIN's `1 + ε`).
    ///
    /// # Panics
    ///
    /// Panics if `s` does not hold exactly one element.
    pub fn mul_scalar_var(&mut self, a: VarId, s: VarId) -> VarId {
        let av = self.value(a).clone();
        let sv = self.value(s).clone();
        assert_eq!(sv.len(), 1, "scalar variable must hold one element");
        let value = kernels::scale(&av, sv.item());
        self.push(
            value,
            vec![a, s],
            Some(Box::new(move |g: &Tensor| {
                let da = kernels::scale(g, sv.item());
                let ds = kernels::mul(g, &av).sum_all();
                vec![da, Tensor::from_slice(&[ds])]
            })),
        )
    }

    // ---- shape ----

    /// Horizontal concatenation of rank-2 variables sharing a row count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts disagree.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let tensors: Vec<Tensor> = parts.iter().map(|&p| self.value(p).clone()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = kernels::concat_cols(&refs);
        let widths: Vec<usize> = tensors.iter().map(|t| t.cols()).collect();
        self.push(
            value,
            parts.to_vec(),
            Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(widths.len());
                let mut offset = 0;
                for &w in &widths {
                    grads.push(kernels::slice_cols(g, offset, w));
                    offset += w;
                }
                grads
            })),
        )
    }

    /// Vertical concatenation of rank-2 variables sharing a column count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts disagree.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let tensors: Vec<Tensor> = parts.iter().map(|&p| self.value(p).clone()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = kernels::concat_rows(&refs);
        let heights: Vec<usize> = tensors.iter().map(|t| t.rows()).collect();
        let cols = tensors[0].cols();
        self.push(
            value,
            parts.to_vec(),
            Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(heights.len());
                let mut offset = 0;
                for &h in &heights {
                    let slice = g.data()[offset * cols..(offset + h) * cols].to_vec();
                    grads.push(Tensor::from_vec(slice, &[h, cols]).expect("concat grad shape"));
                    offset += h;
                }
                grads
            })),
        )
    }

    /// Extracts columns `[start, start+len)` of a rank-2 variable.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let av = self.value(a);
        let (rows, cols) = (av.rows(), av.cols());
        let value = kernels::slice_cols(av, start, len);
        self.push(
            value,
            vec![a],
            Some(Box::new(move |g: &Tensor| {
                let mut full = Tensor::zeros(&[rows, cols]);
                let fd = full.data_mut();
                for r in 0..rows {
                    fd[r * cols + start..r * cols + start + len].copy_from_slice(g.row(r));
                }
                vec![full]
            })),
        )
    }

    // ---- reductions ----

    /// Sum of all elements as a `[1]` tensor.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let av = self.value(a).clone();
        let value = Tensor::from_slice(&[av.sum_all()]);
        self.push(
            value,
            vec![a],
            Some(Box::new(move |g: &Tensor| {
                vec![Tensor::full(av.shape(), g.item())]
            })),
        )
    }

    /// Mean of all elements as a `[1]` tensor.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let n = self.value(a).len() as f32;
        let s = self.sum(a);
        self.scale(s, 1.0 / n)
    }

    // ---- graph aggregation primitives ----

    /// Gathers rows of `src` at `indices` (edge-expansion of node features).
    pub fn gather_rows(&mut self, src: VarId, indices: &[usize]) -> VarId {
        let srcv = self.value(src).clone();
        let idx = indices.to_vec();
        let value = segment::gather_rows(&srcv, indices);
        let src_rows = srcv.rows();
        let cols = srcv.cols();
        self.push(
            value,
            vec![src],
            Some(Box::new(move |g: &Tensor| {
                let mut out = Tensor::zeros(&[src_rows, cols]);
                segment::scatter_add_rows(&mut out, g, &idx);
                vec![out]
            })),
        )
    }

    /// Places row `r` of `values` into row `indices[r]` of a fresh
    /// `[n_rows, cols]` output (rows not referenced stay zero).
    ///
    /// # Panics
    ///
    /// Panics if `indices` contains duplicates (the op would otherwise drop
    /// gradient mass silently).
    pub fn scatter_rows(&mut self, values: VarId, indices: &[usize], n_rows: usize) -> VarId {
        let mut seen = vec![false; n_rows];
        for &i in indices {
            assert!(!seen[i], "scatter_rows requires unique indices, {i} repeats");
            seen[i] = true;
        }
        let idx = indices.to_vec();
        let value = segment::scatter_rows(self.value(values), indices, n_rows);
        self.push(
            value,
            vec![values],
            Some(Box::new(move |g: &Tensor| {
                vec![segment::gather_rows(g, &idx)]
            })),
        )
    }

    /// Per-segment sum over rows of `values` keyed by `segment_ids`.
    pub fn segment_sum(&mut self, values: VarId, segment_ids: &[usize], n_segments: usize) -> VarId {
        let ids = segment_ids.to_vec();
        let value = segment::segment_sum(self.value(values), segment_ids, n_segments);
        self.push(
            value,
            vec![values],
            Some(Box::new(move |g: &Tensor| {
                vec![segment::gather_rows(g, &ids)]
            })),
        )
    }

    /// Per-segment mean over rows of `values` keyed by `segment_ids`.
    pub fn segment_mean(
        &mut self,
        values: VarId,
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let ids = segment_ids.to_vec();
        let (value, counts) = segment::segment_mean(self.value(values), segment_ids, n_segments);
        self.push(
            value,
            vec![values],
            Some(Box::new(move |g: &Tensor| {
                let mut grad = segment::gather_rows(g, &ids);
                let cols = grad.cols();
                let gd = grad.data_mut();
                for (r, &s) in ids.iter().enumerate() {
                    let inv = 1.0 / counts[s].max(1) as f32;
                    for v in &mut gd[r * cols..(r + 1) * cols] {
                        *v *= inv;
                    }
                }
                vec![grad]
            })),
        )
    }

    /// Per-segment elementwise max over rows of `values`.
    pub fn segment_max(&mut self, values: VarId, segment_ids: &[usize], n_segments: usize) -> VarId {
        let vv = self.value(values).clone();
        let (value, argmax) = segment::segment_max(&vv, segment_ids, n_segments);
        let rows = vv.rows();
        let cols = vv.cols();
        self.push(
            value,
            vec![values],
            Some(Box::new(move |g: &Tensor| {
                let mut out = Tensor::zeros(&[rows, cols]);
                let od = out.data_mut();
                for s in 0..n_segments {
                    for c in 0..cols {
                        let winner = argmax[s * cols + c];
                        if winner != usize::MAX {
                            od[winner * cols + c] += g.at2(s, c);
                        }
                    }
                }
                vec![out]
            })),
        )
    }

    /// Fused neighbor-sum: for each segment (destination), sums the source
    /// rows selected by `gather_ids` whose edge belongs to that segment —
    /// without materializing the `[E, D]` message tensor. This is the
    /// memory-efficient path GNN frameworks use for Sum/Mean aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the index slices disagree in length.
    pub fn fused_neighbor_sum(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let srcv = self.value(src).clone();
        let value =
            segment::fused_gather_segment_sum(&srcv, gather_ids, segment_ids, n_segments);
        let g_ids = gather_ids.to_vec();
        let s_ids = segment_ids.to_vec();
        let n_src = srcv.rows();
        self.push(
            value,
            vec![src],
            Some(Box::new(move |g: &Tensor| {
                vec![segment::fused_gather_segment_sum_backward(
                    g, &g_ids, &s_ids, None, n_src,
                )]
            })),
        )
    }

    /// Fused neighbor-mean: like [`Graph::fused_neighbor_sum`] but
    /// normalized by each segment's in-degree (empty segments stay zero).
    ///
    /// # Panics
    ///
    /// Panics if the index slices disagree in length.
    pub fn fused_neighbor_mean(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let srcv = self.value(src).clone();
        let mut counts = vec![0usize; n_segments];
        for &s in segment_ids {
            assert!(s < n_segments, "segment id {s} >= {n_segments}");
            counts[s] += 1;
        }
        let inv: Vec<f32> = counts
            .iter()
            .map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 })
            .collect();
        let mut value =
            segment::fused_gather_segment_sum(&srcv, gather_ids, segment_ids, n_segments);
        let cols = value.cols();
        let vdata = value.data_mut();
        for (s, &scale) in inv.iter().enumerate() {
            for v in &mut vdata[s * cols..(s + 1) * cols] {
                *v *= scale;
            }
        }
        let g_ids = gather_ids.to_vec();
        let s_ids = segment_ids.to_vec();
        let n_src = srcv.rows();
        self.push(
            value,
            vec![src],
            Some(Box::new(move |g: &Tensor| {
                vec![segment::fused_gather_segment_sum_backward(
                    g,
                    &g_ids,
                    &s_ids,
                    Some(&inv),
                    n_src,
                )]
            })),
        )
    }

    /// Weighted fused neighbor-sum: like [`Graph::fused_neighbor_sum`] but
    /// each edge contributes `weights[e] · src[gather_ids[e]]` — the kernel
    /// behind degree-normalized aggregations (GCN).
    ///
    /// # Panics
    ///
    /// Panics if the index/weight slices disagree in length.
    pub fn fused_neighbor_weighted_sum(
        &mut self,
        src: VarId,
        gather_ids: &[usize],
        segment_ids: &[usize],
        weights: &[f32],
        n_segments: usize,
    ) -> VarId {
        let srcv = self.value(src).clone();
        let value = segment::fused_gather_segment_weighted_sum(
            &srcv,
            gather_ids,
            segment_ids,
            weights,
            n_segments,
        );
        let g_ids = gather_ids.to_vec();
        let s_ids = segment_ids.to_vec();
        let ws = weights.to_vec();
        let n_src = srcv.rows();
        self.push(
            value,
            vec![src],
            Some(Box::new(move |g: &Tensor| {
                vec![segment::fused_gather_segment_weighted_sum_backward(
                    g, &g_ids, &s_ids, &ws, n_src,
                )]
            })),
        )
    }

    /// Softmax within each segment (column-wise), used for attention weights.
    pub fn segment_softmax(
        &mut self,
        values: VarId,
        segment_ids: &[usize],
        n_segments: usize,
    ) -> VarId {
        let ids = segment_ids.to_vec();
        let value = segment::segment_softmax(self.value(values), segment_ids, n_segments);
        let y = value.clone();
        self.push(
            value,
            vec![values],
            Some(Box::new(move |g: &Tensor| {
                // dX = y ⊙ (g − Σ_seg (g ⊙ y)), per column within a segment.
                let cols = y.cols();
                let gy = kernels::mul(g, &y);
                let sums = segment::segment_sum(&gy, &ids, n_segments);
                let mut out = g.clone();
                let od = out.data_mut();
                for (r, &s) in ids.iter().enumerate() {
                    for c in 0..cols {
                        od[r * cols + c] =
                            y.at2(r, c) * (od[r * cols + c] - sums.at2(s, c));
                    }
                }
                vec![out]
            })),
        )
    }

    /// Row-wise log-softmax (numerically stable).
    ///
    /// Backward: `dX = dY − softmax(X) · rowsum(dY)`.
    pub fn log_softmax_rows(&mut self, a: VarId) -> VarId {
        let value = kernels::log_softmax_rows(self.value(a));
        let y = value.clone();
        self.push(
            value,
            vec![a],
            Some(Box::new(move |g: &Tensor| {
                let (rows, cols) = (y.rows(), y.cols());
                let mut out = g.clone();
                let od = out.data_mut();
                for r in 0..rows {
                    let row_sum: f32 = g.row(r).iter().sum();
                    for c in 0..cols {
                        od[r * cols + c] -= y.at2(r, c).exp() * row_sum;
                    }
                }
                vec![out]
            })),
        )
    }

    // ---- losses ----

    /// Fused softmax cross-entropy against integer class targets.
    ///
    /// Returns a `[1]` loss. With [`Reduction::Mean`] the gradient is
    /// `(softmax - onehot) / N`; with [`Reduction::Sum`] it is unscaled —
    /// the form needed for exact micro-batch gradient accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of
    /// class range.
    pub fn cross_entropy(&mut self, logits: VarId, targets: &[usize], reduction: Reduction) -> VarId {
        let lv = self.value(logits).clone();
        let (n, classes) = (lv.rows(), lv.cols());
        assert_eq!(targets.len(), n, "one target per logit row");
        let log_probs = kernels::log_softmax_rows(&lv);
        let mut total = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < classes, "target {t} out of range for {classes} classes");
            total -= log_probs.at2(r, t);
        }
        let loss = match reduction {
            Reduction::Mean => total / n.max(1) as f32,
            Reduction::Sum => total,
        };
        let tg = targets.to_vec();
        let value = Tensor::from_slice(&[loss]);
        self.push(
            value,
            vec![logits],
            Some(Box::new(move |g: &Tensor| {
                let upstream = g.item();
                let scale = match reduction {
                    Reduction::Mean => upstream / n.max(1) as f32,
                    Reduction::Sum => upstream,
                };
                let mut grad = kernels::map(&log_probs, f32::exp);
                let gd = grad.data_mut();
                for (r, &t) in tg.iter().enumerate() {
                    gd[r * classes + t] -= 1.0;
                }
                for v in gd.iter_mut() {
                    *v *= scale;
                }
                vec![grad]
            })),
        )
    }

    // ---- backward ----

    /// Runs reverse-mode differentiation from `root` (typically the loss).
    ///
    /// Seeds the root gradient with ones and accumulates into every
    /// reachable variable; query results with [`Graph::grad`]. Calling
    /// `backward` again replaces previous gradients.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not on this tape.
    pub fn backward(&mut self, root: VarId) {
        assert!(root.0 < self.nodes.len(), "root variable not on this tape");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(Tensor::ones(self.nodes[root.0].value.shape()));
        for i in (0..=root.0).rev() {
            let Some(gout) = grads[i].clone() else {
                continue;
            };
            let Some(backward) = &self.nodes[i].backward else {
                continue;
            };
            let parent_grads = backward(&gout);
            debug_assert_eq!(parent_grads.len(), self.nodes[i].parents.len());
            for (p, pg) in self.nodes[i].parents.clone().into_iter().zip(parent_grads) {
                debug_assert_eq!(
                    pg.shape(),
                    self.nodes[p.0].value.shape(),
                    "gradient shape mismatch for parent {p:?} of node {i}"
                );
                match &mut grads[p.0] {
                    Some(existing) => existing.add_assign(&pg),
                    slot @ None => *slot = Some(pg),
                }
            }
        }
        self.grads = grads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn add_mul_backward() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[2.0, 3.0], &[2]));
        let b = g.leaf(t(&[4.0, 5.0], &[2]));
        let c = g.mul(a, b);
        let d = g.add(c, a);
        let loss = g.sum(d);
        g.backward(loss);
        // d = a*b + a → dL/da = b + 1, dL/db = a
        assert_eq!(g.grad(a).unwrap().data(), &[5.0, 6.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let mut g = Graph::new();
        let x = g.leaf(t(&[1.0, 2.0], &[1, 2]));
        let w = g.leaf(t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]));
        let y = g.matmul(x, w);
        let loss = g.sum(y);
        g.backward(loss);
        // dW = xᵀ · 1 = [[1,1],[2,2]]; dx = 1 · Wᵀ = [3+4, 5+6]
        assert_eq!(g.grad(w).unwrap().data(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(g.grad(x).unwrap().data(), &[7.0, 11.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // a used twice: gradient must accumulate.
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.5], &[1]));
        let b = g.add(a, a);
        let loss = g.sum(b);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0]);
    }

    #[test]
    fn cross_entropy_mean_gradient_is_softmax_minus_onehot_over_n() {
        let mut g = Graph::new();
        let logits = g.leaf(t(&[0.0, 0.0, 1.0, 0.0], &[2, 2]));
        let loss = g.cross_entropy(logits, &[0, 1], Reduction::Mean);
        g.backward(loss);
        let grad = g.grad(logits).unwrap();
        // Row 0: softmax = [.5,.5], target 0 → ([.5-1, .5])/2
        assert!((grad.at2(0, 0) + 0.25).abs() < 1e-6);
        assert!((grad.at2(0, 1) - 0.25).abs() < 1e-6);
        // Gradients sum to zero per row.
        assert!((grad.at2(1, 0) + grad.at2(1, 1)).abs() < 1e-6);
    }

    #[test]
    fn sum_reduction_scales_like_n_times_mean() {
        let logits_t = t(&[0.2, -0.3, 0.7, 0.1, 0.5, -0.2], &[2, 3]);
        let targets = [2usize, 0];

        let mut g1 = Graph::new();
        let l1 = g1.leaf(logits_t.clone());
        let loss1 = g1.cross_entropy(l1, &targets, Reduction::Mean);
        g1.backward(loss1);

        let mut g2 = Graph::new();
        let l2 = g2.leaf(logits_t);
        let loss2 = g2.cross_entropy(l2, &targets, Reduction::Sum);
        g2.backward(loss2);

        assert!(
            (g1.value(loss1).item() * 2.0 - g2.value(loss2).item()).abs() < 1e-5,
            "sum = n * mean"
        );
        let scaled = crate::kernels::scale(g2.grad(l2).unwrap(), 0.5);
        assert!(g1.grad(l1).unwrap().approx_eq(&scaled, 1e-6));
    }

    #[test]
    fn segment_ops_backward() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0, 3.0], &[3, 1]));
        let s = g.segment_mean(v, &[0, 0, 1], 2);
        let loss = g.sum(s);
        g.backward(loss);
        // Mean over 2 rows → each contributes 1/2; singleton contributes 1.
        assert_eq!(g.grad(v).unwrap().data(), &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn fused_neighbor_ops_match_unfused() {
        let src_t = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let gather = [0usize, 2, 2, 1];
        let seg = [0usize, 0, 1, 1];

        // Fused mean.
        let mut gf = Graph::new();
        let s1 = gf.leaf(src_t.clone());
        let fused = gf.fused_neighbor_mean(s1, &gather, &seg, 3);
        let l1 = gf.sum(fused);
        gf.backward(l1);

        // Unfused reference: gather → segment_mean.
        let mut gu = Graph::new();
        let s2 = gu.leaf(src_t.clone());
        let msgs = gu.gather_rows(s2, &gather);
        let mean = gu.segment_mean(msgs, &seg, 3);
        let l2 = gu.sum(mean);
        gu.backward(l2);

        assert!(gf.value(fused).approx_eq(gu.value(mean), 1e-6));
        assert!(gf
            .grad(s1)
            .unwrap()
            .approx_eq(gu.grad(s2).unwrap(), 1e-6));
        // The fused tape holds strictly fewer activation bytes.
        assert!(gf.activation_bytes() < gu.activation_bytes());

        // Fused sum agrees with gather → segment_sum too.
        let mut gs = Graph::new();
        let s3 = gs.leaf(src_t.clone());
        let fsum = gs.fused_neighbor_sum(s3, &gather, &seg, 3);
        let mut gr = Graph::new();
        let s4 = gr.leaf(src_t);
        let msgs = gr.gather_rows(s4, &gather);
        let rsum = gr.segment_sum(msgs, &seg, 3);
        assert!(gs.value(fsum).approx_eq(gr.value(rsum), 1e-6));
        let ls = gs.sum(fsum);
        gs.backward(ls);
        let lr = gr.sum(rsum);
        gr.backward(lr);
        assert!(gs
            .grad(s3)
            .unwrap()
            .approx_eq(gr.grad(s4).unwrap(), 1e-6));
    }

    #[test]
    fn fused_mean_empty_segment_is_zero() {
        let mut g = Graph::new();
        let s = g.leaf(t(&[1.0, 2.0], &[1, 2]));
        let m = g.fused_neighbor_mean(s, &[0], &[2], 3);
        assert_eq!(g.value(m).row(0), &[0.0, 0.0]);
        assert_eq!(g.value(m).row(2), &[1.0, 2.0]);
    }

    #[test]
    fn gather_backward_scatters() {
        let mut g = Graph::new();
        let src = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let gathered = g.gather_rows(src, &[0, 0, 1]);
        let loss = g.sum(gathered);
        g.backward(loss);
        assert_eq!(g.grad(src).unwrap().data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn scatter_rows_backward_gathers() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0], &[2, 1]));
        let s = g.scatter_rows(v, &[2, 0], 3);
        assert_eq!(g.value(s).data(), &[2.0, 0.0, 1.0]);
        let doubled = g.scale(s, 2.0);
        let loss = g.sum(doubled);
        g.backward(loss);
        assert_eq!(g.grad(v).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "unique indices")]
    fn scatter_rows_rejects_duplicates() {
        let mut g = Graph::new();
        let v = g.leaf(t(&[1.0, 2.0], &[2, 1]));
        g.scatter_rows(v, &[0, 0], 2);
    }

    #[test]
    fn slice_concat_roundtrip_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let left = g.slice_cols(a, 0, 1);
        let right = g.slice_cols(a, 1, 1);
        let back = g.concat_cols(&[left, right]);
        let loss = g.sum(back);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn dropout_mask_zeroes_and_rescales() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 1.0, 1.0, 1.0], &[4]));
        let mask = t(&[1.0, 0.0, 1.0, 0.0], &[4]);
        let d = g.dropout_with_mask(a, &mask, 0.5);
        assert_eq!(g.value(d).data(), &[2.0, 0.0, 2.0, 0.0]);
        let loss = g.sum(d);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_twice_replaces_grads() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0], &[1]));
        let b = g.scale(a, 3.0);
        let loss = g.sum(b);
        g.backward(loss);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0]);
    }

    #[test]
    fn unreached_vars_have_no_grad() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0], &[1]));
        let b = g.leaf(t(&[1.0], &[1]));
        let loss = g.sum(a);
        g.backward(loss);
        assert!(g.grad(b).is_none());
    }
}

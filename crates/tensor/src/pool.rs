//! Capacity-keyed buffer pool for the training hot path.
//!
//! Micro-batched training replays near-identical tensor shapes every step,
//! but neighbor sampling makes sizes fluctuate a little from epoch to
//! epoch. [`BufferPool`] therefore keeps free lists of whole [`Tensor`]s
//! keyed by the *capacity* of their backing `Vec<f32>` and serves a
//! request from the smallest cached buffer that fits, as long as it does
//! not overshoot the request by more than [`MAX_OVERSHOOT`]×. The buffer
//! is resized in place — always within capacity, so a steady-state take
//! performs zero heap allocations even when the exact element count drifts
//! between epochs.
//!
//! Correctness contract: a pooled buffer is handed out either fully filled
//! ([`BufferPool::zeros`] / [`BufferPool::full`]) or as dirty scratch the
//! caller promises to overwrite completely ([`BufferPool::scratch`]).
//! Either way no kernel ever reads bytes that depend on pool history, which
//! is why pooled and unpooled training are bit-identical (property-tested
//! in `tests/alloc_pool.rs`).

use std::collections::BTreeMap;

use crate::Tensor;

/// Free-list length cap per capacity class. Ops that allocate without
/// drawing from the pool would otherwise grow their class by one buffer per
/// step forever; the cap bounds that to a fixed working set.
const MAX_FREE_PER_CLASS: usize = 64;

/// Largest allowed ratio of a served buffer's capacity to the requested
/// element count. Bounds the memory a small request can pin: a buffer more
/// than twice the request stays cached for a closer-sized consumer.
const MAX_OVERSHOOT: usize = 2;

/// Cap on the recycled index-buffer free list (see
/// [`BufferPool::take_indices`]).
const MAX_FREE_INDICES: usize = 64;

/// Cumulative counters describing how much allocator traffic the pool has
/// absorbed. Snapshots are `Copy`; per-epoch deltas come from
/// [`PoolStats::delta_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served by recycling a previously released buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh heap allocation.
    pub misses: u64,
    /// Total payload bytes served from recycled buffers.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Counter increase since an older snapshot `earlier`.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_recycled: self.bytes_recycled.saturating_sub(earlier.bytes_recycled),
        }
    }

    /// Fraction of requests served from the pool; 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Capacity-keyed free lists of reusable tensors.
///
/// Disabled pools are transparent: every request allocates fresh and every
/// release drops, so `--no-pool` runs the exact same kernel code with the
/// exact same values — only the allocator traffic differs.
#[derive(Debug)]
pub struct BufferPool {
    free: BTreeMap<usize, Vec<Tensor>>,
    free_indices: Vec<Vec<usize>>,
    enabled: bool,
    stats: PoolStats,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Creates an enabled, empty pool.
    pub fn new() -> Self {
        Self {
            free: BTreeMap::new(),
            free_indices: Vec::new(),
            enabled: true,
            stats: PoolStats::default(),
        }
    }

    /// Turns recycling on or off; disabling drops all cached buffers.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.free.clear();
            self.free_indices.clear();
        }
    }

    /// Whether recycling is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of buffers currently cached across all capacity classes.
    pub fn cached_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Drops every cached buffer (counters are kept).
    pub fn clear(&mut self) {
        self.free.clear();
        self.free_indices.clear();
    }

    /// Takes an empty index buffer, recycling a released one when possible.
    ///
    /// Index buffers carry the tape's edge lists, segment ids, and targets;
    /// in steady state their grown capacities are reused verbatim, so
    /// filling one with `extend_from_slice` performs no allocation. A hit
    /// counts the recycled capacity toward `bytes_recycled`.
    pub fn take_indices(&mut self) -> Vec<usize> {
        if self.enabled {
            if let Some(mut v) = self.free_indices.pop() {
                v.clear();
                self.stats.hits += 1;
                self.stats.bytes_recycled +=
                    (v.capacity() * std::mem::size_of::<usize>()) as u64;
                return v;
            }
            self.stats.misses += 1;
        }
        Vec::new()
    }

    /// Releases an index buffer for reuse (dropped when the pool is off,
    /// the buffer never grew, or the free list is full).
    pub fn give_indices(&mut self, v: Vec<usize>) {
        if self.enabled && v.capacity() > 0 && self.free_indices.len() < MAX_FREE_INDICES {
            self.free_indices.push(v);
        }
    }

    /// Pops the best-fitting recycled buffer for a `len`-element request
    /// and resizes it in place, if one is cached.
    ///
    /// Free lists are keyed by the backing buffer's true capacity at
    /// release time, so a class can never hand out a buffer too small for
    /// it; the assert re-checks the invariant on every hand-out anyway.
    fn take_hit(&mut self, len: usize) -> Option<Tensor> {
        if len == 0 {
            return None;
        }
        let class = self
            .free
            .range(len..=len.saturating_mul(MAX_OVERSHOOT))
            .find(|(_, list)| !list.is_empty())
            .map(|(&cap, _)| cap)?;
        let list = self.free.get_mut(&class).expect("class found above");
        let mut t = list.pop().expect("class found non-empty");
        // The class entry stays in the map even when emptied: its Vec keeps
        // its capacity, so the steady-state give/take cycle of a singleton
        // class touches the allocator zero times instead of twice.
        let buf = t
            .unique_buffer_mut()
            .expect("pooled buffers are uniquely owned");
        assert!(
            buf.capacity() >= len,
            "pool invariant violated: cached buffer capacity below its class"
        );
        // Within capacity by the range bound above: no reallocation.
        buf.resize(len, 0.0);
        self.stats.hits += 1;
        self.stats.bytes_recycled += (len * std::mem::size_of::<f32>()) as u64;
        Some(t)
    }

    /// Takes a buffer of the given shape with *unspecified contents*.
    ///
    /// The caller must overwrite every element before any are read —
    /// pooled runs hand out stale data here, unpooled runs hand out zeros,
    /// and the bit-identity property tests exist to catch any consumer
    /// that breaks this promise.
    pub fn scratch(&mut self, shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        let len: usize = shape.iter().product();
        if self.enabled {
            if let Some(mut t) = self.take_hit(len) {
                t.set_shape_in_place(shape);
                return t;
            }
            self.stats.misses += 1;
        }
        Tensor::zeros(shape)
    }

    /// Takes a zero-filled buffer of the given shape.
    pub fn zeros(&mut self, shape: &[usize]) -> Tensor {
        self.full(shape, 0.0)
    }

    /// Takes a buffer of the given shape filled with `value`.
    pub fn full(&mut self, shape: &[usize], value: f32) -> Tensor {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        let len: usize = shape.iter().product();
        if self.enabled {
            if let Some(mut t) = self.take_hit(len) {
                t.set_shape_in_place(shape);
                t.fill(value);
                return t;
            }
            self.stats.misses += 1;
        }
        Tensor::full(shape, value)
    }

    /// Releases a tensor back to the pool.
    ///
    /// Tensors whose storage is still shared (another `Arc` clone is alive)
    /// are dropped instead of cached — recycling them would alias live
    /// data. Empty buffers are dropped too.
    pub fn give(&mut self, mut t: Tensor) {
        if !self.enabled {
            return;
        }
        let Some(buf) = t.unique_buffer_mut() else {
            return;
        };
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let list = self.free.entry(cap).or_default();
        if list.len() < MAX_FREE_PER_CLASS {
            list.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_released_buffers() {
        let mut pool = BufferPool::new();
        let t = pool.scratch(&[2, 3]);
        assert_eq!(pool.stats().misses, 1);
        pool.give(t);
        assert_eq!(pool.cached_buffers(), 1);
        let t2 = pool.zeros(&[3, 2]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().bytes_recycled, 24);
        assert_eq!(t2.shape(), &[3, 2]);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn wrong_length_buffer_is_never_handed_out() {
        let mut pool = BufferPool::new();
        pool.give(Tensor::zeros(&[3]));
        // An [8] request needs 8 elements; the cached 3-element buffer
        // cannot satisfy it and must stay cached for a fitting request.
        let t = pool.scratch(&[8]);
        assert_eq!(t.len(), 8);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.cached_buffers(), 1);
        // Every hand-out is exactly the requested length even when the
        // cached capacity differs (3 serves 2 within the overshoot bound).
        let t2 = pool.scratch(&[2]);
        assert_eq!(t2.len(), 2);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_class() {
        let mut pool = BufferPool::new();
        pool.give(Tensor::zeros(&[16]));
        pool.give(Tensor::zeros(&[10]));
        // 8 elements: both classes fit within 2x, the closer one (10) wins.
        let t = pool.scratch(&[8]);
        assert_eq!(t.len(), 8);
        assert_eq!(pool.cached_buffers(), 1);
        let remaining = pool.scratch(&[16]);
        assert_eq!(remaining.len(), 16);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn overshoot_is_bounded() {
        let mut pool = BufferPool::new();
        pool.give(Tensor::zeros(&[100]));
        // A 4-element request must not pin a 100-element buffer.
        let t = pool.scratch(&[4]);
        assert_eq!(t.len(), 4);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.cached_buffers(), 1);
    }

    #[test]
    fn every_take_matches_requested_shape() {
        let mut pool = BufferPool::new();
        for len in [1usize, 4, 6, 9, 16] {
            pool.give(Tensor::zeros(&[len]));
        }
        for shape in [&[2usize, 2] as &[usize], &[3, 3], &[1], &[4, 4], &[2, 3]] {
            let t = pool.scratch(shape);
            assert_eq!(t.shape(), shape);
            assert_eq!(t.len(), shape.iter().product::<usize>());
        }
        assert_eq!(pool.stats().hits, 5);
    }

    #[test]
    fn shared_storage_is_not_cached() {
        let mut pool = BufferPool::new();
        let t = Tensor::zeros(&[4]);
        let _alias = t.clone();
        pool.give(t);
        assert_eq!(pool.cached_buffers(), 0);
    }

    #[test]
    fn disabled_pool_is_transparent() {
        let mut pool = BufferPool::new();
        pool.set_enabled(false);
        pool.give(Tensor::zeros(&[4]));
        assert_eq!(pool.cached_buffers(), 0);
        let t = pool.zeros(&[4]);
        assert_eq!(t.len(), 4);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn full_overwrites_stale_contents() {
        let mut pool = BufferPool::new();
        let mut t = pool.scratch(&[3]);
        t.fill(7.0);
        pool.give(t);
        let ones = pool.full(&[3], 1.0);
        assert_eq!(ones.data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn index_buffers_recycle_capacity() {
        let mut pool = BufferPool::new();
        let mut v = pool.take_indices();
        assert_eq!(pool.stats().misses, 1);
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        pool.give_indices(v);
        let v2 = pool.take_indices();
        assert!(v2.is_empty(), "recycled index buffers come back empty");
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn disabled_pool_drops_index_buffers() {
        let mut pool = BufferPool::new();
        pool.set_enabled(false);
        pool.give_indices(vec![1, 2]);
        let v = pool.take_indices();
        assert_eq!(v.capacity(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn free_list_is_capped() {
        let mut pool = BufferPool::new();
        for _ in 0..(MAX_FREE_PER_CLASS + 10) {
            pool.give(Tensor::zeros(&[8]));
        }
        assert_eq!(pool.cached_buffers(), MAX_FREE_PER_CLASS);
    }
}

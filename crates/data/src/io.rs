//! Binary dataset serialization.
//!
//! Generated datasets take seconds to rebuild, but real-world graphs
//! (edge lists + features exported from OGB, say) need a load path. The
//! format is a single little-endian binary file:
//!
//! ```text
//! magic "BTYDATA1" | name | counts | edges (u32 pairs) | labels (u32)
//! | splits (u32 lists) | features (f32 row-major)
//! ```

use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_graph::{CsrGraph, NodeId};
use betty_tensor::Tensor;

use crate::Dataset;

const MAGIC: &[u8; 8] = b"BTYDATA1";

/// Errors from [`load_dataset`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid dataset (bad magic, truncation, or
    /// inconsistent counts).
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "dataset i/o error: {e}"),
            LoadError::Format(msg) => write!(f, "invalid dataset file: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(_) => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn put_u32_slice(buf: &mut BytesMut, values: impl IntoIterator<Item = u32>) {
    for v in values {
        buf.put_u32_le(v);
    }
}

/// Serializes a dataset to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(dataset.name.len() as u32);
    buf.put_slice(dataset.name.as_bytes());
    buf.put_u32_le(dataset.num_nodes() as u32);
    buf.put_u32_le(dataset.graph.num_edges() as u32);
    buf.put_u32_le(dataset.feature_dim() as u32);
    buf.put_u32_le(dataset.num_classes as u32);
    buf.put_u32_le(dataset.train_idx.len() as u32);
    buf.put_u32_le(dataset.val_idx.len() as u32);
    buf.put_u32_le(dataset.test_idx.len() as u32);
    for (u, v, _) in dataset.graph.iter_edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    put_u32_slice(&mut buf, dataset.labels.iter().map(|&l| l as u32));
    put_u32_slice(&mut buf, dataset.train_idx.iter().copied());
    put_u32_slice(&mut buf, dataset.val_idx.iter().copied());
    put_u32_slice(&mut buf, dataset.test_idx.iter().copied());
    for &f in dataset.features.data() {
        buf.put_f32_le(f);
    }
    fs::write(path, &buf)
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<(), LoadError> {
    if buf.remaining() < bytes {
        return Err(LoadError::Format(format!(
            "truncated while reading {what} ({bytes} bytes needed, {} left)",
            buf.remaining()
        )));
    }
    Ok(())
}

fn read_u32_vec(buf: &mut Bytes, n: usize, what: &str) -> Result<Vec<u32>, LoadError> {
    need(buf, n * 4, what)?;
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

/// Loads a dataset written by [`save_dataset`].
///
/// # Errors
///
/// [`LoadError::Io`] on filesystem problems, [`LoadError::Format`] when
/// the file is not a valid dataset image.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, LoadError> {
    let mut buf = Bytes::from(fs::read(path)?);
    need(&buf, MAGIC.len(), "magic")?;
    if &buf.split_to(MAGIC.len())[..] != MAGIC {
        return Err(LoadError::Format("bad magic".into()));
    }
    need(&buf, 4, "name length")?;
    let name_len = buf.get_u32_le() as usize;
    need(&buf, name_len, "name")?;
    let name = String::from_utf8(buf.split_to(name_len).to_vec())
        .map_err(|_| LoadError::Format("name is not UTF-8".into()))?;
    need(&buf, 7 * 4, "header counts")?;
    let n = buf.get_u32_le() as usize;
    let e = buf.get_u32_le() as usize;
    let d = buf.get_u32_le() as usize;
    let classes = buf.get_u32_le() as usize;
    let n_train = buf.get_u32_le() as usize;
    let n_val = buf.get_u32_le() as usize;
    let n_test = buf.get_u32_le() as usize;

    let flat_edges = read_u32_vec(&mut buf, e * 2, "edges")?;
    let edges: Vec<(NodeId, NodeId)> = flat_edges.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let labels: Vec<usize> = read_u32_vec(&mut buf, n, "labels")?
        .into_iter()
        .map(|l| l as usize)
        .collect();
    let train_idx = read_u32_vec(&mut buf, n_train, "train split")?;
    let val_idx = read_u32_vec(&mut buf, n_val, "val split")?;
    let test_idx = read_u32_vec(&mut buf, n_test, "test split")?;
    need(&buf, n * d * 4, "features")?;
    let feats: Vec<f32> = (0..n * d).map(|_| buf.get_f32_le()).collect();

    for &(u, v) in &edges {
        if u as usize >= n || v as usize >= n {
            return Err(LoadError::Format(format!("edge ({u},{v}) out of range")));
        }
    }
    let dataset = Dataset {
        name,
        graph: CsrGraph::from_edges(n, &edges),
        features: Tensor::from_vec(feats, &[n, d])
            .map_err(|e| LoadError::Format(e.to_string()))?,
        labels,
        num_classes: classes,
        train_idx,
        val_idx,
        test_idx,
    };
    dataset.validate().map_err(LoadError::Format)?;
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("betty-io-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(6).generate(1);
        let path = tmp("roundtrip");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.graph, ds.graph);
        assert_eq!(loaded.features, ds.features);
        assert_eq!(loaded.labels, ds.labels);
        assert_eq!(loaded.train_idx, ds.train_idx);
        assert_eq!(loaded.val_idx, ds.val_idx);
        assert_eq!(loaded.test_idx, ds.test_idx);
        assert_eq!(loaded.num_classes, ds.num_classes);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a dataset").unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(4).generate(2);
        let path = tmp("trunc");
        save_dataset(&ds, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_dataset(tmp("does-not-exist")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(!err.to_string().is_empty());
    }
}

//! Binary dataset serialization.
//!
//! Generated datasets take seconds to rebuild, but real-world graphs
//! (edge lists + features exported from OGB, say) need a load path. The
//! format is a single little-endian binary file:
//!
//! ```text
//! magic "BTYDATA1" | name | counts | edges (u32 pairs) | labels (u32)
//! | splits (u32 lists) | features (f32 row-major)
//! ```

use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_graph::{CsrGraph, NodeId};
use betty_tensor::Tensor;

use crate::{DataError, Dataset};

const MAGIC: &[u8; 8] = b"BTYDATA1";

/// Errors from [`load_dataset`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid dataset (bad magic, truncation, or
    /// inconsistent counts).
    Format(String),
    /// The file parsed but its content is defective (out-of-range edge
    /// endpoints, non-finite features, split overlap) — see
    /// [`DataError`] for which element is at fault.
    Data(DataError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "dataset i/o error: {e}"),
            LoadError::Format(msg) => write!(f, "invalid dataset file: {msg}"),
            LoadError::Data(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Format(_) => None,
            LoadError::Data(e) => Some(e),
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DataError> for LoadError {
    fn from(e: DataError) -> Self {
        LoadError::Data(e)
    }
}

/// Writes `bytes` to `path` atomically: the data goes to a same-directory
/// temp file, is fsynced, then renamed over the destination (with a
/// best-effort directory fsync), so `path` either keeps its old content
/// or holds the complete new image — never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn put_u32_slice(buf: &mut BytesMut, values: impl IntoIterator<Item = u32>) {
    for v in values {
        buf.put_u32_le(v);
    }
}

/// Serializes a dataset to `path`, atomically: a crash (or SIGKILL)
/// mid-save leaves either the previous file or the complete new one,
/// never a truncated image.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(dataset.name.len() as u32);
    buf.put_slice(dataset.name.as_bytes());
    buf.put_u32_le(dataset.num_nodes() as u32);
    buf.put_u32_le(dataset.graph.num_edges() as u32);
    buf.put_u32_le(dataset.feature_dim() as u32);
    buf.put_u32_le(dataset.num_classes as u32);
    buf.put_u32_le(dataset.train_idx.len() as u32);
    buf.put_u32_le(dataset.val_idx.len() as u32);
    buf.put_u32_le(dataset.test_idx.len() as u32);
    for (u, v, _) in dataset.graph.iter_edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    put_u32_slice(&mut buf, dataset.labels.iter().map(|&l| l as u32));
    put_u32_slice(&mut buf, dataset.train_idx.iter().copied());
    put_u32_slice(&mut buf, dataset.val_idx.iter().copied());
    put_u32_slice(&mut buf, dataset.test_idx.iter().copied());
    // Features always serialize densely, whatever backend the in-memory
    // dataset uses — the file format is backend-agnostic.
    for &f in dataset.features.to_dense().data() {
        buf.put_f32_le(f);
    }
    write_atomic(path.as_ref(), &buf)
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<(), LoadError> {
    if buf.remaining() < bytes {
        return Err(LoadError::Format(format!(
            "truncated while reading {what} ({bytes} bytes needed, {} left)",
            buf.remaining()
        )));
    }
    Ok(())
}

fn read_u32_vec(buf: &mut Bytes, n: usize, what: &str) -> Result<Vec<u32>, LoadError> {
    need(buf, n * 4, what)?;
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

/// Loads a dataset written by [`save_dataset`].
///
/// # Errors
///
/// [`LoadError::Io`] on filesystem problems, [`LoadError::Format`] when
/// the file is not a valid dataset image.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, LoadError> {
    let mut buf = Bytes::from(fs::read(path)?);
    need(&buf, MAGIC.len(), "magic")?;
    if &buf.split_to(MAGIC.len())[..] != MAGIC {
        return Err(LoadError::Format("bad magic".into()));
    }
    need(&buf, 4, "name length")?;
    let name_len = buf.get_u32_le() as usize;
    need(&buf, name_len, "name")?;
    let name = String::from_utf8(buf.split_to(name_len).to_vec())
        .map_err(|_| LoadError::Format("name is not UTF-8".into()))?;
    need(&buf, 7 * 4, "header counts")?;
    let n = buf.get_u32_le() as usize;
    let e = buf.get_u32_le() as usize;
    let d = buf.get_u32_le() as usize;
    let classes = buf.get_u32_le() as usize;
    let n_train = buf.get_u32_le() as usize;
    let n_val = buf.get_u32_le() as usize;
    let n_test = buf.get_u32_le() as usize;

    let flat_edges = read_u32_vec(&mut buf, e * 2, "edges")?;
    let edges: Vec<(NodeId, NodeId)> = flat_edges.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let labels: Vec<usize> = read_u32_vec(&mut buf, n, "labels")?
        .into_iter()
        .map(|l| l as usize)
        .collect();
    let train_idx = read_u32_vec(&mut buf, n_train, "train split")?;
    let val_idx = read_u32_vec(&mut buf, n_val, "val split")?;
    let test_idx = read_u32_vec(&mut buf, n_test, "test split")?;
    need(&buf, n * d * 4, "features")?;
    let feats: Vec<f32> = (0..n * d).map(|_| buf.get_f32_le()).collect();

    for (i, &(u, v)) in edges.iter().enumerate() {
        if u as usize >= n || v as usize >= n {
            return Err(LoadError::Data(DataError::EdgeOutOfRange {
                edge_index: i,
                src: u,
                dst: v,
                num_nodes: n,
            }));
        }
    }
    let dataset = Dataset {
        name,
        graph: CsrGraph::from_edges(n, &edges),
        features: Tensor::from_vec(feats, &[n, d])
            .map_err(|e| LoadError::Format(e.to_string()))?
            .into(),
        labels,
        num_classes: classes,
        train_idx,
        val_idx,
        test_idx,
    };
    dataset.check()?;
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("betty-io-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(6).generate(1);
        let path = tmp("roundtrip");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.graph, ds.graph);
        assert_eq!(loaded.features, ds.features);
        assert_eq!(loaded.labels, ds.labels);
        assert_eq!(loaded.train_idx, ds.train_idx);
        assert_eq!(loaded.val_idx, ds.val_idx);
        assert_eq!(loaded.test_idx, ds.test_idx);
        assert_eq!(loaded.num_classes, ds.num_classes);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a dataset").unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(4).generate(2);
        let path = tmp("trunc");
        save_dataset(&ds, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, LoadError::Format(_)), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_dataset(tmp("does-not-exist")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_file() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(4).generate(5);
        let path = tmp("atomic");
        // Overwrite an existing file to exercise the rename-over path.
        std::fs::write(&path, b"old content").unwrap();
        save_dataset(&ds, &path).unwrap();
        let mut tmp_name = path.file_name().unwrap().to_os_string();
        tmp_name.push(".tmp");
        assert!(
            !path.with_file_name(tmp_name).exists(),
            "temp file must be renamed away"
        );
        let loaded = load_dataset(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.graph, ds.graph);
    }

    /// Byte offset where the edge list starts in a serialized dataset.
    fn edges_offset(ds: &Dataset) -> usize {
        MAGIC.len() + 4 + ds.name.len() + 7 * 4
    }

    #[test]
    fn out_of_range_edge_is_a_structured_data_error() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(4).generate(6);
        let path = tmp("bad-edge");
        save_dataset(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Point the second edge's source at a nonexistent node.
        let off = edges_offset(&ds) + 8;
        let bad = (ds.num_nodes() as u32 + 41).to_le_bytes();
        bytes[off..off + 4].copy_from_slice(&bad);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        match err {
            LoadError::Data(DataError::EdgeOutOfRange {
                edge_index,
                src,
                num_nodes,
                ..
            }) => {
                assert_eq!(edge_index, 1);
                assert_eq!(src as usize, ds.num_nodes() + 41);
                assert_eq!(num_nodes, ds.num_nodes());
            }
            other => panic!("expected EdgeOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_feature_is_a_structured_data_error() {
        let ds = DatasetSpec::cora().scaled(0.05).with_feature_dim(4).generate(7);
        let path = tmp("nan-feature");
        save_dataset(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Features are the file's tail: poison the last value.
        let off = bytes.len() - 4;
        bytes[off..].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load_dataset(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("non-finite"), "{err}");
        match err {
            LoadError::Data(DataError::NonFiniteFeature { node, dim, .. }) => {
                assert_eq!(node, ds.num_nodes() - 1);
                assert_eq!(dim, ds.feature_dim() - 1);
            }
            other => panic!("expected NonFiniteFeature, got {other:?}"),
        }
    }
}

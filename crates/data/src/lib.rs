//! Synthetic datasets for the Betty reproduction.
//!
//! The paper evaluates on Cora, Pubmed, Reddit, ogbn-arxiv and
//! ogbn-products (Table 4). Those datasets are external downloads; this
//! crate substitutes generators that reproduce the *properties Betty's
//! results depend on*:
//!
//! * **power-law in-degree** — drives the in-degree bucketing explosion
//!   (Fig. 9) and the load imbalance Betty's memory-aware partitioning
//!   fixes; produced by preferential attachment.
//! * **community structure** — drives shared-neighbor redundancy (what REG
//!   measures) and gives the Metis baseline something to find; produced by
//!   a planted partition overlay.
//! * **label-correlated features** — make accuracy/convergence curves
//!   (Figs. 4 & 13, Table 5) meaningful: features are noisy community
//!   centroids, so a GNN genuinely learns.
//!
//! [`DatasetSpec`] carries the per-dataset shape constants from Table 4;
//! [`DatasetSpec::generate`] materializes a [`Dataset`] at any scale.
//!
//! # Example
//!
//! ```
//! use betty_data::DatasetSpec;
//!
//! // ogbn-arxiv-like graph at 1% scale.
//! let ds = DatasetSpec::ogbn_arxiv().scaled(0.01).generate(7);
//! assert!(ds.graph.num_nodes() > 1000);
//! assert_eq!(ds.features.rows(), ds.graph.num_nodes());
//! assert!(!ds.train_idx.is_empty());
//! ```

#![deny(missing_docs)]

mod dataset;
pub mod featurestore;
mod generate;
pub mod io;
mod spec;

pub use dataset::{DataError, Dataset};
pub use featurestore::{
    scrub, DenseFeatures, FeatureStore, FeatureStoreError, Features, GatherStats, PagedFeatures,
    ReadFault, ScrubReport, StorageFaultHook, StorageIncident, DEFAULT_MAX_IO_RETRIES, META_FILE,
    PARITY_META_FILE,
};
pub use generate::{planted_power_law, PlantedPowerLawConfig};
pub use io::{load_dataset, save_dataset, LoadError};
pub use spec::DatasetSpec;

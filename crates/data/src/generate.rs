//! Community-structured power-law graph generator.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_graph::{CsrGraph, NodeId};

/// Parameters of [`planted_power_law`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedPowerLawConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of planted communities (= label classes).
    pub num_communities: usize,
    /// Edges attached per arriving node (preferential attachment).
    pub edges_per_node: usize,
    /// Probability that an edge endpoint is drawn from the whole graph
    /// rather than the node's own community (0 = perfectly separable).
    pub inter_community_p: f64,
    /// Probability that a target is drawn uniformly from earlier arrivals
    /// instead of by preferential attachment — 0 gives the classic
    /// hub-heavy Barabási–Albert tail, higher values diversify neighbor
    /// lists (flatter tail, like co-purchase graphs).
    pub uniform_attachment_p: f64,
}

impl PlantedPowerLawConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, communities exceed nodes, or the
    /// mixing probability is outside `[0, 1]`.
    fn validate(&self) {
        assert!(self.num_nodes > 0, "need at least one node");
        assert!(self.num_communities > 0, "need at least one community");
        assert!(
            self.num_communities <= self.num_nodes,
            "more communities than nodes"
        );
        assert!(self.edges_per_node > 0, "need at least one edge per node");
        assert!(
            (0.0..=1.0).contains(&self.inter_community_p),
            "inter_community_p must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.uniform_attachment_p),
            "uniform_attachment_p must be a probability"
        );
    }
}

/// Generates a directed community-structured preferential-attachment graph
/// plus the planted community label of every node.
///
/// Construction: nodes are dealt round-robin into communities and arrive in
/// random order; each arrival draws `edges_per_node` targets by
/// preferential attachment (size-biased over earlier arrivals) restricted
/// to its community with probability `1 - inter_community_p`. Edges point
/// *arrival → target*, so earlier (popular) nodes accumulate power-law
/// **in**-degree — the distribution GNN aggregation and Fig. 9 care about.
///
/// Deterministic for a given seed.
pub fn planted_power_law(config: &PlantedPowerLawConfig, seed: u64) -> (CsrGraph, Vec<usize>) {
    config.validate();
    let mut rng = Pcg64Mcg::seed_from_u64(seed);
    let n = config.num_nodes;
    let k = config.num_communities;
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();

    let mut arrival: Vec<u32> = (0..n as u32).collect();
    arrival.shuffle(&mut rng);

    // Size-biased sampling pools: repeated node ids, globally and per
    // community (the classic Barabási–Albert "urn" implementation).
    let mut global_pool: Vec<u32> = Vec::with_capacity(n * config.edges_per_node * 2);
    let mut community_pool: Vec<Vec<u32>> = vec![Vec::new(); k];
    // Uniform pools hold each arrived node once (uniform choice), the
    // attachment pools hold one copy per received edge (size-biased).
    let mut global_uniform: Vec<u32> = Vec::with_capacity(n);
    let mut community_uniform: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * config.edges_per_node);

    for &u in &arrival {
        let c = labels[u as usize];
        for _ in 0..config.edges_per_node {
            let cross = rng.gen_bool(config.inter_community_p);
            let uniform = rng.gen_bool(config.uniform_attachment_p);
            let pool: &Vec<u32> = match (uniform, cross) {
                (true, true) => &global_uniform,
                (true, false) => &community_uniform[c],
                (false, true) => &global_pool,
                (false, false) => &community_pool[c],
            };
            let target = if pool.is_empty() {
                // Bootstrap: no earlier node in the pool yet.
                if global_pool.is_empty() {
                    break;
                }
                global_pool[rng.gen_range(0..global_pool.len())]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if target != u {
                edges.push((u, target));
                // Receiving an edge increases the target's attachment mass.
                global_pool.push(target);
                community_pool[labels[target as usize]].push(target);
            }
        }
        // The arrival itself becomes attachable.
        global_pool.push(u);
        community_pool[c].push(u);
        global_uniform.push(u);
        community_uniform[c].push(u);
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_graph::degree;

    fn config(n: usize) -> PlantedPowerLawConfig {
        PlantedPowerLawConfig {
            num_nodes: n,
            num_communities: 4,
            edges_per_node: 5,
            inter_community_p: 0.1,
            uniform_attachment_p: 0.0,
        }
    }

    #[test]
    fn node_and_edge_counts() {
        let (g, labels) = planted_power_law(&config(500), 1);
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(labels.len(), 500);
        // Every non-bootstrap arrival contributes ~edges_per_node edges.
        assert!(g.num_edges() > 500 * 3, "{} edges", g.num_edges());
        assert!(g.num_edges() <= 500 * 5);
    }

    #[test]
    fn deterministic() {
        let (a, la) = planted_power_law(&config(200), 42);
        let (b, lb) = planted_power_law(&config(200), 42);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let (g, _) = planted_power_law(&config(3000), 7);
        let degs = g.in_degrees();
        let stats = degree::stats(&degs);
        // Preferential attachment: max in-degree far above the mean.
        assert!(
            stats.max as f64 > 10.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
        // And a long tail exists: the clamped histogram's last bucket is
        // non-trivial (the bucketing-explosion precondition).
        let hist = degree::bucketed_histogram(&degs, 10);
        assert!(hist[10] > 30, "tail bucket {}", hist[10]);
    }

    #[test]
    fn communities_are_assortative() {
        let (g, labels) = planted_power_law(&config(2000), 3);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.iter_edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra as f64 > 3.0 * inter as f64,
            "intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn labels_cover_all_communities() {
        let (_, labels) = planted_power_law(&config(100), 5);
        for c in 0..4 {
            assert!(labels.contains(&c), "community {c} empty");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let mut c = config(10);
        c.inter_community_p = 1.5;
        planted_power_law(&c, 0);
    }
}

//! Node-feature storage backends.
//!
//! Betty's Eq. 5 planner bounds *activation* memory, but the node-feature
//! matrix itself was a single dense in-memory [`Tensor`] — capping
//! reachable graph scale at whatever the host can hold. This module puts
//! features behind the [`FeatureStore`] trait with two implementations:
//!
//! * [`DenseFeatures`] — the original in-memory matrix. Zero overhead;
//!   every gather is a hit.
//! * [`PagedFeatures`] — features live on disk as fixed-row shards
//!   (`shard-NNNNN.bfs`, CRC-32-checked like the v2 checkpoint format),
//!   and a byte-budgeted pinned hot-set cache holds the shards the
//!   sampler is actually touching, evicting in least-recently-used order
//!   of the *gather access pattern*.
//!
//! The two backends are **value-identical**: a gather returns the exact
//! same `f32` bits either way, so training through a paged store is
//! bit-identical to training in memory (this is property-tested). Only
//! the accounting differs: the paged store reports cache hits/misses and
//! page-in traffic, which the trainer feeds through its transfer cost
//! model and charges to the `FeatureCache` ledger category.
//!
//! ## Storage dtype
//!
//! Both backends can hold features at a 16-bit storage width
//! ([`DType::Bf16`] / [`DType::F16`]): values are encoded once with
//! round-to-nearest-even and decoded back to f32 on every gather, so the
//! bytes held in memory, in the paged cache, and on disk all halve while
//! compute stays f32. Quantization is idempotent — spilling an
//! already-quantized dense store re-encodes to the identical bits.
//!
//! ## Shard layout
//!
//! ```text
//! meta file "features.meta" (v1 — f32 stores, unchanged on disk):
//!   magic "BTYFMET1" | rows u32 | cols u32 | page_rows u32 | crc32
//! meta file (v2 — written for 16-bit dtypes):
//!   magic "BTYFMET2" | rows u32 | cols u32 | page_rows u32
//!   | dtype tag u32 | crc32
//! shard file "shard-NNNNN.bfs" (one per `page_rows` rows):
//!   v1: magic "BTYFSHD1" | shard u32 | start_row u32 | num_rows u32
//!       | cols u32 | payload (num_rows × cols f32 LE) | crc32
//!   v2: magic "BTYFSHD2" | shard u32 | start_row u32 | num_rows u32
//!       | cols u32 | dtype tag u32 | payload (num_rows × cols u16 LE)
//!       | crc32
//! ```
//!
//! Every file's CRC covers everything after its magic. [`PagedFeatures::open`]
//! verifies every shard (existence, header consistency, full CRC) up
//! front — a truncated or bit-flipped shard is rejected at open with a
//! structured [`FeatureStoreError::Format`], never silently trained on.
//!
//! ## Storage fault tolerance
//!
//! Mid-run, every physical shard read re-validates the full container
//! (magic, header, CRC) instead of trusting the open-time check:
//!
//! * **Transient I/O errors** (real, or injected through an armed
//!   [`StorageFaultHook`]) are retried with seeded-jitter exponential
//!   backoff, bounded by a configurable retry budget. Backoff and stall
//!   seconds are *accounted, never slept* — numerics are untouched.
//! * **On-disk corruption** (CRC mismatch, truncation, even a deleted
//!   shard file) is repaired in place from an **XOR parity group** when
//!   the store was spilled with `parity > 0`: every `parity` consecutive
//!   data shards share one parity shard, so any single damaged member is
//!   reconstructed bit-identically (verified against per-shard payload
//!   CRCs recorded in the parity sidecar) and atomically re-persisted.
//! * Two damaged members in one group — or damage without parity — is a
//!   structured [`FeatureStoreError::Shard`] carrying the shard index
//!   and byte offset, surfaced through the fallible gather path instead
//!   of a panic.
//!
//! Parity sidecar layout (absent unless spilled with `parity > 0`, so
//! plain stores stay byte-identical to the v1/v2 formats):
//!
//! ```text
//! parity meta "parity.meta":
//!   magic "BTYFPMT1" | parity_width u32 | shard_count u32
//!   | payload crc32 per data shard (u32 × shard_count) | crc32
//! parity shard "parity-NNNNN.bfp" (one per group):
//!   magic "BTYFPAR1" | group u32 | first_shard u32 | num_shards u32
//!   | payload_len u32 | XOR of member payloads (zero-padded) | crc32
//! ```
//!
//! [`scrub`] performs the same validation + repair pass offline over a
//! store directory, rebuilding damaged parity shards from intact data
//! shards as well.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_tensor::{DType, Tensor};

const META_MAGIC: &[u8; 8] = b"BTYFMET1";
const META_MAGIC_V2: &[u8; 8] = b"BTYFMET2";
const SHARD_MAGIC: &[u8; 8] = b"BTYFSHD1";
const SHARD_MAGIC_V2: &[u8; 8] = b"BTYFSHD2";
const PARITY_META_MAGIC: &[u8; 8] = b"BTYFPMT1";
const PARITY_MAGIC: &[u8; 8] = b"BTYFPAR1";
/// File name of the paged-store metadata header inside a store dir
/// (public so offline tools can probe "is this a paged store?").
pub const META_FILE: &str = "features.meta";
/// File name of the optional XOR-parity sidecar metadata.
pub const PARITY_META_FILE: &str = "parity.meta";

/// Default transient-I/O retry budget per logical shard read (the
/// training layer overrides this from `RetryPolicy::max_io_retries`).
pub const DEFAULT_MAX_IO_RETRIES: usize = 3;

/// Base of the simulated exponential retry backoff:
/// `base · 2^attempt · (0.5 + jitter)` seconds, jitter in `[0, 1)`.
const IO_BACKOFF_BASE_SEC: f64 = 5e-3;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — the same polynomial the checkpoint format
// uses; betty-nn sits *above* betty-data in the dependency order, so the
// table is re-derived here rather than imported.

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            k += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors.

/// Failure opening, writing, or validating a paged feature store.
#[derive(Debug)]
pub enum FeatureStoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A meta or shard file is structurally invalid: bad magic,
    /// truncation, a header inconsistent with the meta file, or a CRC
    /// mismatch.
    Format(String),
    /// A specific shard failed mid-run and could not be brought back:
    /// transient errors exhausted the retry budget, or on-disk damage
    /// could not be repaired from parity.
    Shard {
        /// Index of the failing data shard.
        shard: usize,
        /// Byte offset within the shard file where validation failed
        /// (0 when the failure has no meaningful position, e.g. a
        /// missing file or an exhausted retry budget).
        offset: u64,
        /// What went wrong, including the repair outcome.
        detail: String,
    },
}

impl fmt::Display for FeatureStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureStoreError::Io(e) => write!(f, "feature store i/o error: {e}"),
            FeatureStoreError::Format(msg) => write!(f, "invalid feature store: {msg}"),
            FeatureStoreError::Shard {
                shard,
                offset,
                detail,
            } => write!(
                f,
                "feature shard {shard} failed at byte offset {offset}: {detail}"
            ),
        }
    }
}

impl std::error::Error for FeatureStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureStoreError::Io(e) => Some(e),
            FeatureStoreError::Format(_) | FeatureStoreError::Shard { .. } => None,
        }
    }
}

impl From<io::Error> for FeatureStoreError {
    fn from(e: io::Error) -> Self {
        FeatureStoreError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Gather accounting.

/// Cache accounting for one gather (or prewarm) against a feature store.
///
/// Dense stores report every row as a hit and never page. All counts are
/// deterministic functions of the access sequence, so they are safe to
/// compare across thread counts (they are *not* comparable across
/// backends — that is the point of having them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GatherStats {
    /// Rows served from memory (dense) or from an already-resident shard.
    pub hits: u64,
    /// Rows whose shard had to be paged in first.
    pub misses: u64,
    /// Shard loads performed.
    pub pages_in: u64,
    /// Bytes read from disk by those shard loads.
    pub bytes_in: u64,
    /// Transient-I/O retries performed during shard loads.
    pub io_retries: u64,
    /// Shards reconstructed from XOR parity during shard loads.
    pub shards_repaired: u64,
    /// Bytes re-read from disk (group peers + parity) by reconstructions.
    pub repair_bytes: u64,
    /// Simulated seconds of injected read stalls and retry backoff
    /// (accounted, never slept — numerics are untouched).
    pub backoff_sec: f64,
}

impl GatherStats {
    /// Accumulates another gather's counters into this one.
    pub fn absorb(&mut self, other: &GatherStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.pages_in += other.pages_in;
        self.bytes_in += other.bytes_in;
        self.io_retries += other.io_retries;
        self.shards_repaired += other.shards_repaired;
        self.repair_bytes += other.repair_bytes;
        self.backoff_sec += other.backoff_sec;
    }
}

// ---------------------------------------------------------------------------
// Storage chaos hook.

/// Verdict for one physical shard-read attempt from an armed
/// [`StorageFaultHook`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReadFault {
    /// The attempt should fail with a transient I/O error.
    pub fail: bool,
    /// Simulated NVMe stall seconds charged to the attempt.
    pub stall_sec: f64,
}

/// Seedable storage-chaos source consulted before every physical shard
/// read. `betty-data` sits below the fault-injection crate in the
/// dependency order, so the concrete injector (seeded PCG stream in
/// `betty-device`) is adapted onto this trait by the training layer.
pub trait StorageFaultHook: Send {
    /// Verdict for attempt `attempt` (zero-based) of reading `shard`.
    fn check_read(&mut self, shard: usize, attempt: usize) -> ReadFault;

    /// Jitter in `[0, 1)` for the retry backoff, drawn from the hook's
    /// own seeded stream so backoff timing is replayable.
    fn backoff_jitter(&mut self) -> f64;
}

/// One storage-recovery action the store performed, drained by the
/// training layer into its recovery log and trace.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageIncident {
    /// A transient shard-read failure was retried after a simulated
    /// backoff.
    IoRetry {
        /// Shard whose read failed.
        shard: usize,
        /// Zero-based attempt index that failed.
        attempt: usize,
        /// Simulated seconds of backoff before the next attempt.
        backoff_sec: f64,
    },
    /// A damaged shard was reconstructed from its XOR parity group and
    /// re-persisted.
    ShardRepaired {
        /// Shard that was reconstructed.
        shard: usize,
        /// Parity group it belongs to.
        group: usize,
        /// Bytes re-read from disk (peers + parity) to rebuild it.
        repair_bytes: u64,
    },
}

// ---------------------------------------------------------------------------
// The trait.

/// A source of node-feature rows.
///
/// Implementations must be value-identical for the same logical matrix:
/// `gather_into` writes the exact same `f32` bits regardless of backend,
/// so the storage choice can never move a training trajectory. Shared
/// references must be usable from multiple threads (`Sync`); paged
/// backends guard their cache internally.
pub trait FeatureStore: fmt::Debug + Send + Sync {
    /// Number of feature rows (nodes).
    fn rows(&self) -> usize;

    /// Feature dimensionality (columns).
    fn cols(&self) -> usize;

    /// Copies the given rows into `out` (row-major, `indices.len() × cols`)
    /// and reports the cache accounting of the access.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != indices.len() * cols`, if an index is out
    /// of range, or (paged stores) if a shard read fails at runtime —
    /// shards are fully validated at open, so this only fires if the
    /// backing files are deleted or the device dies mid-training.
    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats;

    /// Fallible [`FeatureStore::gather_into`]: paged stores surface an
    /// unrecoverable shard failure (retry budget exhausted, unrepairable
    /// corruption) as a structured error instead of panicking. Dense
    /// stores never fail.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Shard`] naming the shard and byte offset.
    fn try_gather_into(
        &self,
        indices: &[usize],
        out: &mut [f32],
    ) -> Result<GatherStats, FeatureStoreError> {
        Ok(self.gather_into(indices, out))
    }

    /// Pages in (and pins, subject to the cache budget) every shard the
    /// given rows live on, without copying any row out. Dense stores do
    /// nothing. Prefetchers call this so a later `gather_into` for the
    /// same rows hits memory.
    fn prewarm(&self, indices: &[usize]) -> GatherStats {
        let _ = indices;
        GatherStats::default()
    }

    /// Fallible [`FeatureStore::prewarm`], mirroring
    /// [`FeatureStore::try_gather_into`].
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Shard`] naming the shard and byte offset.
    fn try_prewarm(&self, indices: &[usize]) -> Result<GatherStats, FeatureStoreError> {
        Ok(self.prewarm(indices))
    }

    /// Materializes the full matrix as a dense tensor.
    fn to_dense(&self) -> Tensor;

    /// Bytes of host/device memory the store pins for its hot-set cache:
    /// 0 for dense stores, `min(cache budget, total feature bytes)` for
    /// paged ones. The trainer charges exactly this many bytes to the
    /// `FeatureCache` ledger category every step, and the planner adds
    /// the same constant to every estimate — so estimator drift stays
    /// exact.
    fn cache_reservation_bytes(&self) -> usize {
        0
    }

    /// Flat index and value of the first non-finite feature, if any.
    fn find_non_finite(&self) -> Option<(usize, f32)>;
}

// ---------------------------------------------------------------------------
// Dense backend.

/// The original in-memory backend: a dense `[rows, cols]` matrix, held
/// either as an f32 tensor (the default) or as 16-bit encoded values at a
/// half-width storage dtype.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseFeatures {
    storage: DenseStorage,
    cols: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum DenseStorage {
    F32(Tensor),
    Half {
        dtype: DType,
        rows: usize,
        bits: Vec<u16>,
    },
}

impl DenseFeatures {
    /// Wraps a dense f32 tensor (no quantization).
    pub fn new(tensor: Tensor) -> Self {
        let cols = tensor.cols();
        DenseFeatures {
            storage: DenseStorage::F32(tensor),
            cols,
        }
    }

    /// Encodes `tensor` at `dtype` width. `F32` stores the tensor as-is.
    pub fn with_dtype(tensor: Tensor, dtype: DType) -> Self {
        if dtype == DType::F32 {
            return Self::new(tensor);
        }
        let (rows, cols) = (tensor.rows(), tensor.cols());
        let bits = tensor.data().iter().map(|&v| dtype.encode16(v)).collect();
        DenseFeatures {
            storage: DenseStorage::Half { dtype, rows, bits },
            cols,
        }
    }

    /// The storage width of this store.
    pub fn dtype(&self) -> DType {
        match &self.storage {
            DenseStorage::F32(_) => DType::F32,
            DenseStorage::Half { dtype, .. } => *dtype,
        }
    }
}

impl FeatureStore for DenseFeatures {
    fn rows(&self) -> usize {
        match &self.storage {
            DenseStorage::F32(t) => t.rows(),
            DenseStorage::Half { rows, .. } => *rows,
        }
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        match &self.storage {
            DenseStorage::F32(t) => {
                betty_tensor::segment::gather_rows_into(t, indices, out);
            }
            DenseStorage::Half { dtype, rows, bits } => {
                let cols = self.cols;
                assert_eq!(out.len(), indices.len() * cols, "gather output length mismatch");
                for (slot, &idx) in indices.iter().enumerate() {
                    assert!(idx < *rows, "gather index {idx} out of bounds for {rows} rows");
                    let src = &bits[idx * cols..(idx + 1) * cols];
                    for (o, &b) in out[slot * cols..(slot + 1) * cols].iter_mut().zip(src) {
                        *o = dtype.decode16(b);
                    }
                }
            }
        }
        GatherStats {
            hits: indices.len() as u64,
            ..GatherStats::default()
        }
    }

    fn to_dense(&self) -> Tensor {
        match &self.storage {
            DenseStorage::F32(t) => t.clone(),
            DenseStorage::Half { dtype, rows, bits } => {
                let data = bits.iter().map(|&b| dtype.decode16(b)).collect();
                Tensor::from_vec(data, &[*rows, self.cols]).expect("encoded geometry is consistent")
            }
        }
    }

    fn find_non_finite(&self) -> Option<(usize, f32)> {
        match &self.storage {
            DenseStorage::F32(t) => t
                .data()
                .iter()
                .enumerate()
                .find(|(_, v)| !v.is_finite())
                .map(|(i, &v)| (i, v)),
            DenseStorage::Half { dtype, bits, .. } => bits
                .iter()
                .map(|&b| dtype.decode16(b))
                .enumerate()
                .find(|(_, v)| !v.is_finite()),
        }
    }
}

// ---------------------------------------------------------------------------
// Paged backend.

/// One shard's location on disk plus its payload geometry.
#[derive(Debug, Clone)]
struct ShardInfo {
    path: PathBuf,
    start_row: usize,
    num_rows: usize,
}

/// One resident shard's payload at its storage width. Half-width shards
/// stay encoded in the cache — the byte savings the planner budgets for
/// are real in the hot set, not just on disk — and decode per gathered
/// row on the way out.
#[derive(Debug)]
enum ShardPayload {
    F32(Vec<f32>),
    Half(Vec<u16>),
}

impl ShardPayload {
    fn byte_len(&self) -> usize {
        match self {
            ShardPayload::F32(v) => v.len() * 4,
            ShardPayload::Half(v) => v.len() * 2,
        }
    }

    /// Decodes one `cols`-wide row into `out`.
    fn copy_row(&self, dtype: DType, local: usize, cols: usize, out: &mut [f32]) {
        match self {
            ShardPayload::F32(v) => out.copy_from_slice(&v[local * cols..(local + 1) * cols]),
            ShardPayload::Half(v) => {
                for (o, &b) in out.iter_mut().zip(&v[local * cols..(local + 1) * cols]) {
                    *o = dtype.decode16(b);
                }
            }
        }
    }

    /// Decodes the full payload to f32.
    fn to_f32(&self, dtype: DType) -> Vec<f32> {
        match self {
            ShardPayload::F32(v) => v.clone(),
            ShardPayload::Half(v) => v.iter().map(|&b| dtype.decode16(b)).collect(),
        }
    }
}

/// The mutable hot-set cache: resident shard payloads plus LRU bookkeeping.
#[derive(Debug, Default)]
struct CacheState {
    /// Shard index → (payload, last-touch tick).
    resident: HashMap<usize, (ShardPayload, u64)>,
    /// Bytes currently held by `resident` payloads.
    held_bytes: usize,
    /// Monotonic access counter driving LRU order.
    tick: u64,
}

/// XOR parity sidecar contents: group width plus the payload CRC of
/// every data shard (what a reconstruction is verified against).
#[derive(Debug, Clone, PartialEq)]
struct ParityMeta {
    width: usize,
    payload_crcs: Vec<u32>,
}

/// Mutable storage-chaos state: the armed fault hook, the retry budget,
/// and recovery incidents awaiting a drain by the training layer.
struct StorageChaos {
    hook: Option<Box<dyn StorageFaultHook>>,
    max_io_retries: usize,
    incidents: Vec<StorageIncident>,
}

impl Default for StorageChaos {
    fn default() -> Self {
        StorageChaos {
            hook: None,
            max_io_retries: DEFAULT_MAX_IO_RETRIES,
            incidents: Vec::new(),
        }
    }
}

impl fmt::Debug for StorageChaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StorageChaos")
            .field("armed", &self.hook.is_some())
            .field("max_io_retries", &self.max_io_retries)
            .field("pending_incidents", &self.incidents.len())
            .finish()
    }
}

/// How one validated shard read failed.
enum ShardFailure {
    /// Transient-looking I/O error (worth retrying).
    Io(io::Error),
    /// Structural damage at a byte offset (worth repairing, not retrying).
    Corrupt { offset: u64, detail: String },
}

/// Disk-resident features: fixed-row shards plus a byte-budgeted pinned
/// hot-set cache with LRU eviction in gather access order.
///
/// The cache is guarded by a mutex; access order (and therefore every
/// hit/miss/eviction decision) is the sequential order of `gather_into`
/// and `prewarm` calls, which the trainer issues from a single thread —
/// so paged accounting is as deterministic as the training loop itself.
#[derive(Debug)]
pub struct PagedFeatures {
    dir: PathBuf,
    rows: usize,
    cols: usize,
    page_rows: usize,
    dtype: DType,
    shards: Vec<ShardInfo>,
    cache_budget_bytes: usize,
    cache: Mutex<CacheState>,
    parity: Option<ParityMeta>,
    chaos: Mutex<StorageChaos>,
}

impl PagedFeatures {
    /// Writes `features` to `dir` as a paged store (meta file + shards of
    /// `page_rows` rows each, all CRC-checksummed and atomically written)
    /// and opens it with the given cache budget.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the directory or a file cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    pub fn spill(
        features: &Tensor,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        Self::spill_with_dtype(features, dir, page_rows, cache_budget_bytes, DType::F32)
    }

    /// [`PagedFeatures::spill`] encoding the payloads at `dtype` width.
    ///
    /// `F32` writes the v1 format byte-for-byte; 16-bit dtypes write the
    /// v2 format (u16 payloads, dtype tag in meta and every shard header).
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the directory or a file cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    pub fn spill_with_dtype(
        features: &Tensor,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
        dtype: DType,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        Self::spill_with_parity(features, dir, page_rows, cache_budget_bytes, dtype, 0)
    }

    /// [`PagedFeatures::spill_with_dtype`] additionally writing an XOR
    /// parity sidecar: every `parity` consecutive data shards get one
    /// parity shard, so any single damaged member of a group can be
    /// reconstructed bit-identically mid-run (or by [`scrub`]).
    ///
    /// `parity == 0` writes no sidecar — the on-disk bytes are exactly
    /// the plain v1/v2 format. `parity == 1` duplicates each shard's
    /// payload (mirroring); larger widths trade redundancy for space.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the directory or a file cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    pub fn spill_with_parity(
        features: &Tensor,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
        dtype: DType,
        parity: usize,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        assert!(page_rows > 0, "page_rows must be positive");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (rows, cols) = (features.rows(), features.cols());

        let mut meta = BytesMut::new();
        meta.put_u32_le(rows as u32);
        meta.put_u32_le(cols as u32);
        meta.put_u32_le(page_rows as u32);
        if dtype != DType::F32 {
            meta.put_u32_le(dtype.tag());
        }
        let crc = crc32(&meta);
        let mut meta_file = BytesMut::new();
        meta_file.put_slice(if dtype == DType::F32 { META_MAGIC } else { META_MAGIC_V2 });
        meta_file.put_slice(&meta);
        meta_file.put_u32_le(crc);
        write_atomic(&dir.join(META_FILE), &meta_file)?;

        let num_shards = shard_count(rows, page_rows);
        let mut payload_crcs = Vec::with_capacity(num_shards);
        // Current parity group's running XOR (zero-padded to the widest
        // member payload) and its first member, flushed at group
        // boundaries — shards are written in order, so each group's
        // members are consecutive.
        let mut group_xor: Vec<u8> = Vec::new();
        for shard in 0..num_shards {
            let start_row = shard * page_rows;
            let num_rows = page_rows.min(rows - start_row);
            let mut payload = BytesMut::new();
            for r in start_row..start_row + num_rows {
                for &v in features.row(r) {
                    match dtype {
                        DType::F32 => payload.put_f32_le(v),
                        _ => payload.put_u16_le(dtype.encode16(v)),
                    }
                }
            }
            payload_crcs.push(crc32(&payload));
            let file = encode_shard_file(shard, start_row, num_rows, cols, dtype, &payload);
            write_atomic(&dir.join(shard_name(shard)), &file)?;
            if parity > 0 {
                if shard % parity == 0 {
                    group_xor.clear();
                }
                if payload.len() > group_xor.len() {
                    group_xor.resize(payload.len(), 0);
                }
                for (acc, &b) in group_xor.iter_mut().zip(payload.iter()) {
                    *acc ^= b;
                }
                let last_in_group = shard % parity == parity - 1 || shard == num_shards - 1;
                if last_in_group {
                    let group = shard / parity;
                    let first = group * parity;
                    let file = encode_parity_file(group, first, shard - first + 1, &group_xor);
                    write_atomic(&dir.join(parity_name(group)), &file)?;
                }
            }
        }
        if parity > 0 {
            let mut body = BytesMut::new();
            body.put_u32_le(parity as u32);
            body.put_u32_le(num_shards as u32);
            for &crc in &payload_crcs {
                body.put_u32_le(crc);
            }
            let crc = crc32(&body);
            let mut file = BytesMut::new();
            file.put_slice(PARITY_META_MAGIC);
            file.put_slice(&body);
            file.put_u32_le(crc);
            write_atomic(&dir.join(PARITY_META_FILE), &file)?;
        }
        Self::open(dir, cache_budget_bytes)
    }

    /// Opens a paged store written by [`PagedFeatures::spill`], fully
    /// validating the meta file and **every** shard (magic, header
    /// consistency, CRC over the whole body) so later gathers are
    /// infallible.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] on filesystem problems;
    /// [`FeatureStoreError::Format`] for a missing, truncated,
    /// inconsistent, or bit-flipped file.
    pub fn open(
        dir: impl AsRef<Path>,
        cache_budget_bytes: usize,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        let dir = dir.as_ref().to_path_buf();
        let (rows, cols, page_rows, dtype) = read_meta(&dir)?;

        let num_shards = shard_count(rows, page_rows);
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let path = dir.join(shard_name(shard));
            let start_row = shard * page_rows;
            let num_rows = page_rows.min(rows - start_row);
            let (got_start, got_rows) =
                validate_shard(&path, shard, cols, dtype).map_err(|e| match e {
                    FeatureStoreError::Format(msg) => {
                        FeatureStoreError::Format(format!("shard {shard}: {msg}"))
                    }
                    other => other,
                })?;
            if got_start != start_row || got_rows != num_rows {
                return Err(FeatureStoreError::Format(format!(
                    "shard {shard}: header says rows {got_start}..{} but meta expects {start_row}..{}",
                    got_start + got_rows,
                    start_row + num_rows
                )));
            }
            shards.push(ShardInfo {
                path,
                start_row,
                num_rows,
            });
        }
        let parity = if dir.join(PARITY_META_FILE).exists() {
            let meta = load_parity_meta(&dir, num_shards)?;
            for group in 0..num_shards.div_ceil(meta.width) {
                read_parity_payload(&dir, group, meta.width, num_shards).map_err(|msg| {
                    FeatureStoreError::Format(format!("parity shard {group}: {msg}"))
                })?;
            }
            Some(meta)
        } else {
            None
        };
        Ok(Arc::new(Self {
            dir,
            rows,
            cols,
            page_rows,
            dtype,
            shards,
            cache_budget_bytes,
            cache: Mutex::new(CacheState::default()),
            parity,
            chaos: Mutex::new(StorageChaos::default()),
        }))
    }

    /// Width of the XOR parity groups (data shards per parity shard),
    /// or 0 when the store was spilled without parity.
    pub fn parity_width(&self) -> usize {
        self.parity.as_ref().map_or(0, |p| p.width)
    }

    /// Arms a storage-chaos hook: every subsequent physical shard read
    /// consults it for injected transient failures and stalls. Replaces
    /// any previously armed hook and clears pending incidents, so each
    /// training run starts from a clean chaos stream.
    pub fn arm_storage_faults(&self, hook: Box<dyn StorageFaultHook>) {
        let mut chaos = self.chaos.lock().expect("storage chaos state poisoned");
        chaos.hook = Some(hook);
        chaos.incidents.clear();
    }

    /// Removes any armed storage-chaos hook and clears pending incidents.
    pub fn disarm_storage_faults(&self) {
        let mut chaos = self.chaos.lock().expect("storage chaos state poisoned");
        chaos.hook = None;
        chaos.incidents.clear();
    }

    /// Sets the transient-I/O retry budget per logical shard read.
    pub fn set_max_io_retries(&self, max_io_retries: usize) {
        self.chaos
            .lock()
            .expect("storage chaos state poisoned")
            .max_io_retries = max_io_retries;
    }

    /// Removes and returns every storage-recovery incident recorded
    /// since the last drain.
    pub fn drain_storage_incidents(&self) -> Vec<StorageIncident> {
        std::mem::take(
            &mut self
                .chaos
                .lock()
                .expect("storage chaos state poisoned")
                .incidents,
        )
    }

    /// Flips one payload byte of `shard`'s file on disk (plain
    /// overwrite, simulating bit rot) and evicts the shard from the
    /// hot-set cache so the next access re-reads the damaged bytes.
    /// Returns the absolute byte offset that was flipped.
    ///
    /// Chaos/test helper — this is how scheduled `shard_corrupt` faults
    /// and the scrub exhibits damage a live store deterministically.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the file cannot be rewritten;
    /// [`FeatureStoreError::Format`] if the shard has no payload bytes
    /// to flip.
    pub fn corrupt_shard_byte(&self, shard: usize) -> Result<u64, FeatureStoreError> {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        let info = &self.shards[shard];
        let mut bytes = std::fs::read(&info.path)?;
        let header = shard_header_len(self.dtype);
        let payload_len = info.num_rows * self.cols * self.dtype.bytes_per_value();
        if payload_len == 0 {
            return Err(FeatureStoreError::Format(format!(
                "shard {shard} has an empty payload; nothing to corrupt"
            )));
        }
        let offset = header + payload_len / 2;
        bytes[offset] ^= 0x40;
        std::fs::write(&info.path, &bytes)?;
        let mut state = self.cache.lock().expect("feature cache poisoned");
        if let Some((payload, _)) = state.resident.remove(&shard) {
            state.held_bytes -= payload.byte_len();
        }
        Ok(offset as u64)
    }

    /// The storage width of the shard payloads.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The directory the shards live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows per shard (the page size).
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Number of shard files.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured cache budget, in bytes (not clamped to the total).
    pub fn cache_budget_bytes(&self) -> usize {
        self.cache_budget_bytes
    }

    /// Bytes of shard payload currently resident in the cache.
    pub fn cache_held_bytes(&self) -> usize {
        self.cache.lock().expect("feature cache poisoned").held_bytes
    }

    /// Reads one shard's payload, panicking on unrecoverable failure —
    /// the historical infallible path, kept for direct callers
    /// (`to_dense`, `find_non_finite`). Transient errors are still
    /// retried and corruption still repaired from parity before the
    /// panic fires.
    fn read_shard_payload(&self, shard: usize) -> ShardPayload {
        let mut stats = GatherStats::default();
        self.try_read_shard_payload(shard, &mut stats)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads one shard's payload with full re-validation (magic, header,
    /// CRC), transient-error retry with seeded-jitter backoff, and XOR
    /// parity repair; accumulates retry/repair accounting into `stats`.
    fn try_read_shard_payload(
        &self,
        shard: usize,
        stats: &mut GatherStats,
    ) -> Result<ShardPayload, FeatureStoreError> {
        let mut chaos = self.chaos.lock().expect("storage chaos state poisoned");
        let max_io_retries = chaos.max_io_retries;
        let mut attempt = 0usize;
        loop {
            let verdict = match chaos.hook.as_mut() {
                Some(hook) => hook.check_read(shard, attempt),
                None => ReadFault::default(),
            };
            stats.backoff_sec += verdict.stall_sec;
            let outcome = if verdict.fail {
                Err(ShardFailure::Io(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient read error (attempt {attempt})"),
                )))
            } else {
                self.read_shard_validated(shard)
            };
            match outcome {
                Ok(payload) => return Ok(payload),
                Err(ShardFailure::Io(e)) => {
                    if attempt >= max_io_retries {
                        return Err(FeatureStoreError::Shard {
                            shard,
                            offset: 0,
                            detail: format!(
                                "transient I/O error persisted through {} attempts \
                                 (retry budget {max_io_retries}): {e}",
                                attempt + 1
                            ),
                        });
                    }
                    let jitter = chaos.hook.as_mut().map_or(0.5, |h| h.backoff_jitter());
                    let backoff_sec =
                        IO_BACKOFF_BASE_SEC * (1u64 << attempt.min(32)) as f64 * (0.5 + jitter);
                    stats.io_retries += 1;
                    stats.backoff_sec += backoff_sec;
                    chaos.incidents.push(StorageIncident::IoRetry {
                        shard,
                        attempt,
                        backoff_sec,
                    });
                    attempt += 1;
                }
                Err(ShardFailure::Corrupt { offset, detail }) => {
                    // On-disk damage is not transient: repair from
                    // parity (bit-identical, verified, re-persisted)
                    // or fail structurally.
                    let (payload, repair_bytes) = self.repair_shard(shard, offset, &detail)?;
                    let group = shard / self.parity.as_ref().map_or(1, |p| p.width);
                    stats.shards_repaired += 1;
                    stats.repair_bytes += repair_bytes;
                    chaos.incidents.push(StorageIncident::ShardRepaired {
                        shard,
                        group,
                        repair_bytes,
                    });
                    return Ok(payload);
                }
            }
        }
    }

    /// One physical read of `shard` with full container validation.
    fn read_shard_validated(&self, shard: usize) -> Result<ShardPayload, ShardFailure> {
        let info = &self.shards[shard];
        let bytes = match std::fs::read(&info.path) {
            Ok(b) => Bytes::from(b),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(ShardFailure::Corrupt {
                    offset: 0,
                    detail: "shard file missing".into(),
                })
            }
            Err(e) => return Err(ShardFailure::Io(e)),
        };
        match parse_shard(&bytes, shard, self.cols, self.dtype) {
            Ok((start_row, num_rows, payload)) => {
                if start_row != info.start_row || num_rows != info.num_rows {
                    return Err(ShardFailure::Corrupt {
                        offset: SHARD_MAGIC.len() as u64,
                        detail: format!(
                            "header says rows {start_row}..{} but meta expects {}..{}",
                            start_row + num_rows,
                            info.start_row,
                            info.start_row + info.num_rows
                        ),
                    });
                }
                Ok(decode_payload(&payload, self.dtype))
            }
            Err((offset, detail)) => Err(ShardFailure::Corrupt { offset, detail }),
        }
    }

    /// Reconstructs `shard`'s payload from its XOR parity group, verifies
    /// it against the recorded payload CRC, re-persists the full shard
    /// container atomically, and returns the payload plus the bytes
    /// re-read from disk to rebuild it.
    fn repair_shard(
        &self,
        shard: usize,
        offset: u64,
        why: &str,
    ) -> Result<(ShardPayload, u64), FeatureStoreError> {
        let fail = |detail: String| FeatureStoreError::Shard {
            shard,
            offset,
            detail,
        };
        let Some(parity) = &self.parity else {
            return Err(fail(format!(
                "{why}; store has no parity sidecar to repair from"
            )));
        };
        let width = parity.width;
        let group = shard / width;
        let first = group * width;
        let members = first..(first + width).min(self.shards.len());
        let (_, _, mut acc) = read_parity_payload(&self.dir, group, width, self.shards.len())
            .map_err(|msg| {
                fail(format!(
                    "{why}; parity shard for group {group} is unusable ({msg})"
                ))
            })?;
        let mut repair_bytes = acc.len() as u64;
        for peer in members {
            if peer == shard {
                continue;
            }
            let path = self.dir.join(shard_name(peer));
            let bytes = Bytes::from(std::fs::read(&path).map_err(|e| {
                fail(format!(
                    "{why}; peer shard {peer} in group {group} is also unreadable ({e}) — \
                     XOR parity can repair exactly one shard per group"
                ))
            })?);
            let (_, _, payload) =
                parse_shard(&bytes, peer, self.cols, self.dtype).map_err(|(_, msg)| {
                    fail(format!(
                        "{why}; peer shard {peer} in group {group} is also damaged ({msg}) — \
                         XOR parity can repair exactly one shard per group"
                    ))
                })?;
            repair_bytes += payload.len() as u64;
            for (acc_byte, &b) in acc.iter_mut().zip(payload.iter()) {
                *acc_byte ^= b;
            }
        }
        let info = &self.shards[shard];
        let my_len = info.num_rows * self.cols * self.dtype.bytes_per_value();
        if acc.len() < my_len {
            return Err(fail(format!(
                "{why}; parity payload is {} bytes but shard needs {my_len}",
                acc.len()
            )));
        }
        acc.truncate(my_len);
        if crc32(&acc) != parity.payload_crcs[shard] {
            return Err(fail(format!(
                "{why}; parity reconstruction failed its recorded CRC — \
                 more than one shard in group {group} is damaged"
            )));
        }
        let file = encode_shard_file(
            shard,
            info.start_row,
            info.num_rows,
            self.cols,
            self.dtype,
            &acc,
        );
        write_atomic(&info.path, &file)?;
        Ok((decode_payload(&acc, self.dtype), repair_bytes))
    }

    /// Bytes one shard's payload occupies at the storage width.
    fn shard_payload_bytes(&self, shard: usize) -> usize {
        self.shards[shard].num_rows * self.cols * self.dtype.bytes_per_value()
    }

    /// Ensures `shard` is resident, updating its LRU tick; returns whether
    /// a disk load happened. The just-touched shard is never its own
    /// eviction victim, so a single over-budget shard still serves the
    /// whole gather.
    fn touch_shard(
        &self,
        state: &mut CacheState,
        shard: usize,
        stats: &mut GatherStats,
    ) -> Result<bool, FeatureStoreError> {
        state.tick += 1;
        let tick = state.tick;
        if let Some((_, last)) = state.resident.get_mut(&shard) {
            *last = tick;
            return Ok(false);
        }
        let payload = self.try_read_shard_payload(shard, stats)?;
        state.held_bytes += payload.byte_len();
        state.resident.insert(shard, (payload, tick));
        // Evict least-recently-used shards (never the one just loaded)
        // until the pinned set fits the budget again. Ties cannot occur:
        // ticks are unique.
        while state.held_bytes > self.cache_budget_bytes && state.resident.len() > 1 {
            let victim = state
                .resident
                .iter()
                .filter(|(&s, _)| s != shard)
                .min_by_key(|(&s, &(_, last))| (last, s))
                .map(|(&s, _)| s);
            match victim {
                Some(v) => {
                    if let Some((payload, _)) = state.resident.remove(&v) {
                        state.held_bytes -= payload.byte_len();
                    }
                }
                None => break,
            }
        }
        Ok(true)
    }
}

impl FeatureStore for PagedFeatures {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        self.try_gather_into(indices, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_gather_into(
        &self,
        indices: &[usize],
        out: &mut [f32],
    ) -> Result<GatherStats, FeatureStoreError> {
        assert_eq!(
            out.len(),
            indices.len() * self.cols,
            "output buffer must be indices.len() × cols"
        );
        let mut stats = GatherStats::default();
        if self.cols == 0 {
            stats.hits = indices.len() as u64;
            return Ok(stats);
        }
        let mut state = self.cache.lock().expect("feature cache poisoned");
        for (slot, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "row {idx} out of range ({} rows)", self.rows);
            let shard = idx / self.page_rows;
            if self.touch_shard(&mut state, shard, &mut stats)? {
                stats.misses += 1;
                stats.pages_in += 1;
                stats.bytes_in += self.shard_payload_bytes(shard) as u64;
            } else {
                stats.hits += 1;
            }
            let (payload, _) = &state.resident[&shard];
            let local = idx - self.shards[shard].start_row;
            payload.copy_row(
                self.dtype,
                local,
                self.cols,
                &mut out[slot * self.cols..(slot + 1) * self.cols],
            );
        }
        Ok(stats)
    }

    fn prewarm(&self, indices: &[usize]) -> GatherStats {
        self.try_prewarm(indices).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_prewarm(&self, indices: &[usize]) -> Result<GatherStats, FeatureStoreError> {
        let mut stats = GatherStats::default();
        if self.cols == 0 {
            return Ok(stats);
        }
        let mut state = self.cache.lock().expect("feature cache poisoned");
        // Deduplicated in first-appearance order so the page-in sequence
        // (and therefore eviction order) tracks the access pattern.
        let mut seen = Vec::new();
        for &idx in indices {
            assert!(idx < self.rows, "row {idx} out of range ({} rows)", self.rows);
            let shard = idx / self.page_rows;
            if seen.contains(&shard) {
                continue;
            }
            seen.push(shard);
            if self.touch_shard(&mut state, shard, &mut stats)? {
                stats.pages_in += 1;
                stats.bytes_in += self.shard_payload_bytes(shard) as u64;
            }
        }
        Ok(stats)
    }

    fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for (shard, info) in self.shards.iter().enumerate() {
            let payload = self.read_shard_payload(shard).to_f32(self.dtype);
            let start = info.start_row * self.cols;
            data[start..start + payload.len()].copy_from_slice(&payload);
        }
        Tensor::from_vec(data, &[self.rows, self.cols]).expect("shard geometry is validated")
    }

    fn cache_reservation_bytes(&self) -> usize {
        self.cache_budget_bytes
            .min(self.rows * self.cols * self.dtype.bytes_per_value())
    }

    fn find_non_finite(&self) -> Option<(usize, f32)> {
        for (shard, info) in self.shards.iter().enumerate() {
            let payload = self.read_shard_payload(shard).to_f32(self.dtype);
            if let Some((i, &v)) = payload.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Some((info.start_row * self.cols + i, v));
            }
        }
        None
    }
}

fn shard_count(rows: usize, page_rows: usize) -> usize {
    rows.div_ceil(page_rows).max(1)
}

fn shard_name(shard: usize) -> String {
    format!("shard-{shard:05}.bfs")
}

fn parity_name(group: usize) -> String {
    format!("parity-{group:05}.bfp")
}

/// Bytes of magic + header fields before a shard file's payload.
fn shard_header_len(dtype: DType) -> usize {
    let header_words = if dtype == DType::F32 { 4 } else { 5 };
    SHARD_MAGIC.len() + header_words * 4
}

/// Encodes a full shard container (magic, header, payload, CRC) — the
/// single source of the on-disk bytes, used by both the spiller and the
/// parity repairer so reconstruction is byte-identical to the original.
fn encode_shard_file(
    shard: usize,
    start_row: usize,
    num_rows: usize,
    cols: usize,
    dtype: DType,
    payload: &[u8],
) -> BytesMut {
    let mut body = BytesMut::new();
    body.put_u32_le(shard as u32);
    body.put_u32_le(start_row as u32);
    body.put_u32_le(num_rows as u32);
    body.put_u32_le(cols as u32);
    if dtype != DType::F32 {
        body.put_u32_le(dtype.tag());
    }
    body.put_slice(payload);
    let crc = crc32(&body);
    let mut file = BytesMut::new();
    file.put_slice(if dtype == DType::F32 { SHARD_MAGIC } else { SHARD_MAGIC_V2 });
    file.put_slice(&body);
    file.put_u32_le(crc);
    file
}

/// Encodes a parity shard container for `group`.
fn encode_parity_file(group: usize, first_shard: usize, num_shards: usize, xor: &[u8]) -> BytesMut {
    let mut body = BytesMut::new();
    body.put_u32_le(group as u32);
    body.put_u32_le(first_shard as u32);
    body.put_u32_le(num_shards as u32);
    body.put_u32_le(xor.len() as u32);
    body.put_slice(xor);
    let crc = crc32(&body);
    let mut file = BytesMut::new();
    file.put_slice(PARITY_MAGIC);
    file.put_slice(&body);
    file.put_u32_le(crc);
    file
}

/// Decodes raw payload bytes to a cache-resident payload at `dtype`.
fn decode_payload(bytes: &[u8], dtype: DType) -> ShardPayload {
    match dtype {
        DType::F32 => ShardPayload::F32(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
                .collect(),
        ),
        _ => ShardPayload::Half(
            bytes
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes(c.try_into().expect("chunk is 2 bytes")))
                .collect(),
        ),
    }
}

/// Parses and fully validates one shard file's bytes (magic, header
/// consistency, CRC over the whole body); returns
/// `(start_row, num_rows, payload)` or `(byte offset, detail)` locating
/// the first structural failure.
fn parse_shard(
    bytes: &Bytes,
    expect_shard: usize,
    expect_cols: usize,
    expect_dtype: DType,
) -> Result<(usize, usize, Bytes), (u64, String)> {
    let header = shard_header_len(expect_dtype);
    if bytes.len() < header + 4 {
        return Err((bytes.len() as u64, "truncated shard file".into()));
    }
    let mut buf = bytes.clone();
    let magic = buf.split_to(SHARD_MAGIC.len());
    let expect_magic: &[u8] = if expect_dtype == DType::F32 {
        SHARD_MAGIC
    } else {
        SHARD_MAGIC_V2
    };
    if &magic[..] != expect_magic {
        return Err((0, "shard magic does not match meta version".into()));
    }
    let body = buf.split_to(buf.remaining() - 4);
    let stored_crc = buf.get_u32_le();
    if crc32(&body) != stored_crc {
        return Err(((bytes.len() - 4) as u64, "shard CRC mismatch".into()));
    }
    let mut hdr = body.clone();
    let shard = hdr.get_u32_le() as usize;
    let start_row = hdr.get_u32_le() as usize;
    let num_rows = hdr.get_u32_le() as usize;
    let cols = hdr.get_u32_le() as usize;
    if expect_dtype != DType::F32 {
        let tag = hdr.get_u32_le();
        if DType::from_tag(tag) != Some(expect_dtype) {
            return Err((
                (SHARD_MAGIC.len() + 4 * 4) as u64,
                format!("shard dtype tag {tag} does not match meta dtype {expect_dtype}"),
            ));
        }
    }
    if shard != expect_shard {
        return Err((
            SHARD_MAGIC.len() as u64,
            format!("header names shard {shard}, expected {expect_shard}"),
        ));
    }
    if cols != expect_cols {
        return Err((
            (SHARD_MAGIC.len() + 3 * 4) as u64,
            format!("shard has {cols} cols, meta says {expect_cols}"),
        ));
    }
    if hdr.remaining() != num_rows * cols * expect_dtype.bytes_per_value() {
        return Err((
            header as u64,
            format!(
                "payload is {} bytes, header implies {}",
                hdr.remaining(),
                num_rows * cols * expect_dtype.bytes_per_value()
            ),
        ));
    }
    let payload_len = hdr.remaining();
    Ok((start_row, num_rows, hdr.split_to(payload_len)))
}

/// Validates one shard file end to end (version and dtype must match the
/// meta file); returns `(start_row, num_rows)` from its header.
fn validate_shard(
    path: &Path,
    expect_shard: usize,
    expect_cols: usize,
    expect_dtype: DType,
) -> Result<(usize, usize), FeatureStoreError> {
    let bytes = Bytes::from(std::fs::read(path).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            FeatureStoreError::Format(format!("missing shard file {}", path.display()))
        } else {
            FeatureStoreError::Io(e)
        }
    })?);
    match parse_shard(&bytes, expect_shard, expect_cols, expect_dtype) {
        Ok((start_row, num_rows, _)) => Ok((start_row, num_rows)),
        Err((_, detail)) => Err(FeatureStoreError::Format(detail)),
    }
}

/// Reads and validates the store's meta file; returns
/// `(rows, cols, page_rows, dtype)`.
fn read_meta(dir: &Path) -> Result<(usize, usize, usize, DType), FeatureStoreError> {
    let meta_bytes = Bytes::from(std::fs::read(dir.join(META_FILE))?);
    let mut buf = meta_bytes.clone();
    if buf.remaining() < META_MAGIC.len() + 3 * 4 + 4 {
        return Err(FeatureStoreError::Format("meta file truncated".into()));
    }
    let magic = buf.split_to(META_MAGIC.len());
    let v2 = match &magic[..] {
        m if m == META_MAGIC => false,
        m if m == META_MAGIC_V2 => true,
        _ => return Err(FeatureStoreError::Format("bad meta magic".into())),
    };
    let body_len = if v2 { 4 * 4 } else { 3 * 4 };
    if buf.remaining() < body_len + 4 {
        return Err(FeatureStoreError::Format("meta file truncated".into()));
    }
    let body = buf.split_to(body_len);
    let stored_crc = buf.get_u32_le();
    if buf.remaining() > 0 {
        return Err(FeatureStoreError::Format("trailing bytes in meta file".into()));
    }
    if crc32(&body) != stored_crc {
        return Err(FeatureStoreError::Format("meta CRC mismatch".into()));
    }
    let mut body = body;
    let rows = body.get_u32_le() as usize;
    let cols = body.get_u32_le() as usize;
    let page_rows = body.get_u32_le() as usize;
    let dtype = if v2 {
        let tag = body.get_u32_le();
        match DType::from_tag(tag) {
            Some(DType::F32) | None => {
                return Err(FeatureStoreError::Format(format!(
                    "meta names invalid 16-bit dtype tag {tag}"
                )))
            }
            Some(d) => d,
        }
    } else {
        DType::F32
    };
    if page_rows == 0 {
        return Err(FeatureStoreError::Format("page_rows is zero".into()));
    }
    Ok((rows, cols, page_rows, dtype))
}

/// Loads and validates the parity sidecar meta for a store with
/// `num_shards` data shards.
fn load_parity_meta(dir: &Path, num_shards: usize) -> Result<ParityMeta, FeatureStoreError> {
    let bytes = Bytes::from(std::fs::read(dir.join(PARITY_META_FILE))?);
    if bytes.len() < PARITY_META_MAGIC.len() + 2 * 4 + 4 {
        return Err(FeatureStoreError::Format("parity meta truncated".into()));
    }
    let mut buf = bytes.clone();
    let magic = buf.split_to(PARITY_META_MAGIC.len());
    if &magic[..] != PARITY_META_MAGIC {
        return Err(FeatureStoreError::Format("bad parity meta magic".into()));
    }
    let body = buf.split_to(buf.remaining() - 4);
    let stored_crc = buf.get_u32_le();
    if crc32(&body) != stored_crc {
        return Err(FeatureStoreError::Format("parity meta CRC mismatch".into()));
    }
    let mut body = body;
    let width = body.get_u32_le() as usize;
    let count = body.get_u32_le() as usize;
    if width == 0 {
        return Err(FeatureStoreError::Format("parity width is zero".into()));
    }
    if count != num_shards || body.remaining() != count * 4 {
        return Err(FeatureStoreError::Format(format!(
            "parity meta covers {count} shards, store has {num_shards}"
        )));
    }
    let payload_crcs = (0..count).map(|_| body.get_u32_le()).collect();
    Ok(ParityMeta {
        width,
        payload_crcs,
    })
}

/// Reads and validates one parity shard; returns
/// `(first_shard, num_shards, xor payload)` or a failure description.
fn read_parity_payload(
    dir: &Path,
    group: usize,
    width: usize,
    total_shards: usize,
) -> Result<(usize, usize, Vec<u8>), String> {
    let path = dir.join(parity_name(group));
    let bytes = std::fs::read(&path).map_err(|e| format!("unreadable: {e}"))?;
    let header = PARITY_MAGIC.len() + 4 * 4;
    if bytes.len() < header + 4 {
        return Err("truncated parity file".into());
    }
    let mut buf = Bytes::from(bytes);
    let magic = buf.split_to(PARITY_MAGIC.len());
    if &magic[..] != PARITY_MAGIC {
        return Err("bad parity magic".into());
    }
    let body = buf.split_to(buf.remaining() - 4);
    let stored_crc = buf.get_u32_le();
    if crc32(&body) != stored_crc {
        return Err("parity CRC mismatch".into());
    }
    let mut body = body;
    let got_group = body.get_u32_le() as usize;
    let first_shard = body.get_u32_le() as usize;
    let num_shards = body.get_u32_le() as usize;
    let payload_len = body.get_u32_le() as usize;
    let expect_first = group * width;
    let expect_count = width.min(total_shards - expect_first);
    if got_group != group || first_shard != expect_first || num_shards != expect_count {
        return Err(format!(
            "header names group {got_group} (shards {first_shard}..{}), \
             expected group {group} (shards {expect_first}..{})",
            first_shard + num_shards,
            expect_first + expect_count
        ));
    }
    if body.remaining() != payload_len {
        return Err(format!(
            "payload is {} bytes, header implies {payload_len}",
            body.remaining()
        ));
    }
    Ok((first_shard, num_shards, body.to_vec()))
}

// ---------------------------------------------------------------------------
// Offline scrub.

/// Outcome of a [`scrub`] pass over a paged store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Data shards examined (all of them).
    pub shards_checked: usize,
    /// Data shards reconstructed from parity and re-persisted.
    pub shards_repaired: Vec<usize>,
    /// Parity groups examined (0 for stores without a parity sidecar).
    pub parity_checked: usize,
    /// Parity shards rebuilt from intact data shards and re-persisted.
    pub parity_rebuilt: Vec<usize>,
    /// Data shards that remain damaged: no parity sidecar, a damaged
    /// parity shard, or more than one damaged member in their group.
    pub unrepairable: Vec<usize>,
    /// Width of the parity groups (0 when there is no sidecar).
    pub parity_width: usize,
}

impl ScrubReport {
    /// Whether every shard is now valid (repairs count as clean).
    pub fn is_clean(&self) -> bool {
        self.unrepairable.is_empty()
    }
}

/// Verifies every shard and parity file of the paged store in `dir`
/// end to end (magic, header, CRC, parity-sidecar payload CRCs) and
/// repairs what parity allows: a single damaged data shard per group is
/// reconstructed bit-identically and re-persisted, and a damaged parity
/// shard is rebuilt from its intact data shards. Anything else is
/// reported as unrepairable and left untouched.
///
/// # Errors
///
/// [`FeatureStoreError::Io`] / [`FeatureStoreError::Format`] if the
/// meta or parity-meta files themselves are unreadable or invalid —
/// without them nothing can be verified.
pub fn scrub(dir: impl AsRef<Path>) -> Result<ScrubReport, FeatureStoreError> {
    let dir = dir.as_ref();
    let (rows, cols, page_rows, dtype) = read_meta(dir)?;
    let num_shards = shard_count(rows, page_rows);
    let parity = if dir.join(PARITY_META_FILE).exists() {
        Some(load_parity_meta(dir, num_shards)?)
    } else {
        None
    };
    let mut report = ScrubReport {
        shards_checked: num_shards,
        parity_width: parity.as_ref().map_or(0, |p| p.width),
        ..ScrubReport::default()
    };

    let shard_status: Vec<Result<Bytes, String>> = (0..num_shards)
        .map(|shard| {
            let bytes = Bytes::from(
                std::fs::read(dir.join(shard_name(shard)))
                    .map_err(|e| format!("unreadable: {e}"))?,
            );
            let start_row = shard * page_rows;
            let num_rows = page_rows.min(rows - start_row);
            let (got_start, got_rows, payload) =
                parse_shard(&bytes, shard, cols, dtype).map_err(|(_, detail)| detail)?;
            if got_start != start_row || got_rows != num_rows {
                return Err("header rows disagree with meta".into());
            }
            if let Some(p) = &parity {
                if crc32(&payload) != p.payload_crcs[shard] {
                    return Err("payload CRC does not match parity sidecar".into());
                }
            }
            Ok(payload)
        })
        .collect();

    let Some(parity) = parity else {
        for (shard, status) in shard_status.iter().enumerate() {
            if status.is_err() {
                report.unrepairable.push(shard);
            }
        }
        return Ok(report);
    };

    let width = parity.width;
    let num_groups = num_shards.div_ceil(width);
    report.parity_checked = num_groups;
    for group in 0..num_groups {
        let first = group * width;
        let members: Vec<usize> = (first..(first + width).min(num_shards)).collect();
        let bad: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&s| shard_status[s].is_err())
            .collect();
        let parity_payload = read_parity_payload(dir, group, width, num_shards);
        match (bad.len(), parity_payload) {
            (0, Ok(_)) => {}
            (0, Err(_)) => {
                // Every data shard is intact: the parity shard itself
                // is the damaged one — rebuild it.
                let mut xor: Vec<u8> = Vec::new();
                for &member in &members {
                    let payload = shard_status[member].as_ref().expect("member is intact");
                    if payload.len() > xor.len() {
                        xor.resize(payload.len(), 0);
                    }
                    for (acc, &b) in xor.iter_mut().zip(payload.iter()) {
                        *acc ^= b;
                    }
                }
                let file = encode_parity_file(group, first, members.len(), &xor);
                write_atomic(&dir.join(parity_name(group)), &file)?;
                report.parity_rebuilt.push(group);
            }
            (1, Ok((_, _, mut acc))) => {
                let shard = bad[0];
                for &member in &members {
                    if member == shard {
                        continue;
                    }
                    let payload = shard_status[member].as_ref().expect("member is intact");
                    for (acc_byte, &b) in acc.iter_mut().zip(payload.iter()) {
                        *acc_byte ^= b;
                    }
                }
                let start_row = shard * page_rows;
                let num_rows = page_rows.min(rows - start_row);
                let my_len = num_rows * cols * dtype.bytes_per_value();
                if acc.len() < my_len || crc32(&acc[..my_len]) != parity.payload_crcs[shard] {
                    report.unrepairable.push(shard);
                    continue;
                }
                acc.truncate(my_len);
                let file = encode_shard_file(shard, start_row, num_rows, cols, dtype, &acc);
                write_atomic(&dir.join(shard_name(shard)), &file)?;
                report.shards_repaired.push(shard);
            }
            // ≥2 damaged members, or one damaged member plus a damaged
            // parity shard: XOR cannot recover — leave everything as-is.
            (_, _) => report.unrepairable.extend(bad.iter().copied()),
        }
    }
    Ok(report)
}

/// Same-directory atomic write (tmp + fsync + rename), mirroring the
/// dataset and checkpoint writers.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The Dataset-facing wrapper.

/// Node features behind a storage backend.
///
/// This is the concrete type `Dataset` holds: a cheaply cloneable handle
/// over either backend (paged stores are shared through an [`Arc`], so a
/// cloned dataset shares one cache and one set of shard files). All the
/// read paths in the workspace go through this type, so swapping the
/// backend never touches a call site.
#[derive(Debug, Clone)]
pub enum Features {
    /// In-memory dense matrix (the default; zero overhead).
    Dense(DenseFeatures),
    /// Disk-resident shards with a pinned hot-set cache.
    Paged(Arc<PagedFeatures>),
}

impl Features {
    /// Wraps a dense tensor.
    pub fn dense(tensor: Tensor) -> Self {
        Features::Dense(DenseFeatures::new(tensor))
    }

    /// Wraps a dense tensor encoded at `dtype` storage width.
    pub fn dense_with_dtype(tensor: Tensor, dtype: DType) -> Self {
        Features::Dense(DenseFeatures::with_dtype(tensor, dtype))
    }

    /// The storage width of this store's values.
    pub fn dtype(&self) -> DType {
        match self {
            Features::Dense(d) => d.dtype(),
            Features::Paged(p) => p.dtype(),
        }
    }

    /// Re-encodes a dense store at `dtype` width (decode → re-encode, so
    /// converting an already-quantized store is lossless for values the
    /// target dtype represents exactly).
    ///
    /// # Panics
    ///
    /// Panics on a paged store: the shard files' width is fixed at spill
    /// time — choose the dtype *before* calling [`Features::to_paged`].
    pub fn with_dtype(&self, dtype: DType) -> Self {
        match self {
            Features::Dense(d) => Features::dense_with_dtype(d.to_dense(), dtype),
            Features::Paged(_) => {
                panic!("cannot re-encode a paged store; set the dtype before spilling")
            }
        }
    }

    /// Wraps an opened paged store.
    pub fn paged(store: Arc<PagedFeatures>) -> Self {
        Features::Paged(store)
    }

    /// Spills this matrix to `dir` as a paged store and returns a paged
    /// handle over it (the dense copy is dropped by the caller).
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError`] if the shards cannot be written (or, when
    /// called on an already-paged store, re-sharded).
    pub fn to_paged(
        &self,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
    ) -> Result<Self, FeatureStoreError> {
        self.to_paged_with_parity(dir, page_rows, cache_budget_bytes, 0)
    }

    /// [`Features::to_paged`] additionally writing an XOR parity sidecar
    /// of the given group width (`0` = no parity, the plain format).
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError`] if the shards cannot be written.
    pub fn to_paged_with_parity(
        &self,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
        parity: usize,
    ) -> Result<Self, FeatureStoreError> {
        let dense = self.to_dense();
        Ok(Features::Paged(PagedFeatures::spill_with_parity(
            &dense,
            dir,
            page_rows,
            cache_budget_bytes,
            self.dtype(),
            parity,
        )?))
    }

    /// The backend as a trait object.
    pub fn store(&self) -> &dyn FeatureStore {
        match self {
            Features::Dense(d) => d,
            Features::Paged(p) => p.as_ref(),
        }
    }

    /// Whether this is the paged backend.
    pub fn is_paged(&self) -> bool {
        matches!(self, Features::Paged(_))
    }

    /// Stable backend name (`"dense"` / `"paged"`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            Features::Dense(_) => "dense",
            Features::Paged(_) => "paged",
        }
    }

    /// Number of feature rows (nodes).
    pub fn rows(&self) -> usize {
        self.store().rows()
    }

    /// Feature dimensionality.
    pub fn cols(&self) -> usize {
        self.store().cols()
    }

    /// Logical size of the feature matrix in bytes at its storage width
    /// (independent of where it is stored — host-side staging accounting
    /// uses this, which is how a 16-bit dtype becomes planner-visible).
    pub fn size_bytes(&self) -> usize {
        self.rows() * self.cols() * self.dtype().bytes_per_value()
    }

    /// See [`FeatureStore::gather_into`].
    pub fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        self.store().gather_into(indices, out)
    }

    /// See [`FeatureStore::try_gather_into`].
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Shard`] on an unrecoverable shard failure.
    pub fn try_gather_into(
        &self,
        indices: &[usize],
        out: &mut [f32],
    ) -> Result<GatherStats, FeatureStoreError> {
        self.store().try_gather_into(indices, out)
    }

    /// See [`FeatureStore::try_prewarm`].
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Shard`] on an unrecoverable shard failure.
    pub fn try_prewarm(&self, indices: &[usize]) -> Result<GatherStats, FeatureStoreError> {
        self.store().try_prewarm(indices)
    }

    /// Arms a storage-chaos hook on a paged store (no-op for dense —
    /// there are no physical reads to fault).
    pub fn arm_storage_faults(&self, hook: Box<dyn StorageFaultHook>) {
        if let Features::Paged(p) = self {
            p.arm_storage_faults(hook);
        }
    }

    /// Removes any armed storage-chaos hook (no-op for dense).
    pub fn disarm_storage_faults(&self) {
        if let Features::Paged(p) = self {
            p.disarm_storage_faults();
        }
    }

    /// Sets the transient-I/O retry budget (no-op for dense).
    pub fn set_max_io_retries(&self, max_io_retries: usize) {
        if let Features::Paged(p) = self {
            p.set_max_io_retries(max_io_retries);
        }
    }

    /// Drains recorded storage-recovery incidents (always empty for
    /// dense stores).
    pub fn drain_storage_incidents(&self) -> Vec<StorageIncident> {
        match self {
            Features::Dense(_) => Vec::new(),
            Features::Paged(p) => p.drain_storage_incidents(),
        }
    }

    /// Parity group width of a paged store (0 for dense or no sidecar).
    pub fn parity_width(&self) -> usize {
        match self {
            Features::Dense(_) => 0,
            Features::Paged(p) => p.parity_width(),
        }
    }

    /// See [`PagedFeatures::corrupt_shard_byte`].
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Format`] for dense stores (no shard files).
    pub fn corrupt_shard_byte(&self, shard: usize) -> Result<u64, FeatureStoreError> {
        match self {
            Features::Dense(_) => Err(FeatureStoreError::Format(
                "dense stores have no shard files to corrupt".into(),
            )),
            Features::Paged(p) => p.corrupt_shard_byte(shard),
        }
    }

    /// Gathers rows into a freshly allocated `[indices.len(), cols]`
    /// tensor, discarding the cache accounting.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[indices.len(), self.cols()]);
        self.store().gather_into(indices, out.data_mut());
        out
    }

    /// See [`FeatureStore::prewarm`].
    pub fn prewarm(&self, indices: &[usize]) -> GatherStats {
        self.store().prewarm(indices)
    }

    /// See [`FeatureStore::to_dense`].
    pub fn to_dense(&self) -> Tensor {
        self.store().to_dense()
    }

    /// See [`FeatureStore::cache_reservation_bytes`].
    pub fn cache_reservation_bytes(&self) -> usize {
        self.store().cache_reservation_bytes()
    }

    /// See [`FeatureStore::find_non_finite`].
    pub fn find_non_finite(&self) -> Option<(usize, f32)> {
        self.store().find_non_finite()
    }

    /// One feature value (row-major). Test/diagnostic convenience; paged
    /// stores pay a single-row gather.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let mut out = vec![0.0f32; self.cols()];
        self.gather_into(&[row], &mut out);
        out[col]
    }
}

impl From<Tensor> for Features {
    fn from(tensor: Tensor) -> Self {
        Features::dense(tensor)
    }
}

impl PartialEq for Features {
    /// Logical equality: same shape and the same `f32` bits, regardless
    /// of backend (a paged store equals the dense matrix it was spilled
    /// from).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Features::Dense(a), Features::Dense(b)) => a == b,
            (a, b) => {
                a.rows() == b.rows() && a.cols() == b.cols() && a.to_dense() == b.to_dense()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    /// Bytes per `f32` feature value (tests hand-compute f32 budgets).
    const BYTES_PER_VALUE: usize = 4;

    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn tmp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("betty-fstore-{name}-{}", std::process::id()))
    }

    fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        betty_tensor::randn(&[rows, cols], &mut rng)
    }

    #[test]
    fn paged_gathers_match_dense_bit_for_bit() {
        let t = matrix(23, 5, 1);
        let dir = tmp_dir("bits");
        let paged = Features::dense(t.clone()).to_paged(&dir, 4, usize::MAX).unwrap();
        let dense = Features::dense(t);
        let indices: Vec<usize> = vec![0, 22, 7, 7, 13, 1, 20];
        let a = dense.gather_rows(&indices);
        let b = paged.gather_rows(&indices);
        assert_eq!(a, b);
        assert_eq!(dense, paged, "logical equality across backends");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_cache_still_returns_exact_values() {
        let t = matrix(40, 3, 2);
        let dir = tmp_dir("tiny-cache");
        // Budget of one shard: every shard switch evicts.
        let paged = Features::dense(t.clone())
            .to_paged(&dir, 8, 8 * 3 * BYTES_PER_VALUE)
            .unwrap();
        let indices: Vec<usize> = (0..40).rev().chain(0..40).collect();
        let mut out = vec![0.0f32; indices.len() * 3];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.hits + stats.misses, indices.len() as u64);
        assert!(stats.pages_in > 5, "tiny budget must thrash: {stats:?}");
        for (slot, &idx) in indices.iter().enumerate() {
            assert_eq!(&out[slot * 3..(slot + 1) * 3], t.row(idx));
        }
        if let Features::Paged(p) = &paged {
            assert!(p.cache_held_bytes() <= 8 * 3 * BYTES_PER_VALUE);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_pages_each_shard_once() {
        let t = matrix(30, 4, 3);
        let dir = tmp_dir("unbounded");
        let paged = Features::dense(t).to_paged(&dir, 7, usize::MAX).unwrap();
        let indices: Vec<usize> = (0..30).chain(0..30).collect();
        let mut out = vec![0.0f32; indices.len() * 4];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.pages_in, 5, "30 rows / 7 per page = 5 shards");
        let second = paged.gather_into(&indices, &mut out);
        assert_eq!(second.pages_in, 0, "warm cache must not re-page");
        assert_eq!(second.hits, indices.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prewarm_turns_gather_misses_into_hits() {
        let t = matrix(20, 2, 4);
        let dir = tmp_dir("prewarm");
        let paged = Features::dense(t).to_paged(&dir, 5, usize::MAX).unwrap();
        let indices: Vec<usize> = vec![19, 3, 11];
        let warm = paged.prewarm(&indices);
        assert_eq!(warm.pages_in, 3);
        assert!(warm.bytes_in > 0);
        let mut out = vec![0.0f32; indices.len() * 2];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.misses, 0, "prewarmed rows must all hit");
        assert_eq!(stats.hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_reservation_clamps_to_total_bytes() {
        let t = matrix(10, 4, 5);
        let total = 10 * 4 * BYTES_PER_VALUE;
        let dir = tmp_dir("reservation");
        let paged = Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        assert_eq!(paged.cache_reservation_bytes(), total);
        let small = Features::Paged(PagedFeatures::open(&dir, 64).unwrap());
        assert_eq!(small.cache_reservation_bytes(), 64);
        assert_eq!(Features::dense(matrix(4, 4, 0)).cache_reservation_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_is_rejected_at_open() {
        let t = matrix(12, 3, 6);
        let dir = tmp_dir("trunc");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let shard = dir.join(shard_name(1));
        let full = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &full[..full.len() - 5]).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        assert!(matches!(err, FeatureStoreError::Format(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_shard_fails_crc_at_open() {
        let t = matrix(12, 3, 7);
        let dir = tmp_dir("bitflip");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let shard = dir.join(shard_name(2));
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&shard, &bytes).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        match err {
            FeatureStoreError::Format(msg) => assert!(msg.contains("CRC"), "{msg}"),
            other => panic!("expected Format, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_is_a_format_error() {
        let t = matrix(12, 3, 8);
        let dir = tmp_dir("missing");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        std::fs::remove_file(dir.join(shard_name(0))).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        assert!(matches!(err, FeatureStoreError::Format(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_scan_reports_flat_index_on_both_backends() {
        let mut t = matrix(9, 4, 9);
        t.data_mut()[4 * 4 + 2] = f32::NEG_INFINITY;
        let dense = Features::dense(t.clone());
        assert_eq!(dense.find_non_finite().map(|(i, _)| i), Some(18));
        let dir = tmp_dir("nonfinite");
        let paged = dense.to_paged(&dir, 2, usize::MAX).unwrap();
        assert_eq!(paged.find_non_finite().map(|(i, _)| i), Some(18));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_least_recently_gathered_shard() {
        let t = matrix(12, 2, 10);
        let dir = tmp_dir("lru");
        // 3 shards of 4 rows; budget fits exactly 2 shards.
        let budget = 2 * 4 * 2 * BYTES_PER_VALUE;
        let paged = Features::dense(t).to_paged(&dir, 4, budget).unwrap();
        let mut out = vec![0.0f32; 2];
        paged.gather_into(&[0], &mut out); // shard 0 in
        paged.gather_into(&[4], &mut out); // shard 1 in
        paged.gather_into(&[0], &mut out); // shard 0 freshened
        let stats = paged.gather_into(&[8], &mut out); // shard 2 evicts shard 1
        assert_eq!(stats.pages_in, 1);
        let again = paged.gather_into(&[0], &mut out);
        assert_eq!(again.hits, 1, "shard 0 must have survived");
        let reload = paged.gather_into(&[4], &mut out);
        assert_eq!(reload.pages_in, 1, "shard 1 must have been the victim");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bf16 store gathers the dtype-quantized values — identically from
    /// the dense backend, the paged backend, and a fresh re-open of the
    /// shard files — while every byte figure halves.
    #[test]
    fn half_width_store_round_trips_across_backends() {
        for dtype in [DType::Bf16, DType::F16] {
            let t = matrix(23, 6, 42);
            let dense = Features::dense_with_dtype(t.clone(), dtype);
            assert_eq!(dense.dtype(), dtype);
            assert_eq!(dense.size_bytes(), 23 * 6 * 2);

            // Dense gathers return the quantized grid values.
            let indices: Vec<usize> = vec![0, 22, 7, 7, 13, 1, 20];
            let a = dense.gather_rows(&indices);
            for (slot, &idx) in indices.iter().enumerate() {
                for c in 0..6 {
                    assert_eq!(
                        a.at2(slot, c).to_bits(),
                        dtype.quantize(t.at2(idx, c)).to_bits()
                    );
                }
            }

            let dir = tmp_dir(&format!("half-{dtype}"));
            let paged = dense.to_paged(&dir, 4, usize::MAX).unwrap();
            assert_eq!(paged.dtype(), dtype);
            assert_eq!(paged.size_bytes(), 23 * 6 * 2);
            let b = paged.gather_rows(&indices);
            assert_eq!(a, b, "paged {dtype} gather must match dense bit-for-bit");

            // Re-open from disk (v2 meta + shards validate end to end).
            let reopened = Features::Paged(PagedFeatures::open(&dir, usize::MAX).unwrap());
            assert_eq!(reopened.dtype(), dtype);
            assert_eq!(reopened.gather_rows(&indices), a);
            assert_eq!(dense, reopened, "logical equality across backends");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Cache accounting (held bytes, bytes paged in, reservation) tracks
    /// the 16-bit payload width, not f32.
    #[test]
    fn half_width_cache_accounting_uses_two_byte_values() {
        let t = matrix(16, 4, 43);
        let dir = tmp_dir("half-cache");
        let paged = Features::dense_with_dtype(t, DType::Bf16)
            .to_paged(&dir, 4, usize::MAX)
            .unwrap();
        let mut out = vec![0.0f32; 4];
        let stats = paged.gather_into(&[0], &mut out);
        assert_eq!(stats.bytes_in, 4 * 4 * 2, "one 4×4 shard at 2 B/value");
        if let Features::Paged(p) = &paged {
            assert_eq!(p.cache_held_bytes(), 4 * 4 * 2);
        }
        assert_eq!(paged.cache_reservation_bytes(), 16 * 4 * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Quantization is idempotent, so spilling an already-quantized store
    /// and re-encoding its decoded values is lossless.
    #[test]
    fn requantizing_a_quantized_store_is_identity() {
        let t = matrix(9, 5, 44);
        let once = Features::dense_with_dtype(t, DType::Bf16);
        let twice = once.with_dtype(DType::Bf16);
        assert_eq!(once, twice);
    }

    /// A v1 (f32) store written before the dtype field existed still opens
    /// and reports F32 — and f32 spills still write the v1 format.
    #[test]
    fn f32_spill_remains_v1_format() {
        let t = matrix(8, 3, 45);
        let dir = tmp_dir("v1-compat");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let meta = std::fs::read(dir.join(META_FILE)).unwrap();
        assert_eq!(&meta[..8], META_MAGIC);
        let shard = std::fs::read(dir.join(shard_name(0))).unwrap();
        assert_eq!(&shard[..8], SHARD_MAGIC);
        let opened = PagedFeatures::open(&dir, usize::MAX).unwrap();
        assert_eq!(opened.dtype(), DType::F32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Deterministic test hook: fails the next `fail_next` read attempts.
    struct FlakyHook {
        fail_next: usize,
    }

    impl StorageFaultHook for FlakyHook {
        fn check_read(&mut self, _shard: usize, _attempt: usize) -> ReadFault {
            if self.fail_next > 0 {
                self.fail_next -= 1;
                ReadFault {
                    fail: true,
                    stall_sec: 1e-3,
                }
            } else {
                ReadFault::default()
            }
        }

        fn backoff_jitter(&mut self) -> f64 {
            0.25
        }
    }

    #[test]
    fn parity_spill_round_trips_and_reports_width() {
        let t = matrix(22, 3, 50);
        let dir = tmp_dir("parity-rt");
        let paged = Features::dense(t.clone())
            .to_paged_with_parity(&dir, 4, usize::MAX, 2)
            .unwrap();
        assert_eq!(paged.parity_width(), 2);
        // 6 shards → parity groups {0,1}, {2,3}, {4,5}.
        for group in 0..3 {
            assert!(dir.join(parity_name(group)).exists(), "group {group}");
        }
        assert!(dir.join(PARITY_META_FILE).exists());
        let indices: Vec<usize> = (0..22).rev().collect();
        assert_eq!(paged.gather_rows(&indices), Features::dense(t).gather_rows(&indices));
        // Re-open validates the sidecar too.
        let reopened = Features::Paged(PagedFeatures::open(&dir, usize::MAX).unwrap());
        assert_eq!(reopened.parity_width(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_corruption_is_repaired_bit_identically_and_re_persisted() {
        let t = matrix(20, 4, 51);
        let dir = tmp_dir("repair-one");
        let paged = Features::dense(t.clone())
            .to_paged_with_parity(&dir, 4, usize::MAX, 2)
            .unwrap();
        let pristine = std::fs::read(dir.join(shard_name(1))).unwrap();
        let offset = paged.corrupt_shard_byte(1).unwrap();
        assert_ne!(std::fs::read(dir.join(shard_name(1))).unwrap(), pristine);
        assert!(offset >= shard_header_len(DType::F32) as u64);

        // Gathering rows of shard 1 repairs it mid-flight.
        let indices: Vec<usize> = (4..8).collect();
        let mut out = vec![0.0f32; indices.len() * 4];
        let stats = paged.try_gather_into(&indices, &mut out).unwrap();
        assert_eq!(stats.shards_repaired, 1);
        assert!(stats.repair_bytes > 0);
        for (slot, &idx) in indices.iter().enumerate() {
            assert_eq!(&out[slot * 4..(slot + 1) * 4], t.row(idx), "row {idx}");
        }
        // Re-persisted bit-identically, and the incident was recorded.
        assert_eq!(std::fs::read(dir.join(shard_name(1))).unwrap(), pristine);
        let incidents = paged.drain_storage_incidents();
        assert!(
            incidents.iter().any(|i| matches!(
                i,
                StorageIncident::ShardRepaired { shard: 1, group: 0, .. }
            )),
            "{incidents:?}"
        );
        assert!(PagedFeatures::open(&dir, usize::MAX).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_shard_is_repaired_from_parity() {
        let t = matrix(12, 3, 52);
        let dir = tmp_dir("repair-missing");
        let paged = Features::dense(t.clone())
            .to_paged_with_parity(&dir, 4, usize::MAX, 3)
            .unwrap();
        let pristine = std::fs::read(dir.join(shard_name(0))).unwrap();
        std::fs::remove_file(dir.join(shard_name(0))).unwrap();
        let got = paged.gather_rows(&[0, 1, 2, 3]);
        assert_eq!(got, Features::dense(t).gather_rows(&[0, 1, 2, 3]));
        assert_eq!(std::fs::read(dir.join(shard_name(0))).unwrap(), pristine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_corruption_in_one_group_is_a_structured_error() {
        let t = matrix(20, 4, 53);
        let dir = tmp_dir("repair-two");
        let paged = Features::dense(t)
            .to_paged_with_parity(&dir, 4, usize::MAX, 2)
            .unwrap();
        paged.corrupt_shard_byte(0).unwrap();
        paged.corrupt_shard_byte(1).unwrap();
        let mut out = vec![0.0f32; 4];
        let err = paged.try_gather_into(&[0], &mut out).unwrap_err();
        match err {
            FeatureStoreError::Shard {
                shard,
                offset,
                detail,
            } => {
                assert_eq!(shard, 0);
                assert!(offset > 0, "CRC mismatch carries the CRC field offset");
                assert!(detail.contains("group"), "{detail}");
            }
            other => panic!("expected Shard, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_without_parity_is_a_structured_error() {
        let t = matrix(12, 3, 54);
        let dir = tmp_dir("no-parity");
        let paged = Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        assert_eq!(paged.parity_width(), 0);
        paged.corrupt_shard_byte(2).unwrap();
        let mut out = vec![0.0f32; 3];
        let err = paged.try_gather_into(&[8], &mut out).unwrap_err();
        match err {
            FeatureStoreError::Shard { shard, detail, .. } => {
                assert_eq!(shard, 2);
                assert!(detail.contains("no parity"), "{detail}");
            }
            other => panic!("expected Shard, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_retry_with_accounted_backoff() {
        let t = matrix(12, 3, 55);
        let dir = tmp_dir("transient");
        let paged = Features::dense(t.clone()).to_paged(&dir, 4, usize::MAX).unwrap();
        paged.arm_storage_faults(Box::new(FlakyHook { fail_next: 2 }));
        let indices = [0, 5, 10];
        let mut out = vec![0.0f32; 9];
        let stats = paged.try_gather_into(&indices, &mut out).unwrap();
        assert_eq!(stats.io_retries, 2);
        assert!(stats.backoff_sec > 0.0, "stalls + backoff are accounted");
        assert_eq!(paged.gather_rows(&indices), Features::dense(t).gather_rows(&indices));
        let incidents = paged.drain_storage_incidents();
        let retries = incidents
            .iter()
            .filter(|i| matches!(i, StorageIncident::IoRetry { .. }))
            .count();
        assert_eq!(retries, 2, "{incidents:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retry_budget_is_a_structured_error() {
        let t = matrix(12, 3, 56);
        let dir = tmp_dir("exhausted");
        let paged = Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        paged.set_max_io_retries(1);
        paged.arm_storage_faults(Box::new(FlakyHook { fail_next: 99 }));
        let mut out = vec![0.0f32; 3];
        let err = paged.try_gather_into(&[0], &mut out).unwrap_err();
        match err {
            FeatureStoreError::Shard { shard, detail, .. } => {
                assert_eq!(shard, 0);
                assert!(detail.contains("retry budget 1"), "{detail}");
            }
            other => panic!("expected Shard, got {other:?}"),
        }
        // Disarming clears the chaos stream; the store works again.
        paged.disarm_storage_faults();
        assert!(paged.try_gather_into(&[0], &mut out).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_repairs_shards_and_rebuilds_parity() {
        let t = matrix(24, 3, 57);
        let dir = tmp_dir("scrub-fix");
        let paged = Features::dense(t.clone())
            .to_paged_with_parity(&dir, 4, usize::MAX, 2)
            .unwrap();
        drop(paged);
        // Damage shard 0 (group 0) and the parity shard of group 1.
        let shard0 = dir.join(shard_name(0));
        let mut bytes = std::fs::read(&shard0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&shard0, &bytes).unwrap();
        let parity1 = dir.join(parity_name(1));
        let mut bytes = std::fs::read(&parity1).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(&parity1, &bytes).unwrap();

        let report = scrub(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.shards_checked, 6);
        assert_eq!(report.shards_repaired, vec![0]);
        assert_eq!(report.parity_rebuilt, vec![1]);
        assert_eq!(report.parity_width, 2);

        // Everything validates again, values intact.
        let reopened = Features::Paged(PagedFeatures::open(&dir, usize::MAX).unwrap());
        assert_eq!(reopened.to_dense(), t);
        // A second scrub finds nothing to do.
        let again = scrub(&dir).unwrap();
        assert!(again.shards_repaired.is_empty() && again.parity_rebuilt.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_reports_unrepairable_damage() {
        let t = matrix(24, 3, 58);
        let dir = tmp_dir("scrub-dead");
        Features::dense(t)
            .to_paged_with_parity(&dir, 4, usize::MAX, 2)
            .unwrap();
        for shard in [2, 3] {
            let path = dir.join(shard_name(shard));
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
        }
        let report = scrub(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.unrepairable, vec![2, 3]);
        assert!(report.shards_repaired.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_cols_gather_is_all_hits() {
        let dir = tmp_dir("zerocols");
        let paged = Features::dense(Tensor::zeros(&[6, 0]))
            .to_paged(&dir, 2, usize::MAX)
            .unwrap();
        let mut out = vec![];
        let stats = paged.gather_into(&[1, 5], &mut out);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.pages_in, 0);
        assert_eq!(paged.cache_reservation_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

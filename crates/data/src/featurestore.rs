//! Node-feature storage backends.
//!
//! Betty's Eq. 5 planner bounds *activation* memory, but the node-feature
//! matrix itself was a single dense in-memory [`Tensor`] — capping
//! reachable graph scale at whatever the host can hold. This module puts
//! features behind the [`FeatureStore`] trait with two implementations:
//!
//! * [`DenseFeatures`] — the original in-memory matrix. Zero overhead;
//!   every gather is a hit.
//! * [`PagedFeatures`] — features live on disk as fixed-row shards
//!   (`shard-NNNNN.bfs`, CRC-32-checked like the v2 checkpoint format),
//!   and a byte-budgeted pinned hot-set cache holds the shards the
//!   sampler is actually touching, evicting in least-recently-used order
//!   of the *gather access pattern*.
//!
//! The two backends are **value-identical**: a gather returns the exact
//! same `f32` bits either way, so training through a paged store is
//! bit-identical to training in memory (this is property-tested). Only
//! the accounting differs: the paged store reports cache hits/misses and
//! page-in traffic, which the trainer feeds through its transfer cost
//! model and charges to the `FeatureCache` ledger category.
//!
//! ## Storage dtype
//!
//! Both backends can hold features at a 16-bit storage width
//! ([`DType::Bf16`] / [`DType::F16`]): values are encoded once with
//! round-to-nearest-even and decoded back to f32 on every gather, so the
//! bytes held in memory, in the paged cache, and on disk all halve while
//! compute stays f32. Quantization is idempotent — spilling an
//! already-quantized dense store re-encodes to the identical bits.
//!
//! ## Shard layout
//!
//! ```text
//! meta file "features.meta" (v1 — f32 stores, unchanged on disk):
//!   magic "BTYFMET1" | rows u32 | cols u32 | page_rows u32 | crc32
//! meta file (v2 — written for 16-bit dtypes):
//!   magic "BTYFMET2" | rows u32 | cols u32 | page_rows u32
//!   | dtype tag u32 | crc32
//! shard file "shard-NNNNN.bfs" (one per `page_rows` rows):
//!   v1: magic "BTYFSHD1" | shard u32 | start_row u32 | num_rows u32
//!       | cols u32 | payload (num_rows × cols f32 LE) | crc32
//!   v2: magic "BTYFSHD2" | shard u32 | start_row u32 | num_rows u32
//!       | cols u32 | dtype tag u32 | payload (num_rows × cols u16 LE)
//!       | crc32
//! ```
//!
//! Every file's CRC covers everything after its magic. [`PagedFeatures::open`]
//! verifies every shard (existence, header consistency, full CRC) up
//! front, so gathers during training are infallible — a truncated or
//! bit-flipped shard is rejected at open with a structured
//! [`FeatureStoreError::Format`], never silently trained on.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use betty_tensor::{DType, Tensor};

const META_MAGIC: &[u8; 8] = b"BTYFMET1";
const META_MAGIC_V2: &[u8; 8] = b"BTYFMET2";
const SHARD_MAGIC: &[u8; 8] = b"BTYFSHD1";
const SHARD_MAGIC_V2: &[u8; 8] = b"BTYFSHD2";
const META_FILE: &str = "features.meta";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — the same polynomial the checkpoint format
// uses; betty-nn sits *above* betty-data in the dependency order, so the
// table is re-derived here rather than imported.

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            k += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
};

fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors.

/// Failure opening, writing, or validating a paged feature store.
#[derive(Debug)]
pub enum FeatureStoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A meta or shard file is structurally invalid: bad magic,
    /// truncation, a header inconsistent with the meta file, or a CRC
    /// mismatch.
    Format(String),
}

impl fmt::Display for FeatureStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureStoreError::Io(e) => write!(f, "feature store i/o error: {e}"),
            FeatureStoreError::Format(msg) => write!(f, "invalid feature store: {msg}"),
        }
    }
}

impl std::error::Error for FeatureStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureStoreError::Io(e) => Some(e),
            FeatureStoreError::Format(_) => None,
        }
    }
}

impl From<io::Error> for FeatureStoreError {
    fn from(e: io::Error) -> Self {
        FeatureStoreError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Gather accounting.

/// Cache accounting for one gather (or prewarm) against a feature store.
///
/// Dense stores report every row as a hit and never page. All counts are
/// deterministic functions of the access sequence, so they are safe to
/// compare across thread counts (they are *not* comparable across
/// backends — that is the point of having them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatherStats {
    /// Rows served from memory (dense) or from an already-resident shard.
    pub hits: u64,
    /// Rows whose shard had to be paged in first.
    pub misses: u64,
    /// Shard loads performed.
    pub pages_in: u64,
    /// Bytes read from disk by those shard loads.
    pub bytes_in: u64,
}

impl GatherStats {
    /// Accumulates another gather's counters into this one.
    pub fn absorb(&mut self, other: &GatherStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.pages_in += other.pages_in;
        self.bytes_in += other.bytes_in;
    }
}

// ---------------------------------------------------------------------------
// The trait.

/// A source of node-feature rows.
///
/// Implementations must be value-identical for the same logical matrix:
/// `gather_into` writes the exact same `f32` bits regardless of backend,
/// so the storage choice can never move a training trajectory. Shared
/// references must be usable from multiple threads (`Sync`); paged
/// backends guard their cache internally.
pub trait FeatureStore: fmt::Debug + Send + Sync {
    /// Number of feature rows (nodes).
    fn rows(&self) -> usize;

    /// Feature dimensionality (columns).
    fn cols(&self) -> usize;

    /// Copies the given rows into `out` (row-major, `indices.len() × cols`)
    /// and reports the cache accounting of the access.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != indices.len() * cols`, if an index is out
    /// of range, or (paged stores) if a shard read fails at runtime —
    /// shards are fully validated at open, so this only fires if the
    /// backing files are deleted or the device dies mid-training.
    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats;

    /// Pages in (and pins, subject to the cache budget) every shard the
    /// given rows live on, without copying any row out. Dense stores do
    /// nothing. Prefetchers call this so a later `gather_into` for the
    /// same rows hits memory.
    fn prewarm(&self, indices: &[usize]) -> GatherStats {
        let _ = indices;
        GatherStats::default()
    }

    /// Materializes the full matrix as a dense tensor.
    fn to_dense(&self) -> Tensor;

    /// Bytes of host/device memory the store pins for its hot-set cache:
    /// 0 for dense stores, `min(cache budget, total feature bytes)` for
    /// paged ones. The trainer charges exactly this many bytes to the
    /// `FeatureCache` ledger category every step, and the planner adds
    /// the same constant to every estimate — so estimator drift stays
    /// exact.
    fn cache_reservation_bytes(&self) -> usize {
        0
    }

    /// Flat index and value of the first non-finite feature, if any.
    fn find_non_finite(&self) -> Option<(usize, f32)>;
}

// ---------------------------------------------------------------------------
// Dense backend.

/// The original in-memory backend: a dense `[rows, cols]` matrix, held
/// either as an f32 tensor (the default) or as 16-bit encoded values at a
/// half-width storage dtype.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseFeatures {
    storage: DenseStorage,
    cols: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum DenseStorage {
    F32(Tensor),
    Half {
        dtype: DType,
        rows: usize,
        bits: Vec<u16>,
    },
}

impl DenseFeatures {
    /// Wraps a dense f32 tensor (no quantization).
    pub fn new(tensor: Tensor) -> Self {
        let cols = tensor.cols();
        DenseFeatures {
            storage: DenseStorage::F32(tensor),
            cols,
        }
    }

    /// Encodes `tensor` at `dtype` width. `F32` stores the tensor as-is.
    pub fn with_dtype(tensor: Tensor, dtype: DType) -> Self {
        if dtype == DType::F32 {
            return Self::new(tensor);
        }
        let (rows, cols) = (tensor.rows(), tensor.cols());
        let bits = tensor.data().iter().map(|&v| dtype.encode16(v)).collect();
        DenseFeatures {
            storage: DenseStorage::Half { dtype, rows, bits },
            cols,
        }
    }

    /// The storage width of this store.
    pub fn dtype(&self) -> DType {
        match &self.storage {
            DenseStorage::F32(_) => DType::F32,
            DenseStorage::Half { dtype, .. } => *dtype,
        }
    }
}

impl FeatureStore for DenseFeatures {
    fn rows(&self) -> usize {
        match &self.storage {
            DenseStorage::F32(t) => t.rows(),
            DenseStorage::Half { rows, .. } => *rows,
        }
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        match &self.storage {
            DenseStorage::F32(t) => {
                betty_tensor::segment::gather_rows_into(t, indices, out);
            }
            DenseStorage::Half { dtype, rows, bits } => {
                let cols = self.cols;
                assert_eq!(out.len(), indices.len() * cols, "gather output length mismatch");
                for (slot, &idx) in indices.iter().enumerate() {
                    assert!(idx < *rows, "gather index {idx} out of bounds for {rows} rows");
                    let src = &bits[idx * cols..(idx + 1) * cols];
                    for (o, &b) in out[slot * cols..(slot + 1) * cols].iter_mut().zip(src) {
                        *o = dtype.decode16(b);
                    }
                }
            }
        }
        GatherStats {
            hits: indices.len() as u64,
            ..GatherStats::default()
        }
    }

    fn to_dense(&self) -> Tensor {
        match &self.storage {
            DenseStorage::F32(t) => t.clone(),
            DenseStorage::Half { dtype, rows, bits } => {
                let data = bits.iter().map(|&b| dtype.decode16(b)).collect();
                Tensor::from_vec(data, &[*rows, self.cols]).expect("encoded geometry is consistent")
            }
        }
    }

    fn find_non_finite(&self) -> Option<(usize, f32)> {
        match &self.storage {
            DenseStorage::F32(t) => t
                .data()
                .iter()
                .enumerate()
                .find(|(_, v)| !v.is_finite())
                .map(|(i, &v)| (i, v)),
            DenseStorage::Half { dtype, bits, .. } => bits
                .iter()
                .map(|&b| dtype.decode16(b))
                .enumerate()
                .find(|(_, v)| !v.is_finite()),
        }
    }
}

// ---------------------------------------------------------------------------
// Paged backend.

/// One shard's location on disk plus its payload geometry.
#[derive(Debug, Clone)]
struct ShardInfo {
    path: PathBuf,
    start_row: usize,
    num_rows: usize,
}

/// One resident shard's payload at its storage width. Half-width shards
/// stay encoded in the cache — the byte savings the planner budgets for
/// are real in the hot set, not just on disk — and decode per gathered
/// row on the way out.
#[derive(Debug)]
enum ShardPayload {
    F32(Vec<f32>),
    Half(Vec<u16>),
}

impl ShardPayload {
    fn byte_len(&self) -> usize {
        match self {
            ShardPayload::F32(v) => v.len() * 4,
            ShardPayload::Half(v) => v.len() * 2,
        }
    }

    /// Decodes one `cols`-wide row into `out`.
    fn copy_row(&self, dtype: DType, local: usize, cols: usize, out: &mut [f32]) {
        match self {
            ShardPayload::F32(v) => out.copy_from_slice(&v[local * cols..(local + 1) * cols]),
            ShardPayload::Half(v) => {
                for (o, &b) in out.iter_mut().zip(&v[local * cols..(local + 1) * cols]) {
                    *o = dtype.decode16(b);
                }
            }
        }
    }

    /// Decodes the full payload to f32.
    fn to_f32(&self, dtype: DType) -> Vec<f32> {
        match self {
            ShardPayload::F32(v) => v.clone(),
            ShardPayload::Half(v) => v.iter().map(|&b| dtype.decode16(b)).collect(),
        }
    }
}

/// The mutable hot-set cache: resident shard payloads plus LRU bookkeeping.
#[derive(Debug, Default)]
struct CacheState {
    /// Shard index → (payload, last-touch tick).
    resident: HashMap<usize, (ShardPayload, u64)>,
    /// Bytes currently held by `resident` payloads.
    held_bytes: usize,
    /// Monotonic access counter driving LRU order.
    tick: u64,
}

/// Disk-resident features: fixed-row shards plus a byte-budgeted pinned
/// hot-set cache with LRU eviction in gather access order.
///
/// The cache is guarded by a mutex; access order (and therefore every
/// hit/miss/eviction decision) is the sequential order of `gather_into`
/// and `prewarm` calls, which the trainer issues from a single thread —
/// so paged accounting is as deterministic as the training loop itself.
#[derive(Debug)]
pub struct PagedFeatures {
    dir: PathBuf,
    rows: usize,
    cols: usize,
    page_rows: usize,
    dtype: DType,
    shards: Vec<ShardInfo>,
    cache_budget_bytes: usize,
    cache: Mutex<CacheState>,
}

impl PagedFeatures {
    /// Writes `features` to `dir` as a paged store (meta file + shards of
    /// `page_rows` rows each, all CRC-checksummed and atomically written)
    /// and opens it with the given cache budget.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the directory or a file cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    pub fn spill(
        features: &Tensor,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        Self::spill_with_dtype(features, dir, page_rows, cache_budget_bytes, DType::F32)
    }

    /// [`PagedFeatures::spill`] encoding the payloads at `dtype` width.
    ///
    /// `F32` writes the v1 format byte-for-byte; 16-bit dtypes write the
    /// v2 format (u16 payloads, dtype tag in meta and every shard header).
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] if the directory or a file cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    pub fn spill_with_dtype(
        features: &Tensor,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
        dtype: DType,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        assert!(page_rows > 0, "page_rows must be positive");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (rows, cols) = (features.rows(), features.cols());

        let mut meta = BytesMut::new();
        meta.put_u32_le(rows as u32);
        meta.put_u32_le(cols as u32);
        meta.put_u32_le(page_rows as u32);
        if dtype != DType::F32 {
            meta.put_u32_le(dtype.tag());
        }
        let crc = crc32(&meta);
        let mut meta_file = BytesMut::new();
        meta_file.put_slice(if dtype == DType::F32 { META_MAGIC } else { META_MAGIC_V2 });
        meta_file.put_slice(&meta);
        meta_file.put_u32_le(crc);
        write_atomic(&dir.join(META_FILE), &meta_file)?;

        let num_shards = shard_count(rows, page_rows);
        for shard in 0..num_shards {
            let start_row = shard * page_rows;
            let num_rows = page_rows.min(rows - start_row);
            let mut body = BytesMut::new();
            body.put_u32_le(shard as u32);
            body.put_u32_le(start_row as u32);
            body.put_u32_le(num_rows as u32);
            body.put_u32_le(cols as u32);
            if dtype != DType::F32 {
                body.put_u32_le(dtype.tag());
            }
            for r in start_row..start_row + num_rows {
                for &v in features.row(r) {
                    match dtype {
                        DType::F32 => body.put_f32_le(v),
                        _ => body.put_u16_le(dtype.encode16(v)),
                    }
                }
            }
            let crc = crc32(&body);
            let mut file = BytesMut::new();
            file.put_slice(if dtype == DType::F32 { SHARD_MAGIC } else { SHARD_MAGIC_V2 });
            file.put_slice(&body);
            file.put_u32_le(crc);
            write_atomic(&dir.join(shard_name(shard)), &file)?;
        }
        Self::open(dir, cache_budget_bytes)
    }

    /// Opens a paged store written by [`PagedFeatures::spill`], fully
    /// validating the meta file and **every** shard (magic, header
    /// consistency, CRC over the whole body) so later gathers are
    /// infallible.
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError::Io`] on filesystem problems;
    /// [`FeatureStoreError::Format`] for a missing, truncated,
    /// inconsistent, or bit-flipped file.
    pub fn open(
        dir: impl AsRef<Path>,
        cache_budget_bytes: usize,
    ) -> Result<Arc<Self>, FeatureStoreError> {
        let dir = dir.as_ref().to_path_buf();
        let meta_bytes = Bytes::from(std::fs::read(dir.join(META_FILE))?);
        let mut buf = meta_bytes.clone();
        if buf.remaining() < META_MAGIC.len() + 3 * 4 + 4 {
            return Err(FeatureStoreError::Format("meta file truncated".into()));
        }
        let magic = buf.split_to(META_MAGIC.len());
        let v2 = match &magic[..] {
            m if m == META_MAGIC => false,
            m if m == META_MAGIC_V2 => true,
            _ => return Err(FeatureStoreError::Format("bad meta magic".into())),
        };
        let body_len = if v2 { 4 * 4 } else { 3 * 4 };
        if buf.remaining() < body_len + 4 {
            return Err(FeatureStoreError::Format("meta file truncated".into()));
        }
        let body = buf.split_to(body_len);
        let stored_crc = buf.get_u32_le();
        if buf.remaining() > 0 {
            return Err(FeatureStoreError::Format("trailing bytes in meta file".into()));
        }
        if crc32(&body) != stored_crc {
            return Err(FeatureStoreError::Format("meta CRC mismatch".into()));
        }
        let mut body = body;
        let rows = body.get_u32_le() as usize;
        let cols = body.get_u32_le() as usize;
        let page_rows = body.get_u32_le() as usize;
        let dtype = if v2 {
            let tag = body.get_u32_le();
            match DType::from_tag(tag) {
                Some(DType::F32) | None => {
                    return Err(FeatureStoreError::Format(format!(
                        "meta names invalid 16-bit dtype tag {tag}"
                    )))
                }
                Some(d) => d,
            }
        } else {
            DType::F32
        };
        if page_rows == 0 {
            return Err(FeatureStoreError::Format("page_rows is zero".into()));
        }

        let num_shards = shard_count(rows, page_rows);
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            let path = dir.join(shard_name(shard));
            let start_row = shard * page_rows;
            let num_rows = page_rows.min(rows - start_row);
            let (got_start, got_rows) =
                validate_shard(&path, shard, cols, dtype).map_err(|e| match e {
                    FeatureStoreError::Format(msg) => {
                        FeatureStoreError::Format(format!("shard {shard}: {msg}"))
                    }
                    other => other,
                })?;
            if got_start != start_row || got_rows != num_rows {
                return Err(FeatureStoreError::Format(format!(
                    "shard {shard}: header says rows {got_start}..{} but meta expects {start_row}..{}",
                    got_start + got_rows,
                    start_row + num_rows
                )));
            }
            shards.push(ShardInfo {
                path,
                start_row,
                num_rows,
            });
        }
        Ok(Arc::new(Self {
            dir,
            rows,
            cols,
            page_rows,
            dtype,
            shards,
            cache_budget_bytes,
            cache: Mutex::new(CacheState::default()),
        }))
    }

    /// The storage width of the shard payloads.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The directory the shards live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows per shard (the page size).
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Number of shard files.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured cache budget, in bytes (not clamped to the total).
    pub fn cache_budget_bytes(&self) -> usize {
        self.cache_budget_bytes
    }

    /// Bytes of shard payload currently resident in the cache.
    pub fn cache_held_bytes(&self) -> usize {
        self.cache.lock().expect("feature cache poisoned").held_bytes
    }

    /// Reads one shard's payload from disk at its storage width (header
    /// re-skipped, CRC *not* re-verified — `open` already proved it).
    fn read_shard_payload(&self, shard: usize) -> ShardPayload {
        let info = &self.shards[shard];
        let bytes = std::fs::read(&info.path).unwrap_or_else(|e| {
            panic!(
                "feature shard {} vanished or became unreadable mid-run: {e}",
                info.path.display()
            )
        });
        let header_words = if self.dtype == DType::F32 { 4 } else { 5 };
        let header = SHARD_MAGIC.len() + header_words * 4;
        let payload_len = info.num_rows * self.cols;
        let expected = header + payload_len * self.dtype.bytes_per_value() + 4;
        assert_eq!(
            bytes.len(),
            expected,
            "feature shard {} changed size mid-run",
            info.path.display()
        );
        let mut buf = Bytes::from(bytes);
        buf.advance(header);
        match self.dtype {
            DType::F32 => ShardPayload::F32((0..payload_len).map(|_| buf.get_f32_le()).collect()),
            _ => ShardPayload::Half((0..payload_len).map(|_| buf.get_u16_le()).collect()),
        }
    }

    /// Bytes one shard's payload occupies at the storage width.
    fn shard_payload_bytes(&self, shard: usize) -> usize {
        self.shards[shard].num_rows * self.cols * self.dtype.bytes_per_value()
    }

    /// Ensures `shard` is resident, updating its LRU tick; returns whether
    /// a disk load happened. The just-touched shard is never its own
    /// eviction victim, so a single over-budget shard still serves the
    /// whole gather.
    fn touch_shard(&self, state: &mut CacheState, shard: usize) -> bool {
        state.tick += 1;
        let tick = state.tick;
        if let Some((_, last)) = state.resident.get_mut(&shard) {
            *last = tick;
            return false;
        }
        let payload = self.read_shard_payload(shard);
        state.held_bytes += payload.byte_len();
        state.resident.insert(shard, (payload, tick));
        // Evict least-recently-used shards (never the one just loaded)
        // until the pinned set fits the budget again. Ties cannot occur:
        // ticks are unique.
        while state.held_bytes > self.cache_budget_bytes && state.resident.len() > 1 {
            let victim = state
                .resident
                .iter()
                .filter(|(&s, _)| s != shard)
                .min_by_key(|(&s, &(_, last))| (last, s))
                .map(|(&s, _)| s);
            match victim {
                Some(v) => {
                    if let Some((payload, _)) = state.resident.remove(&v) {
                        state.held_bytes -= payload.byte_len();
                    }
                }
                None => break,
            }
        }
        true
    }
}

impl FeatureStore for PagedFeatures {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        assert_eq!(
            out.len(),
            indices.len() * self.cols,
            "output buffer must be indices.len() × cols"
        );
        let mut stats = GatherStats::default();
        if self.cols == 0 {
            stats.hits = indices.len() as u64;
            return stats;
        }
        let mut state = self.cache.lock().expect("feature cache poisoned");
        for (slot, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "row {idx} out of range ({} rows)", self.rows);
            let shard = idx / self.page_rows;
            if self.touch_shard(&mut state, shard) {
                stats.misses += 1;
                stats.pages_in += 1;
                stats.bytes_in += self.shard_payload_bytes(shard) as u64;
            } else {
                stats.hits += 1;
            }
            let (payload, _) = &state.resident[&shard];
            let local = idx - self.shards[shard].start_row;
            payload.copy_row(
                self.dtype,
                local,
                self.cols,
                &mut out[slot * self.cols..(slot + 1) * self.cols],
            );
        }
        stats
    }

    fn prewarm(&self, indices: &[usize]) -> GatherStats {
        let mut stats = GatherStats::default();
        if self.cols == 0 {
            return stats;
        }
        let mut state = self.cache.lock().expect("feature cache poisoned");
        // Deduplicated in first-appearance order so the page-in sequence
        // (and therefore eviction order) tracks the access pattern.
        let mut seen = Vec::new();
        for &idx in indices {
            assert!(idx < self.rows, "row {idx} out of range ({} rows)", self.rows);
            let shard = idx / self.page_rows;
            if seen.contains(&shard) {
                continue;
            }
            seen.push(shard);
            if self.touch_shard(&mut state, shard) {
                stats.pages_in += 1;
                stats.bytes_in += self.shard_payload_bytes(shard) as u64;
            }
        }
        stats
    }

    fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for (shard, info) in self.shards.iter().enumerate() {
            let payload = self.read_shard_payload(shard).to_f32(self.dtype);
            let start = info.start_row * self.cols;
            data[start..start + payload.len()].copy_from_slice(&payload);
        }
        Tensor::from_vec(data, &[self.rows, self.cols]).expect("shard geometry is validated")
    }

    fn cache_reservation_bytes(&self) -> usize {
        self.cache_budget_bytes
            .min(self.rows * self.cols * self.dtype.bytes_per_value())
    }

    fn find_non_finite(&self) -> Option<(usize, f32)> {
        for (shard, info) in self.shards.iter().enumerate() {
            let payload = self.read_shard_payload(shard).to_f32(self.dtype);
            if let Some((i, &v)) = payload.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Some((info.start_row * self.cols + i, v));
            }
        }
        None
    }
}

fn shard_count(rows: usize, page_rows: usize) -> usize {
    rows.div_ceil(page_rows).max(1)
}

fn shard_name(shard: usize) -> String {
    format!("shard-{shard:05}.bfs")
}

/// Validates one shard file end to end (version and dtype must match the
/// meta file); returns `(start_row, num_rows)` from its header.
fn validate_shard(
    path: &Path,
    expect_shard: usize,
    expect_cols: usize,
    expect_dtype: DType,
) -> Result<(usize, usize), FeatureStoreError> {
    let bytes = Bytes::from(std::fs::read(path).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            FeatureStoreError::Format(format!("missing shard file {}", path.display()))
        } else {
            FeatureStoreError::Io(e)
        }
    })?);
    let header_words = if expect_dtype == DType::F32 { 4 } else { 5 };
    let header = SHARD_MAGIC.len() + header_words * 4;
    if bytes.len() < header + 4 {
        return Err(FeatureStoreError::Format("truncated shard file".into()));
    }
    let mut buf = bytes.clone();
    let magic = buf.split_to(SHARD_MAGIC.len());
    let expect_magic: &[u8] = if expect_dtype == DType::F32 {
        SHARD_MAGIC
    } else {
        SHARD_MAGIC_V2
    };
    if &magic[..] != expect_magic {
        return Err(FeatureStoreError::Format(
            "shard magic does not match meta version".into(),
        ));
    }
    let body = buf.split_to(buf.remaining() - 4);
    let stored_crc = buf.get_u32_le();
    if crc32(&body) != stored_crc {
        return Err(FeatureStoreError::Format("shard CRC mismatch".into()));
    }
    let mut body = body;
    let shard = body.get_u32_le() as usize;
    let start_row = body.get_u32_le() as usize;
    let num_rows = body.get_u32_le() as usize;
    let cols = body.get_u32_le() as usize;
    if expect_dtype != DType::F32 {
        let tag = body.get_u32_le();
        if DType::from_tag(tag) != Some(expect_dtype) {
            return Err(FeatureStoreError::Format(format!(
                "shard dtype tag {tag} does not match meta dtype {expect_dtype}"
            )));
        }
    }
    if shard != expect_shard {
        return Err(FeatureStoreError::Format(format!(
            "header names shard {shard}, expected {expect_shard}"
        )));
    }
    if cols != expect_cols {
        return Err(FeatureStoreError::Format(format!(
            "shard has {cols} cols, meta says {expect_cols}"
        )));
    }
    if body.remaining() != num_rows * cols * expect_dtype.bytes_per_value() {
        return Err(FeatureStoreError::Format(format!(
            "payload is {} bytes, header implies {}",
            body.remaining(),
            num_rows * cols * expect_dtype.bytes_per_value()
        )));
    }
    Ok((start_row, num_rows))
}

/// Same-directory atomic write (tmp + fsync + rename), mirroring the
/// dataset and checkpoint writers.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// The Dataset-facing wrapper.

/// Node features behind a storage backend.
///
/// This is the concrete type `Dataset` holds: a cheaply cloneable handle
/// over either backend (paged stores are shared through an [`Arc`], so a
/// cloned dataset shares one cache and one set of shard files). All the
/// read paths in the workspace go through this type, so swapping the
/// backend never touches a call site.
#[derive(Debug, Clone)]
pub enum Features {
    /// In-memory dense matrix (the default; zero overhead).
    Dense(DenseFeatures),
    /// Disk-resident shards with a pinned hot-set cache.
    Paged(Arc<PagedFeatures>),
}

impl Features {
    /// Wraps a dense tensor.
    pub fn dense(tensor: Tensor) -> Self {
        Features::Dense(DenseFeatures::new(tensor))
    }

    /// Wraps a dense tensor encoded at `dtype` storage width.
    pub fn dense_with_dtype(tensor: Tensor, dtype: DType) -> Self {
        Features::Dense(DenseFeatures::with_dtype(tensor, dtype))
    }

    /// The storage width of this store's values.
    pub fn dtype(&self) -> DType {
        match self {
            Features::Dense(d) => d.dtype(),
            Features::Paged(p) => p.dtype(),
        }
    }

    /// Re-encodes a dense store at `dtype` width (decode → re-encode, so
    /// converting an already-quantized store is lossless for values the
    /// target dtype represents exactly).
    ///
    /// # Panics
    ///
    /// Panics on a paged store: the shard files' width is fixed at spill
    /// time — choose the dtype *before* calling [`Features::to_paged`].
    pub fn with_dtype(&self, dtype: DType) -> Self {
        match self {
            Features::Dense(d) => Features::dense_with_dtype(d.to_dense(), dtype),
            Features::Paged(_) => {
                panic!("cannot re-encode a paged store; set the dtype before spilling")
            }
        }
    }

    /// Wraps an opened paged store.
    pub fn paged(store: Arc<PagedFeatures>) -> Self {
        Features::Paged(store)
    }

    /// Spills this matrix to `dir` as a paged store and returns a paged
    /// handle over it (the dense copy is dropped by the caller).
    ///
    /// # Errors
    ///
    /// [`FeatureStoreError`] if the shards cannot be written (or, when
    /// called on an already-paged store, re-sharded).
    pub fn to_paged(
        &self,
        dir: impl AsRef<Path>,
        page_rows: usize,
        cache_budget_bytes: usize,
    ) -> Result<Self, FeatureStoreError> {
        let dense = self.to_dense();
        Ok(Features::Paged(PagedFeatures::spill_with_dtype(
            &dense,
            dir,
            page_rows,
            cache_budget_bytes,
            self.dtype(),
        )?))
    }

    /// The backend as a trait object.
    pub fn store(&self) -> &dyn FeatureStore {
        match self {
            Features::Dense(d) => d,
            Features::Paged(p) => p.as_ref(),
        }
    }

    /// Whether this is the paged backend.
    pub fn is_paged(&self) -> bool {
        matches!(self, Features::Paged(_))
    }

    /// Stable backend name (`"dense"` / `"paged"`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            Features::Dense(_) => "dense",
            Features::Paged(_) => "paged",
        }
    }

    /// Number of feature rows (nodes).
    pub fn rows(&self) -> usize {
        self.store().rows()
    }

    /// Feature dimensionality.
    pub fn cols(&self) -> usize {
        self.store().cols()
    }

    /// Logical size of the feature matrix in bytes at its storage width
    /// (independent of where it is stored — host-side staging accounting
    /// uses this, which is how a 16-bit dtype becomes planner-visible).
    pub fn size_bytes(&self) -> usize {
        self.rows() * self.cols() * self.dtype().bytes_per_value()
    }

    /// See [`FeatureStore::gather_into`].
    pub fn gather_into(&self, indices: &[usize], out: &mut [f32]) -> GatherStats {
        self.store().gather_into(indices, out)
    }

    /// Gathers rows into a freshly allocated `[indices.len(), cols]`
    /// tensor, discarding the cache accounting.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[indices.len(), self.cols()]);
        self.store().gather_into(indices, out.data_mut());
        out
    }

    /// See [`FeatureStore::prewarm`].
    pub fn prewarm(&self, indices: &[usize]) -> GatherStats {
        self.store().prewarm(indices)
    }

    /// See [`FeatureStore::to_dense`].
    pub fn to_dense(&self) -> Tensor {
        self.store().to_dense()
    }

    /// See [`FeatureStore::cache_reservation_bytes`].
    pub fn cache_reservation_bytes(&self) -> usize {
        self.store().cache_reservation_bytes()
    }

    /// See [`FeatureStore::find_non_finite`].
    pub fn find_non_finite(&self) -> Option<(usize, f32)> {
        self.store().find_non_finite()
    }

    /// One feature value (row-major). Test/diagnostic convenience; paged
    /// stores pay a single-row gather.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let mut out = vec![0.0f32; self.cols()];
        self.gather_into(&[row], &mut out);
        out[col]
    }
}

impl From<Tensor> for Features {
    fn from(tensor: Tensor) -> Self {
        Features::dense(tensor)
    }
}

impl PartialEq for Features {
    /// Logical equality: same shape and the same `f32` bits, regardless
    /// of backend (a paged store equals the dense matrix it was spilled
    /// from).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Features::Dense(a), Features::Dense(b)) => a == b,
            (a, b) => {
                a.rows() == b.rows() && a.cols() == b.cols() && a.to_dense() == b.to_dense()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    /// Bytes per `f32` feature value (tests hand-compute f32 budgets).
    const BYTES_PER_VALUE: usize = 4;

    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64Mcg;

    fn tmp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("betty-fstore-{name}-{}", std::process::id()))
    }

    fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Pcg64Mcg::seed_from_u64(seed);
        betty_tensor::randn(&[rows, cols], &mut rng)
    }

    #[test]
    fn paged_gathers_match_dense_bit_for_bit() {
        let t = matrix(23, 5, 1);
        let dir = tmp_dir("bits");
        let paged = Features::dense(t.clone()).to_paged(&dir, 4, usize::MAX).unwrap();
        let dense = Features::dense(t);
        let indices: Vec<usize> = vec![0, 22, 7, 7, 13, 1, 20];
        let a = dense.gather_rows(&indices);
        let b = paged.gather_rows(&indices);
        assert_eq!(a, b);
        assert_eq!(dense, paged, "logical equality across backends");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_cache_still_returns_exact_values() {
        let t = matrix(40, 3, 2);
        let dir = tmp_dir("tiny-cache");
        // Budget of one shard: every shard switch evicts.
        let paged = Features::dense(t.clone())
            .to_paged(&dir, 8, 8 * 3 * BYTES_PER_VALUE)
            .unwrap();
        let indices: Vec<usize> = (0..40).rev().chain(0..40).collect();
        let mut out = vec![0.0f32; indices.len() * 3];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.hits + stats.misses, indices.len() as u64);
        assert!(stats.pages_in > 5, "tiny budget must thrash: {stats:?}");
        for (slot, &idx) in indices.iter().enumerate() {
            assert_eq!(&out[slot * 3..(slot + 1) * 3], t.row(idx));
        }
        if let Features::Paged(p) = &paged {
            assert!(p.cache_held_bytes() <= 8 * 3 * BYTES_PER_VALUE);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_pages_each_shard_once() {
        let t = matrix(30, 4, 3);
        let dir = tmp_dir("unbounded");
        let paged = Features::dense(t).to_paged(&dir, 7, usize::MAX).unwrap();
        let indices: Vec<usize> = (0..30).chain(0..30).collect();
        let mut out = vec![0.0f32; indices.len() * 4];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.pages_in, 5, "30 rows / 7 per page = 5 shards");
        let second = paged.gather_into(&indices, &mut out);
        assert_eq!(second.pages_in, 0, "warm cache must not re-page");
        assert_eq!(second.hits, indices.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prewarm_turns_gather_misses_into_hits() {
        let t = matrix(20, 2, 4);
        let dir = tmp_dir("prewarm");
        let paged = Features::dense(t).to_paged(&dir, 5, usize::MAX).unwrap();
        let indices: Vec<usize> = vec![19, 3, 11];
        let warm = paged.prewarm(&indices);
        assert_eq!(warm.pages_in, 3);
        assert!(warm.bytes_in > 0);
        let mut out = vec![0.0f32; indices.len() * 2];
        let stats = paged.gather_into(&indices, &mut out);
        assert_eq!(stats.misses, 0, "prewarmed rows must all hit");
        assert_eq!(stats.hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_reservation_clamps_to_total_bytes() {
        let t = matrix(10, 4, 5);
        let total = 10 * 4 * BYTES_PER_VALUE;
        let dir = tmp_dir("reservation");
        let paged = Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        assert_eq!(paged.cache_reservation_bytes(), total);
        let small = Features::Paged(PagedFeatures::open(&dir, 64).unwrap());
        assert_eq!(small.cache_reservation_bytes(), 64);
        assert_eq!(Features::dense(matrix(4, 4, 0)).cache_reservation_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_is_rejected_at_open() {
        let t = matrix(12, 3, 6);
        let dir = tmp_dir("trunc");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let shard = dir.join(shard_name(1));
        let full = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &full[..full.len() - 5]).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        assert!(matches!(err, FeatureStoreError::Format(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_shard_fails_crc_at_open() {
        let t = matrix(12, 3, 7);
        let dir = tmp_dir("bitflip");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let shard = dir.join(shard_name(2));
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&shard, &bytes).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        match err {
            FeatureStoreError::Format(msg) => assert!(msg.contains("CRC"), "{msg}"),
            other => panic!("expected Format, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_is_a_format_error() {
        let t = matrix(12, 3, 8);
        let dir = tmp_dir("missing");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        std::fs::remove_file(dir.join(shard_name(0))).unwrap();
        let err = PagedFeatures::open(&dir, usize::MAX).unwrap_err();
        assert!(matches!(err, FeatureStoreError::Format(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_scan_reports_flat_index_on_both_backends() {
        let mut t = matrix(9, 4, 9);
        t.data_mut()[4 * 4 + 2] = f32::NEG_INFINITY;
        let dense = Features::dense(t.clone());
        assert_eq!(dense.find_non_finite().map(|(i, _)| i), Some(18));
        let dir = tmp_dir("nonfinite");
        let paged = dense.to_paged(&dir, 2, usize::MAX).unwrap();
        assert_eq!(paged.find_non_finite().map(|(i, _)| i), Some(18));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_least_recently_gathered_shard() {
        let t = matrix(12, 2, 10);
        let dir = tmp_dir("lru");
        // 3 shards of 4 rows; budget fits exactly 2 shards.
        let budget = 2 * 4 * 2 * BYTES_PER_VALUE;
        let paged = Features::dense(t).to_paged(&dir, 4, budget).unwrap();
        let mut out = vec![0.0f32; 2];
        paged.gather_into(&[0], &mut out); // shard 0 in
        paged.gather_into(&[4], &mut out); // shard 1 in
        paged.gather_into(&[0], &mut out); // shard 0 freshened
        let stats = paged.gather_into(&[8], &mut out); // shard 2 evicts shard 1
        assert_eq!(stats.pages_in, 1);
        let again = paged.gather_into(&[0], &mut out);
        assert_eq!(again.hits, 1, "shard 0 must have survived");
        let reload = paged.gather_into(&[4], &mut out);
        assert_eq!(reload.pages_in, 1, "shard 1 must have been the victim");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bf16 store gathers the dtype-quantized values — identically from
    /// the dense backend, the paged backend, and a fresh re-open of the
    /// shard files — while every byte figure halves.
    #[test]
    fn half_width_store_round_trips_across_backends() {
        for dtype in [DType::Bf16, DType::F16] {
            let t = matrix(23, 6, 42);
            let dense = Features::dense_with_dtype(t.clone(), dtype);
            assert_eq!(dense.dtype(), dtype);
            assert_eq!(dense.size_bytes(), 23 * 6 * 2);

            // Dense gathers return the quantized grid values.
            let indices: Vec<usize> = vec![0, 22, 7, 7, 13, 1, 20];
            let a = dense.gather_rows(&indices);
            for (slot, &idx) in indices.iter().enumerate() {
                for c in 0..6 {
                    assert_eq!(
                        a.at2(slot, c).to_bits(),
                        dtype.quantize(t.at2(idx, c)).to_bits()
                    );
                }
            }

            let dir = tmp_dir(&format!("half-{dtype}"));
            let paged = dense.to_paged(&dir, 4, usize::MAX).unwrap();
            assert_eq!(paged.dtype(), dtype);
            assert_eq!(paged.size_bytes(), 23 * 6 * 2);
            let b = paged.gather_rows(&indices);
            assert_eq!(a, b, "paged {dtype} gather must match dense bit-for-bit");

            // Re-open from disk (v2 meta + shards validate end to end).
            let reopened = Features::Paged(PagedFeatures::open(&dir, usize::MAX).unwrap());
            assert_eq!(reopened.dtype(), dtype);
            assert_eq!(reopened.gather_rows(&indices), a);
            assert_eq!(dense, reopened, "logical equality across backends");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Cache accounting (held bytes, bytes paged in, reservation) tracks
    /// the 16-bit payload width, not f32.
    #[test]
    fn half_width_cache_accounting_uses_two_byte_values() {
        let t = matrix(16, 4, 43);
        let dir = tmp_dir("half-cache");
        let paged = Features::dense_with_dtype(t, DType::Bf16)
            .to_paged(&dir, 4, usize::MAX)
            .unwrap();
        let mut out = vec![0.0f32; 4];
        let stats = paged.gather_into(&[0], &mut out);
        assert_eq!(stats.bytes_in, 4 * 4 * 2, "one 4×4 shard at 2 B/value");
        if let Features::Paged(p) = &paged {
            assert_eq!(p.cache_held_bytes(), 4 * 4 * 2);
        }
        assert_eq!(paged.cache_reservation_bytes(), 16 * 4 * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Quantization is idempotent, so spilling an already-quantized store
    /// and re-encoding its decoded values is lossless.
    #[test]
    fn requantizing_a_quantized_store_is_identity() {
        let t = matrix(9, 5, 44);
        let once = Features::dense_with_dtype(t, DType::Bf16);
        let twice = once.with_dtype(DType::Bf16);
        assert_eq!(once, twice);
    }

    /// A v1 (f32) store written before the dtype field existed still opens
    /// and reports F32 — and f32 spills still write the v1 format.
    #[test]
    fn f32_spill_remains_v1_format() {
        let t = matrix(8, 3, 45);
        let dir = tmp_dir("v1-compat");
        Features::dense(t).to_paged(&dir, 4, usize::MAX).unwrap();
        let meta = std::fs::read(dir.join(META_FILE)).unwrap();
        assert_eq!(&meta[..8], META_MAGIC);
        let shard = std::fs::read(dir.join(shard_name(0))).unwrap();
        assert_eq!(&shard[..8], SHARD_MAGIC);
        let opened = PagedFeatures::open(&dir, usize::MAX).unwrap();
        assert_eq!(opened.dtype(), DType::F32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_cols_gather_is_all_hits() {
        let dir = tmp_dir("zerocols");
        let paged = Features::dense(Tensor::zeros(&[6, 0]))
            .to_paged(&dir, 2, usize::MAX)
            .unwrap();
        let mut out = vec![];
        let stats = paged.gather_into(&[1, 5], &mut out);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.pages_in, 0);
        assert_eq!(paged.cache_reservation_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

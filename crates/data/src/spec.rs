//! Named dataset presets mirroring Table 4 of the paper.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_graph::NodeId;
use betty_tensor::Tensor;

use crate::generate::{planted_power_law, PlantedPowerLawConfig};
use crate::Dataset;

/// Shape constants for a synthetic stand-in of one of the paper's datasets.
///
/// `scaled(f)` shrinks the node count (and proportionally the community
/// count floor) so experiments run at laptop scale while keeping degree
/// structure; feature dimensionality and class count stay faithful to
/// Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Preset name.
    pub name: &'static str,
    /// Node count at scale 1.0 (Table 4).
    pub full_nodes: usize,
    /// Feature dimension (Table 4).
    pub feature_dim: usize,
    /// Class count.
    pub num_classes: usize,
    /// Preferential-attachment edges per node (mean out-degree).
    pub edges_per_node: usize,
    /// Cross-community edge probability.
    pub inter_community_p: f64,
    /// Fraction of nodes in the training split.
    pub train_fraction: f64,
    /// Feature noise level (higher = harder task).
    pub feature_noise: f32,
    /// Uniform-attachment mixing (see
    /// [`crate::PlantedPowerLawConfig::uniform_attachment_p`]).
    pub uniform_attachment_p: f64,
    /// Applied scale factor.
    pub scale: f64,
}

impl DatasetSpec {
    /// Cora: 2,708 nodes, 1,433 features, 7 classes.
    pub fn cora() -> Self {
        Self {
            name: "cora",
            full_nodes: 2_708,
            feature_dim: 1_433,
            num_classes: 7,
            edges_per_node: 2,
            inter_community_p: 0.15,
            train_fraction: 0.45,
            feature_noise: 1.0,
            uniform_attachment_p: 0.3,
            scale: 1.0,
        }
    }

    /// Pubmed: 19,717 nodes, 500 features, 3 classes.
    pub fn pubmed() -> Self {
        Self {
            name: "pubmed",
            full_nodes: 19_717,
            feature_dim: 500,
            num_classes: 3,
            edges_per_node: 2,
            inter_community_p: 0.15,
            train_fraction: 0.45,
            feature_noise: 1.0,
            uniform_attachment_p: 0.3,
            scale: 1.0,
        }
    }

    /// Reddit: 233k nodes, 602 features, 41 classes, very dense (~490 avg
    /// degree in the original; the generator uses a high attachment count).
    pub fn reddit() -> Self {
        Self {
            name: "reddit",
            full_nodes: 232_965,
            feature_dim: 602,
            num_classes: 41,
            edges_per_node: 25,
            inter_community_p: 0.1,
            train_fraction: 0.66,
            feature_noise: 1.2,
            uniform_attachment_p: 0.3,
            scale: 1.0,
        }
    }

    /// ogbn-arxiv: 169k nodes, 128 features, 40 classes.
    pub fn ogbn_arxiv() -> Self {
        Self {
            name: "ogbn-arxiv",
            full_nodes: 169_343,
            feature_dim: 128,
            num_classes: 40,
            edges_per_node: 7,
            inter_community_p: 0.12,
            train_fraction: 0.54,
            feature_noise: 1.2,
            uniform_attachment_p: 0.3,
            scale: 1.0,
        }
    }

    /// ogbn-products: 2.45M nodes, 100 features, 47 classes; the paper's
    /// full training batch is 196,615 nodes (~8%).
    pub fn ogbn_products() -> Self {
        Self {
            name: "ogbn-products",
            full_nodes: 2_449_029,
            feature_dim: 100,
            num_classes: 47,
            edges_per_node: 12,
            inter_community_p: 0.1,
            train_fraction: 0.08,
            feature_noise: 1.2,
            uniform_attachment_p: 0.3,
            scale: 1.0,
        }
    }

    /// All five presets in Table 4 order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::cora(),
            Self::pubmed(),
            Self::reddit(),
            Self::ogbn_arxiv(),
            Self::ogbn_products(),
        ]
    }

    /// Returns the spec with node count scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale must be in (0, 1], got {factor}"
        );
        self.scale = factor;
        self
    }

    /// Overrides the feature dimension (examples that want quick runs can
    /// shrink the 1,433-wide Cora features, say).
    pub fn with_feature_dim(mut self, dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        self.feature_dim = dim;
        self
    }

    /// Overrides the mean out-degree (preferential-attachment edges per
    /// node) — used when an experiment's fanout sweep needs denser
    /// neighborhoods than the scaled default.
    pub fn with_edges_per_node(mut self, edges: usize) -> Self {
        assert!(edges > 0, "edges per node must be positive");
        self.edges_per_node = edges;
        self
    }

    /// Overrides the uniform-attachment mixing probability (0 = pure
    /// preferential attachment; higher values spread neighbor lists away
    /// from hubs).
    pub fn with_uniform_attachment(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability required");
        self.uniform_attachment_p = p;
        self
    }

    /// Node count after scaling (at least 10 × classes).
    pub fn num_nodes(&self) -> usize {
        ((self.full_nodes as f64 * self.scale) as usize).max(self.num_classes * 10)
    }

    /// Materializes the dataset (deterministic per seed).
    pub fn generate(&self, seed: u64) -> Dataset {
        let n = self.num_nodes();
        let config = PlantedPowerLawConfig {
            num_nodes: n,
            num_communities: self.num_classes,
            edges_per_node: self.edges_per_node,
            inter_community_p: self.inter_community_p,
            uniform_attachment_p: self.uniform_attachment_p,
        };
        let (graph, labels) = planted_power_law(&config, seed);

        // Label-correlated features: community centroid + Gaussian noise.
        let mut rng = Pcg64Mcg::seed_from_u64(seed.wrapping_add(1));
        let centroids = betty_tensor::randn(&[self.num_classes, self.feature_dim], &mut rng);
        let mut feats = vec![0.0f32; n * self.feature_dim];
        for (i, &label) in labels.iter().enumerate() {
            let base = centroids.row(label);
            for (j, &c) in base.iter().enumerate() {
                feats[i * self.feature_dim + j] =
                    c + self.feature_noise * sample_normal(&mut rng);
            }
        }
        let features =
            Tensor::from_vec(feats, &[n, self.feature_dim]).expect("feature matrix shape");

        // Random splits: train_fraction / rest split evenly into val/test.
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut rng);
        let n_train = ((n as f64 * self.train_fraction) as usize).max(1);
        let n_val = (n - n_train) / 2;
        let train_idx = order[..n_train].to_vec();
        let val_idx = order[n_train..n_train + n_val].to_vec();
        let test_idx = order[n_train + n_val..].to_vec();

        let dataset = Dataset {
            name: format!("{}[n={}]", self.name, n),
            graph,
            features: features.into(),
            labels,
            num_classes: self.num_classes,
            train_idx,
            val_idx,
            test_idx,
        };
        debug_assert!(dataset.validate().is_ok());
        dataset
    }
}

fn sample_normal(rng: &mut impl Rng) -> f32 {
    // Box–Muller (single value; the pair's partner is discarded).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preset_generates_valid_dataset() {
        let ds = DatasetSpec::ogbn_arxiv().scaled(0.005).generate(3);
        ds.validate().unwrap();
        assert!(ds.num_nodes() >= 400);
        assert_eq!(ds.feature_dim(), 128);
        assert_eq!(ds.num_classes, 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetSpec::cora().scaled(0.2).generate(9);
        let b = DatasetSpec::cora().scaled(0.2).generate(9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.train_idx, b.train_idx);
    }

    #[test]
    fn features_are_class_separable() {
        // Nearest-centroid on the generated features should beat chance by
        // a wide margin — otherwise accuracy experiments are meaningless.
        let ds = DatasetSpec::pubmed().scaled(0.02).generate(5);
        let k = ds.num_classes;
        let d = ds.feature_dim();
        // Recompute class means from the data.
        let mut means = vec![vec![0.0f32; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..ds.num_nodes() {
            let l = ds.labels[i];
            counts[l] += 1;
            for (j, m) in means[l].iter_mut().enumerate() {
                *m += ds.features.at2(i, j);
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..ds.num_nodes() {
            let row: Vec<f32> = (0..d).map(|j| ds.features.at2(i, j)).collect();
            let pred = (0..k)
                .min_by(|&a, &b| {
                    let da: f32 = row.iter().zip(&means[a]).map(|(x, m)| (x - m).powi(2)).sum();
                    let db: f32 = row.iter().zip(&means[b]).map(|(x, m)| (x - m).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if pred == ds.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.num_nodes() as f64;
        assert!(acc > 0.8, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn all_presets_have_distinct_names() {
        let names: Vec<_> = DatasetSpec::all().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(names, dedup);
    }

    #[test]
    fn minimum_node_floor() {
        let spec = DatasetSpec::cora().scaled(0.0001);
        assert!(spec.num_nodes() >= 70);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        DatasetSpec::cora().scaled(0.0);
    }

    #[test]
    fn feature_dim_override() {
        let ds = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(16)
            .generate(1);
        assert_eq!(ds.feature_dim(), 16);
    }
}

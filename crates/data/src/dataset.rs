use betty_graph::{CsrGraph, NodeId};
use betty_tensor::Tensor;

/// A node-classification dataset: graph, features, labels, and splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (preset name plus scale).
    pub name: String,
    /// The input graph; edges `u → v` mean `v` aggregates from `u`.
    pub graph: CsrGraph,
    /// Node features, `[num_nodes, feature_dim]`.
    pub features: Tensor,
    /// Class label per node.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Training node ids (the full-batch output set).
    pub train_idx: Vec<NodeId>,
    /// Validation node ids.
    pub val_idx: Vec<NodeId>,
    /// Test node ids.
    pub test_idx: Vec<NodeId>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Labels of the given nodes, in order.
    pub fn labels_of(&self, nodes: &[NodeId]) -> Vec<usize> {
        nodes.iter().map(|&v| self.labels[v as usize]).collect()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.features.rows() != n {
            return Err(format!(
                "{} feature rows for {n} nodes",
                self.features.rows()
            ));
        }
        if self.labels.len() != n {
            return Err(format!("{} labels for {n} nodes", self.labels.len()));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= self.num_classes) {
            return Err(format!("label {bad} >= {} classes", self.num_classes));
        }
        let mut seen = vec![false; n];
        for idx in [&self.train_idx, &self.val_idx, &self.test_idx] {
            for &v in idx {
                if v as usize >= n {
                    return Err(format!("split node {v} out of bounds"));
                }
                if seen[v as usize] {
                    return Err(format!("node {v} appears in two splits"));
                }
                seen[v as usize] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            graph: CsrGraph::from_edges(4, &[(0, 1), (2, 3)]),
            features: Tensor::zeros(&[4, 2]),
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
            train_idx: vec![0, 1],
            val_idx: vec![2],
            test_idx: vec![3],
        }
    }

    #[test]
    fn valid_dataset_passes() {
        tiny().validate().unwrap();
        assert_eq!(tiny().feature_dim(), 2);
        assert_eq!(tiny().labels_of(&[3, 0]), vec![1, 0]);
    }

    #[test]
    fn overlapping_splits_rejected() {
        let mut d = tiny();
        d.val_idx = vec![0];
        assert!(d.validate().unwrap_err().contains("two splits"));
    }

    #[test]
    fn label_range_checked() {
        let mut d = tiny();
        d.labels[2] = 9;
        assert!(d.validate().is_err());
    }

    #[test]
    fn feature_rows_checked() {
        let mut d = tiny();
        d.features = Tensor::zeros(&[3, 2]);
        assert!(d.validate().is_err());
    }
}

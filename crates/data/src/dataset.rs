use std::fmt;

use betty_graph::{CsrGraph, NodeId};

use crate::Features;

/// A structural defect found in a dataset, naming the offending element
/// so a bad export can be fixed at the source instead of surfacing later
/// as a panic (out-of-range gather) or a silent NaN loss.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An edge references a node outside `0..num_nodes`.
    EdgeOutOfRange {
        /// Index of the edge in the serialized edge list.
        edge_index: usize,
        /// Source endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
        /// Number of nodes in the dataset.
        num_nodes: usize,
    },
    /// A feature value is NaN or ±Inf.
    NonFiniteFeature {
        /// Node (feature-matrix row) holding the value.
        node: usize,
        /// Feature dimension (column) holding the value.
        dim: usize,
        /// The offending value (as a debug string, since NaN ≠ NaN).
        value: String,
    },
    /// Any other inconsistency (counts, label ranges, split overlap).
    Inconsistent(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EdgeOutOfRange {
                edge_index,
                src,
                dst,
                num_nodes,
            } => write!(
                f,
                "edge {edge_index} ({src} -> {dst}) references a node outside 0..{num_nodes}"
            ),
            DataError::NonFiniteFeature { node, dim, value } => {
                write!(f, "feature[{node}][{dim}] is non-finite ({value})")
            }
            DataError::Inconsistent(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for DataError {}

/// A node-classification dataset: graph, features, labels, and splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (preset name plus scale).
    pub name: String,
    /// The input graph; edges `u → v` mean `v` aggregates from `u`.
    pub graph: CsrGraph,
    /// Node features, `[num_nodes, feature_dim]`, behind a storage
    /// backend (in-memory dense by default; disk-resident paged via
    /// [`Features::to_paged`]).
    pub features: Features,
    /// Class label per node.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Training node ids (the full-batch output set).
    pub train_idx: Vec<NodeId>,
    /// Validation node ids.
    pub val_idx: Vec<NodeId>,
    /// Test node ids.
    pub test_idx: Vec<NodeId>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Labels of the given nodes, in order.
    pub fn labels_of(&self, nodes: &[NodeId]) -> Vec<usize> {
        nodes.iter().map(|&v| self.labels[v as usize]).collect()
    }

    /// Checks internal consistency, reporting the first defect as a
    /// structured [`DataError`] naming the offending element.
    ///
    /// # Errors
    ///
    /// [`DataError`] describing the first inconsistency found.
    pub fn check(&self) -> Result<(), DataError> {
        let n = self.num_nodes();
        if self.features.rows() != n {
            return Err(DataError::Inconsistent(format!(
                "{} feature rows for {n} nodes",
                self.features.rows()
            )));
        }
        if self.labels.len() != n {
            return Err(DataError::Inconsistent(format!(
                "{} labels for {n} nodes",
                self.labels.len()
            )));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= self.num_classes) {
            return Err(DataError::Inconsistent(format!(
                "label {bad} >= {} classes",
                self.num_classes
            )));
        }
        let mut seen = vec![false; n];
        for idx in [&self.train_idx, &self.val_idx, &self.test_idx] {
            for &v in idx {
                if v as usize >= n {
                    return Err(DataError::Inconsistent(format!(
                        "split node {v} out of bounds"
                    )));
                }
                if seen[v as usize] {
                    return Err(DataError::Inconsistent(format!(
                        "node {v} appears in two splits"
                    )));
                }
                seen[v as usize] = true;
            }
        }
        let d = self.feature_dim();
        if let Some((i, value)) = self.features.find_non_finite() {
            let (node, dim) = locate_flat(i, d);
            return Err(DataError::NonFiniteFeature {
                node,
                dim,
                value: format!("{value}"),
            });
        }
        Ok(())
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (see
    /// [`Dataset::check`] for the structured form).
    pub fn validate(&self) -> Result<(), String> {
        self.check().map_err(|e| e.to_string())
    }
}

/// Maps a flat feature index onto `(node, dim)`. With `feature_dim == 0`
/// no row can own the value, so the flat index itself is reported as the
/// node (previously both collapsed to `(0, 0)`, silently misattributing
/// the defect to node 0).
fn locate_flat(i: usize, d: usize) -> (usize, usize) {
    match (i.checked_div(d), i.checked_rem(d)) {
        (Some(node), Some(dim)) => (node, dim),
        _ => (i, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betty_tensor::Tensor;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            graph: CsrGraph::from_edges(4, &[(0, 1), (2, 3)]),
            features: Features::dense(Tensor::zeros(&[4, 2])),
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
            train_idx: vec![0, 1],
            val_idx: vec![2],
            test_idx: vec![3],
        }
    }

    #[test]
    fn valid_dataset_passes() {
        tiny().validate().unwrap();
        assert_eq!(tiny().feature_dim(), 2);
        assert_eq!(tiny().labels_of(&[3, 0]), vec![1, 0]);
    }

    #[test]
    fn overlapping_splits_rejected() {
        let mut d = tiny();
        d.val_idx = vec![0];
        assert!(d.validate().unwrap_err().contains("two splits"));
    }

    #[test]
    fn label_range_checked() {
        let mut d = tiny();
        d.labels[2] = 9;
        assert!(d.validate().is_err());
    }

    #[test]
    fn feature_rows_checked() {
        let mut d = tiny();
        d.features = Tensor::zeros(&[3, 2]).into();
        assert!(d.validate().is_err());
    }

    #[test]
    fn non_finite_feature_names_node_and_dim() {
        let mut d = tiny();
        let mut vals = vec![0.0f32; 8];
        vals[5] = f32::NAN; // node 2, dim 1
        d.features = Tensor::from_vec(vals, &[4, 2]).unwrap().into();
        match d.check().unwrap_err() {
            DataError::NonFiniteFeature { node, dim, value } => {
                assert_eq!(node, 2);
                assert_eq!(dim, 1);
                assert_eq!(value, "NaN");
            }
            other => panic!("expected NonFiniteFeature, got {other:?}"),
        }
        let mut d2 = tiny();
        let mut vals = vec![0.0f32; 8];
        vals[0] = f32::INFINITY;
        d2.features = Tensor::from_vec(vals, &[4, 2]).unwrap().into();
        let err = d2.check().unwrap_err();
        assert!(err.to_string().contains("feature[0][0]"), "{err}");
    }

    #[test]
    fn zero_dim_features_pass_check() {
        // Regression: with feature_dim == 0 the old node/dim arithmetic
        // (`i.checked_div(0).unwrap_or(0)`) collapsed any index to
        // (0, 0); a zero-width matrix must simply validate (it holds no
        // values that could be non-finite).
        let mut d = tiny();
        d.features = Tensor::zeros(&[4, 0]).into();
        d.check().expect("zero-dim features are consistent");
        assert_eq!(d.feature_dim(), 0);
    }

    #[test]
    fn locate_flat_reports_true_flat_index_for_zero_dim() {
        assert_eq!(locate_flat(5, 2), (2, 1));
        assert_eq!(locate_flat(0, 3), (0, 0));
        // d == 0: the flat index itself is the only truthful coordinate.
        assert_eq!(locate_flat(7, 0), (7, 0));
    }
}

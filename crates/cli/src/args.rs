//! Minimal `--key value` argument parsing (no external dependency).

use std::collections::HashMap;
use std::fmt;

/// A parse or validation failure, printed to the user with usage help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` flags (plus bare `--flag` booleans).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses flags from an argument iterator (program name and
    /// subcommand already consumed).
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and repeated keys.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument '{arg}'")));
            };
            if key.is_empty() {
                return Err(ArgError("empty flag '--'".into()));
            }
            let is_value = iter
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false);
            if is_value {
                let value = iter.next().expect("peeked");
                if out.values.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("flag --{key} given twice")));
                }
            } else {
                out.flags.push(key.to_string());
            }
        }
        Ok(out)
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Whether a bare `--key` flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Required string value.
    ///
    /// # Errors
    ///
    /// Errors when the flag is missing.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Typed value with a default.
    ///
    /// # Errors
    ///
    /// Errors when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{raw}'"))),
        }
    }

    /// Comma-separated list of `usize` (e.g. `--fanouts 10,25`).
    ///
    /// # Errors
    ///
    /// Errors when an element does not parse.
    pub fn get_usize_list(&self, key: &str) -> Result<Option<Vec<usize>>, ArgError> {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        raw.split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad element '{part}'")))
            })
            .collect::<Result<Vec<usize>, _>>()
            .map(Some)
    }

    /// Comma-separated list of `device:value` pairs (e.g.
    /// `--fault-device-fail 1:3,2:0` or `--fault-straggler 0:2.5`),
    /// parsed into `(usize, T)` tuples.
    ///
    /// # Errors
    ///
    /// Errors when a pair is missing its `:` or a side does not parse.
    pub fn get_pair_list<T: std::str::FromStr>(
        &self,
        key: &str,
    ) -> Result<Option<Vec<(usize, T)>>, ArgError> {
        let Some(raw) = self.get(key) else {
            return Ok(None);
        };
        raw.split(',')
            .map(|part| {
                let part = part.trim();
                let (device, value) = part.split_once(':').ok_or_else(|| {
                    ArgError(format!("--{key}: '{part}' is not a device:value pair"))
                })?;
                let device = device
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad device index '{device}'")))?;
                let value = value
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad value '{value}'")))?;
                Ok((device, value))
            })
            .collect::<Result<Vec<(usize, T)>, _>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = parse(&["--scale", "0.1", "--verbose", "--k", "8"]).unwrap();
        assert_eq!(a.get("scale"), Some("0.1"));
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_or("k", 1usize).unwrap(), 8);
        assert_eq!(a.get_or("missing", 3usize).unwrap(), 3);
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(parse(&["oops"]).is_err());
        assert!(parse(&["--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn lists_parse() {
        let a = parse(&["--fanouts", "10,25, 30"]).unwrap();
        assert_eq!(a.get_usize_list("fanouts").unwrap(), Some(vec![10, 25, 30]));
        assert_eq!(a.get_usize_list("absent").unwrap(), None);
        let bad = parse(&["--fanouts", "10,x"]).unwrap();
        assert!(bad.get_usize_list("fanouts").is_err());
    }

    #[test]
    fn pair_lists_parse() {
        let a = parse(&["--fault-device-fail", "1:3, 2:0"]).unwrap();
        assert_eq!(
            a.get_pair_list::<usize>("fault-device-fail").unwrap(),
            Some(vec![(1, 3), (2, 0)])
        );
        let s = parse(&["--fault-straggler", "0:2.5"]).unwrap();
        assert_eq!(
            s.get_pair_list::<f64>("fault-straggler").unwrap(),
            Some(vec![(0, 2.5)])
        );
        assert_eq!(a.get_pair_list::<usize>("absent").unwrap(), None);
        let bad = parse(&["--fault-device-fail", "3"]).unwrap();
        assert!(bad.get_pair_list::<usize>("fault-device-fail").is_err());
        let bad = parse(&["--fault-device-fail", "x:1"]).unwrap();
        assert!(bad.get_pair_list::<usize>("fault-device-fail").is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]).unwrap();
        assert!(a.require("data").unwrap_err().to_string().contains("--data"));
    }

    #[test]
    fn bad_typed_value_reports_key() {
        let a = parse(&["--k", "NaNs"]).unwrap();
        assert!(a.get_or("k", 0usize).is_err());
    }
}

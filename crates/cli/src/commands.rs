//! Subcommand implementations.

use std::error::Error;

use std::fmt;

use betty::{
    latest_valid_checkpoint, load_checkpoint_state, CheckpointPlan, DeviceGroup, ExperimentConfig,
    ModelKind, RecoveryEvent, RecoveryLog, RetryPolicy, Runner, StrategyKind,
};
use betty_data::{load_dataset, save_dataset, Dataset, DatasetSpec};
use betty_device::FaultPlan;
use betty_graph::degree;
use betty_nn::AggregatorSpec;
use betty_partition::input_redundancy;
use betty_tensor::DType;

use crate::args::{ArgError, Args};

type CmdResult = Result<(), Box<dyn Error>>;

/// Parses the `--precision` storage dtype (default f32).
fn precision(args: &Args) -> Result<DType, ArgError> {
    let raw = args.get("precision").unwrap_or("f32");
    DType::parse(raw)
        .ok_or_else(|| ArgError(format!("--precision: unknown dtype '{raw}' (try: f32, bf16, f16)")))
}

fn preset_by_name(name: &str) -> Result<DatasetSpec, ArgError> {
    DatasetSpec::all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ArgError(format!("unknown preset '{name}' (try: cora, pubmed, reddit, ogbn-arxiv, ogbn-products)")))
}

fn load(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    let ds = if let Some(path) = args.get("data") {
        load_dataset(path)?
    } else if let Some(preset) = args.get("preset") {
        // Allow generating on the fly: --preset without --data.
        let spec = preset_by_name(preset)?
            .scaled(args.get_or("scale", 0.01f64)?)
            .with_feature_dim(args.get_or("feature-dim", 32usize)?);
        spec.generate(args.get_or("seed", 0u64)?)
    } else {
        return Err(Box::new(ArgError(
            "provide --data <file> or --preset <name>".into(),
        )));
    };
    apply_feature_store(ds, args)
}

/// Applies the `--feature-store` flag family to a freshly loaded dataset.
///
/// `--feature-store paged` spills the feature matrix into row-range
/// shards on disk and serves every gather through a pinned hot-set cache
/// bounded by `--feature-cache-bytes`; training losses are bit-identical
/// to the dense in-memory default, only where the features live (and the
/// paging counters in `--trace-out`) change.
fn apply_feature_store(mut ds: Dataset, args: &Args) -> Result<Dataset, Box<dyn Error>> {
    // Re-encode features at the requested storage width *before* any
    // paged spill, so on-disk shards carry 16-bit payloads and the hot-set
    // cache holds half the bytes (a paged store cannot be re-encoded).
    let dtype = precision(args)?;
    if dtype != DType::F32 {
        ds.features = ds.features.with_dtype(dtype);
    }
    let backend = args.get("feature-store").unwrap_or("dense");
    match backend {
        "dense" => {
            for flag in [
                "feature-cache-bytes",
                "feature-page-rows",
                "feature-dir",
                "feature-parity",
            ] {
                if args.get(flag).is_some() {
                    return Err(Box::new(ArgError(format!(
                        "--{flag} requires --feature-store paged"
                    ))));
                }
            }
            Ok(ds)
        }
        "paged" => {
            // An unbounded cache is still charged honestly: the
            // reservation is min(budget, total feature bytes).
            let cache = args.get_or("feature-cache-bytes", usize::MAX)?;
            let page_rows = args.get_or("feature-page-rows", 1024usize)?;
            if page_rows == 0 {
                return Err(Box::new(ArgError(
                    "--feature-page-rows must be positive".into(),
                )));
            }
            let dir = match args.get("feature-dir") {
                Some(d) => std::path::PathBuf::from(d),
                None => std::env::temp_dir().join(format!(
                    "betty-features-{}-{}",
                    ds.name,
                    std::process::id()
                )),
            };
            // --feature-parity P interleaves one XOR parity shard per P
            // data shards, so a single corrupt shard per group can be
            // reconstructed bit-identically mid-run (0 = no parity; the
            // store bytes are then identical to a parity-free spill).
            let parity = args.get_or("feature-parity", 0usize)?;
            ds.features = ds.features.to_paged_with_parity(&dir, page_rows, cache, parity)?;
            Ok(ds)
        }
        other => Err(Box::new(ArgError(format!(
            "unknown feature store '{other}' (try: dense, paged)"
        )))),
    }
}

fn strategy(args: &Args) -> Result<StrategyKind, ArgError> {
    match args.get("strategy").unwrap_or("betty") {
        "betty" => Ok(StrategyKind::Betty),
        "range" => Ok(StrategyKind::Range),
        "random" => Ok(StrategyKind::Random),
        "metis" => Ok(StrategyKind::Metis),
        other => Err(ArgError(format!("unknown strategy '{other}'"))),
    }
}

fn experiment_config(args: &Args) -> Result<ExperimentConfig, Box<dyn Error>> {
    let aggregator = match args.get("aggregator").unwrap_or("mean") {
        "mean" => AggregatorSpec::Mean,
        "sum" => AggregatorSpec::Sum,
        "pool" => AggregatorSpec::Pool,
        "lstm" => AggregatorSpec::Lstm,
        other => return Err(Box::new(ArgError(format!("unknown aggregator '{other}'")))),
    };
    let model = match args.get("model").unwrap_or("sage") {
        "sage" => ModelKind::GraphSage,
        "gat" => ModelKind::Gat,
        "gcn" => ModelKind::Gcn,
        "gin" => ModelKind::Gin,
        other => return Err(Box::new(ArgError(format!("unknown model '{other}'")))),
    };
    let config = ExperimentConfig {
        fanouts: args.get_usize_list("fanouts")?.unwrap_or(vec![10, 25]),
        hidden_dim: args.get_or("hidden", 64usize)?,
        aggregator,
        model,
        num_heads: args.get_or("heads", 4usize)?,
        dropout: args.get_or("dropout", 0.1f32)?,
        learning_rate: args.get_or("lr", 3e-3f32)?,
        capacity_bytes: args.get_or("capacity-mib", 24 * 1024usize)? << 20,
        fault_plan: fault_plan(args)?,
        retry: RetryPolicy {
            max_retries: args.get_or("retries", RetryPolicy::default().max_retries)?,
            growth: args.get_or("retry-growth", RetryPolicy::default().growth)?,
            headroom: args.get_or("retry-headroom", RetryPolicy::default().headroom)?,
            max_anomaly_retries: args
                .get_or("anomaly-retries", RetryPolicy::default().max_anomaly_retries)?,
            max_io_retries: args.get_or("io-retries", RetryPolicy::default().max_io_retries)?,
        },
        prefetch: !args.has_flag("no-prefetch"),
        pool: !args.has_flag("no-pool"),
        sentinel: !args.has_flag("no-sentinel"),
        plan_ahead: args.get_or("plan-ahead", 0usize)?,
        precision: precision(args)?,
        ..ExperimentConfig::default()
    };
    config.validate().map_err(ArgError)?;
    Ok(config)
}

/// Builds the fault-injection plan from `--fault-*` flags, or `None`
/// when no fault flag was given.
fn fault_plan(args: &Args) -> Result<Option<FaultPlan>, Box<dyn Error>> {
    let given = [
        "fault-seed",
        "fault-alloc-rate",
        "fault-oom-steps",
        "fault-jitter",
        "fault-stall-rate",
        "fault-stall-sec",
        "fault-nan-steps",
        "fault-device-fail",
        "fault-straggler",
        "fault-link-rate",
        "fault-link-stall-sec",
        "fault-io-rate",
        "fault-io-stall-rate",
        "fault-io-stall-sec",
        "fault-shard-corrupt",
    ]
    .iter()
    .any(|key| args.get(key).is_some());
    if !given {
        return Ok(None);
    }
    let defaults = FaultPlan::default();
    Ok(Some(FaultPlan {
        seed: args.get_or("fault-seed", defaults.seed)?,
        alloc_failure_rate: args.get_or("fault-alloc-rate", defaults.alloc_failure_rate)?,
        oom_steps: args.get_usize_list("fault-oom-steps")?.unwrap_or_default(),
        capacity_jitter: args.get_or("fault-jitter", defaults.capacity_jitter)?,
        transfer_stall_rate: args.get_or("fault-stall-rate", defaults.transfer_stall_rate)?,
        transfer_stall_sec: args.get_or("fault-stall-sec", defaults.transfer_stall_sec)?,
        nan_loss_steps: args.get_usize_list("fault-nan-steps")?.unwrap_or_default(),
        device_fail_steps: args
            .get_pair_list::<usize>("fault-device-fail")?
            .unwrap_or_default(),
        straggler_factors: args
            .get_pair_list::<f64>("fault-straggler")?
            .unwrap_or_default(),
        link_stall_rate: args.get_or("fault-link-rate", defaults.link_stall_rate)?,
        link_stall_sec: args.get_or("fault-link-stall-sec", defaults.link_stall_sec)?,
        io_failure_rate: args.get_or("fault-io-rate", defaults.io_failure_rate)?,
        io_stall_rate: args.get_or("fault-io-stall-rate", defaults.io_stall_rate)?,
        io_stall_sec: args.get_or("fault-io-stall-sec", defaults.io_stall_sec)?,
        shard_corrupt: args
            .get_pair_list::<usize>("fault-shard-corrupt")?
            .unwrap_or_default(),
    }))
}

/// Builds the elastic device group from `--devices` and its tuning
/// flags, validating any device-level fault specs against the group
/// size so a malformed spec is a usage error, not a panic mid-run.
fn device_group(args: &Args, devices: usize, config: &ExperimentConfig) -> Result<DeviceGroup, Box<dyn Error>> {
    let mut group = DeviceGroup::new(devices);
    group.allreduce_timeout_sec =
        args.get_or("allreduce-timeout-ms", group.allreduce_timeout_sec * 1e3)? / 1e3;
    group.max_device_retries = args.get_or("max-device-retries", group.max_device_retries)?;
    group.straggler_threshold =
        args.get_or("straggler-threshold", group.straggler_threshold)?;
    if let Some(plan) = &config.fault_plan {
        plan.validate_for_devices(devices).map_err(ArgError)?;
    }
    Ok(group)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

/// `betty generate`.
pub fn generate(args: &Args) -> CmdResult {
    let preset = args.require("preset")?;
    let out = args.require("out")?.to_string();
    let spec = preset_by_name(preset)?
        .scaled(args.get_or("scale", 0.01f64)?)
        .with_feature_dim(args.get_or("feature-dim", 32usize)?);
    let ds = spec.generate(args.get_or("seed", 0u64)?);
    save_dataset(&ds, &out)?;
    println!(
        "wrote {} ({} nodes, {} edges, {} classes) to {out}",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );
    Ok(())
}

/// `betty info`.
pub fn info(args: &Args) -> CmdResult {
    let ds = load(args)?;
    let in_degs = ds.graph.in_degrees();
    let stats = degree::stats(&in_degs);
    println!("dataset    {}", ds.name);
    println!("nodes      {}", ds.graph.num_nodes());
    println!("edges      {}", ds.graph.num_edges());
    println!(
        "features   {} ({} store)",
        ds.feature_dim(),
        ds.features.backend_name()
    );
    println!("classes    {}", ds.num_classes);
    println!(
        "splits     train {} / val {} / test {}",
        ds.train_idx.len(),
        ds.val_idx.len(),
        ds.test_idx.len()
    );
    println!(
        "in-degree  min {} / median {} / mean {:.1} / max {}",
        stats.min, stats.median, stats.mean, stats.max
    );
    if let Some(slope) = degree::log_log_slope(&degree::histogram(&in_degs)) {
        println!("power law  log-log slope {slope:.2}");
    }
    let cc = betty_graph::weakly_connected_components(&ds.graph);
    println!(
        "components {} (largest covers {:.1}% of nodes)",
        cc.count(),
        100.0 * cc.largest() as f64 / ds.graph.num_nodes().max(1) as f64
    );
    Ok(())
}

/// `betty partition`.
pub fn partition(args: &Args) -> CmdResult {
    let ds = load(args)?;
    let config = experiment_config(args)?;
    let k = args.get_or("k", 8usize)?;
    let mut runner = Runner::new(&ds, &config, args.get_or("seed", 0u64)?);
    let batch = runner.sample_full_batch(&ds);
    if args.has_flag("compare") {
        println!(
            "{:<8} {:>12} {:>12} {:>14} {:>14}",
            "strategy", "inputs", "redundancy", "est peak MiB", "partition ms"
        );
        for kind in StrategyKind::ALL {
            let plan = runner.plan_fixed(&batch, kind, k);
            let report = input_redundancy(&plan.micro_batches);
            println!(
                "{:<8} {:>12} {:>11.3}x {:>14.2} {:>14.1}",
                kind.name(),
                report.total_input_nodes,
                report.redundancy_ratio(),
                mib(plan.max_estimated_peak()),
                plan.partition_sec * 1e3,
            );
        }
        return Ok(());
    }
    let kind = strategy(args)?;
    let plan = runner.plan_fixed(&batch, kind, k);
    let report = input_redundancy(&plan.micro_batches);
    println!(
        "strategy {} split {} outputs into {} micro-batches ({:.1} ms partition, {:.1} ms extraction)",
        kind,
        batch.output_nodes().len(),
        plan.micro_batches.len(),
        plan.partition_sec * 1e3,
        plan.extraction_sec * 1e3,
    );
    println!(
        "input nodes {} (unique {}, redundancy {:.3}x)",
        report.total_input_nodes,
        report.unique_input_nodes,
        report.redundancy_ratio()
    );
    println!("{:>4} {:>10} {:>12} {:>14}", "id", "outputs", "inputs", "est peak MiB");
    for (i, (mb, est)) in plan.micro_batches.iter().zip(&plan.estimates).enumerate() {
        println!(
            "{i:>4} {:>10} {:>12} {:>14.2}",
            mb.output_nodes().len(),
            mb.input_nodes().len(),
            mib(est.peak_bytes())
        );
    }
    Ok(())
}

/// `betty train`.
pub fn train(args: &Args) -> CmdResult {
    let ds = load(args)?;
    let config = experiment_config(args)?;
    if config
        .fault_plan
        .as_ref()
        .is_some_and(FaultPlan::has_storage_faults)
        && !ds.features.is_paged()
    {
        return Err(Box::new(ArgError(
            "--fault-io-rate / --fault-io-stall-rate / --fault-shard-corrupt \
             target the paged feature store; add --feature-store paged"
                .into(),
        )));
    }
    let kind = strategy(args)?;
    let epochs = args.get_or("epochs", 20usize)?;
    let devices = args.get_or("devices", 1usize)?;
    let seed = args.get_or("seed", 0u64)?;
    let k_arg = args.get("k").unwrap_or("auto").to_string();
    if k_arg == "auto" && devices > 1 {
        return Err(Box::new(ArgError(
            "--devices requires an explicit --k (auto-K is single-device)".into(),
        )));
    }
    let group = device_group(args, devices.max(1), &config)?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let trace_summary = args.has_flag("trace-summary");
    let ckpt_plan = match args.get("checkpoint-dir") {
        Some(dir) => {
            let plan = CheckpointPlan::new(dir, args.get_or("checkpoint-every", 1usize)?);
            plan.validate().map_err(ArgError)?;
            Some(plan)
        }
        None if args.get("checkpoint-every").is_some() => {
            return Err(Box::new(ArgError(
                "--checkpoint-every requires --checkpoint-dir".into(),
            )));
        }
        None if args.has_flag("resume") => {
            return Err(Box::new(ArgError("--resume requires --checkpoint-dir".into())));
        }
        None => None,
    };
    let mut runner = Runner::new(&ds, &config, seed);
    if trace_out.is_some() || trace_summary {
        runner.enable_tracing();
    }
    // Resume replaces every piece of the freshly built session — params,
    // Adam moments, both RNG streams, counters, even the base seed — so
    // the continued run is bit-identical to one that was never killed.
    // The log is created before the resume so a checkpoint-slot fallback
    // (newest slot fails CRC, an older one loads) is recorded in it.
    let mut recovery = RecoveryLog::new();
    let mut start_epoch = 0usize;
    if args.has_flag("resume") {
        let plan = ckpt_plan.as_ref().expect("checked above");
        let Some(found) = latest_valid_checkpoint(&plan.dir)? else {
            return Err(Box::new(ArgError(format!(
                "--resume: no checkpoint found in {}",
                plan.dir.display()
            ))));
        };
        if !found.skipped.is_empty() {
            for skipped in &found.skipped {
                println!(
                    "skipping corrupt checkpoint {} (failed CRC/format validation)",
                    skipped.display()
                );
            }
            recovery.record(RecoveryEvent::CheckpointFallback {
                skipped: found.skipped.clone(),
                used: found.path.clone(),
            });
        }
        let path = found.path;
        runner.import_session(&found.state)?;
        start_epoch = runner.epochs_run();
        if start_epoch >= epochs {
            println!(
                "resumed from {} — all {epochs} epochs already trained",
                path.display()
            );
        } else {
            println!(
                "resumed from {} ({start_epoch} epochs done, continuing at epoch {start_epoch})",
                path.display()
            );
        }
    }
    println!(
        "training {} on {} ({} train nodes), strategy {kind}, capacity {:.0} MiB",
        args.get("model").unwrap_or("sage"),
        ds.name,
        ds.train_idx.len(),
        mib(config.capacity_bytes)
    );
    if ds.features.is_paged() {
        println!(
            "feature store: paged ({:.1} MiB of features on disk, {:.1} MiB pinned cache)",
            mib(ds.features.size_bytes()),
            mib(ds.features.cache_reservation_bytes())
        );
    }
    if config.fault_plan.is_some() {
        println!(
            "fault injection armed (seed {}), recovery budget {} retries",
            config.fault_plan.as_ref().map_or(0, |p| p.seed),
            config.retry.max_retries
        );
    }
    println!(
        "{:>6} {:>10} {:>5} {:>12} {:>10}",
        "epoch", "loss", "K", "peak MiB", "val acc"
    );
    let run = |runner: &mut Runner, recovery: &mut RecoveryLog| -> CmdResult {
        for epoch in start_epoch..epochs {
            recovery.set_epoch(epoch);
            let (stats, k) = if k_arg == "auto" {
                runner.train_epoch_auto_recovering(&ds, kind, recovery)?
            } else {
                let k: usize = k_arg
                    .parse()
                    .map_err(|_| ArgError(format!("--k: expected 'auto' or a number, got '{k_arg}'")))?;
                if devices > 1 {
                    let multi = runner.train_epoch_elastic(&ds, kind, k, &group, recovery)?;
                    if multi.live_ranks < devices {
                        println!(
                            "epoch {epoch}: {} of {devices} ranks survived \
                             (+{:.3}s failover overhead)",
                            multi.live_ranks,
                            multi.failover_overhead_sec()
                        );
                    }
                    (multi.combined, k)
                } else {
                    (runner.train_epoch_betty(&ds, kind, k).map_err(betty::RunError::Train)?, k)
                }
            };
            let report = epoch == epochs - 1 || epoch % 5 == 0;
            if report {
                let val = runner.evaluate(&ds, &ds.val_idx);
                println!(
                    "{epoch:>6} {:>10.4} {k:>5} {:>12.1} {:>9.1}%",
                    stats.loss,
                    mib(stats.max_peak_bytes),
                    val * 100.0
                );
            }
            // Saved after the (optional) evaluation so the sampler RNG
            // in the checkpoint already reflects what evaluation drew;
            // resuming then replays the uninterrupted stream exactly.
            if let Some(plan) = &ckpt_plan {
                if plan.due_after(epoch, epochs) {
                    plan.save(&runner.export_session(), epoch)?;
                }
            }
        }
        Ok(())
    };
    let result = run(&mut runner, &mut recovery);
    // The trace is written even when training failed: a trace of the run
    // that OOMed is exactly what the flags exist to capture.
    if let Some(trace) = runner.take_trace() {
        if let Some(path) = &trace_out {
            trace.write_jsonl(path)?;
            println!("trace written to {path} ({} events)", trace.len());
        }
        if trace_summary {
            println!("{}", trace.summary());
        }
    }
    if let Err(e) = result {
        if !recovery.is_empty() {
            eprintln!("{}", recovery.summary());
        }
        return Err(e);
    }
    if !recovery.is_empty() {
        println!("{}", recovery.summary());
    }
    let test = runner.evaluate(&ds, &ds.test_idx);
    println!("test accuracy: {:.2}%", test * 100.0);
    if let Some(path) = args.get("checkpoint") {
        betty_nn::save_checkpoint(runner.trainer().model(), path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

/// Damage survived a [`scrub`] pass: `main` maps this marker error onto
/// its own distinct exit code (7) so scripts can tell "the store needs
/// to be re-generated" apart from usage errors and training failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFailed {
    /// What is still damaged, one clause per item.
    pub detail: String,
}

impl fmt::Display for ScrubFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scrub: unrepairable damage remains: {}", self.detail)
    }
}

impl Error for ScrubFailed {}

/// `betty scrub <dir>` — offline integrity pass over a store directory.
///
/// Verifies every feature shard and parity shard CRC (repairing what the
/// XOR parity sidecar allows, exactly like the mid-run repair path:
/// single damaged data shard per group reconstructed bit-identically and
/// re-persisted, damaged parity shard rebuilt from intact data) and every
/// `ckpt-NNNNNN.btc` checkpoint slot in the directory. Corrupt checkpoint
/// slots with a valid older sibling are reported but non-fatal — resume
/// falls back past them. Unrepairable damage (a feature-shard group with
/// two bad members, no parity sidecar, or *every* checkpoint slot
/// corrupt) returns [`ScrubFailed`], which exits with code 7.
pub fn scrub(dir: &str) -> CmdResult {
    let root = std::path::Path::new(dir);
    if !root.is_dir() {
        return Err(Box::new(ArgError(format!(
            "scrub: '{dir}' is not a directory"
        ))));
    }
    let mut fatal: Vec<String> = Vec::new();
    let mut scrubbed_anything = false;

    if root.join(betty_data::META_FILE).exists() {
        scrubbed_anything = true;
        let report = betty_data::scrub(root)?;
        println!(
            "feature store: {} data shards, {} parity groups (width {})",
            report.shards_checked, report.parity_checked, report.parity_width
        );
        for shard in &report.shards_repaired {
            println!("  repaired shard {shard} from parity (bit-identical, re-persisted)");
        }
        for group in &report.parity_rebuilt {
            println!("  rebuilt parity shard of group {group} from its intact data shards");
        }
        for shard in &report.unrepairable {
            println!("  UNREPAIRABLE: shard {shard}");
            fatal.push(format!("feature shard {shard}"));
        }
        if report.is_clean() && report.shards_repaired.is_empty() && report.parity_rebuilt.is_empty()
        {
            println!("  all shards verify clean");
        }
    }

    let mut slots: Vec<std::path::PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".btc"))
        })
        .collect();
    if !slots.is_empty() {
        scrubbed_anything = true;
        slots.sort();
        let mut valid = 0usize;
        let mut corrupt = 0usize;
        for path in &slots {
            match load_checkpoint_state(path) {
                Ok(_) => valid += 1,
                Err(err) => {
                    corrupt += 1;
                    println!("  corrupt checkpoint {}: {err}", path.display());
                }
            }
        }
        println!(
            "checkpoints: {} slots, {valid} valid, {corrupt} corrupt",
            slots.len()
        );
        if valid == 0 {
            fatal.push(format!("every checkpoint slot ({corrupt}) is corrupt"));
        } else if corrupt > 0 {
            println!("  --resume will fall back past the corrupt slot(s) to a valid one");
        }
    }

    if !scrubbed_anything {
        return Err(Box::new(ArgError(format!(
            "scrub: '{dir}' holds neither a paged feature store nor checkpoints"
        ))));
    }
    if fatal.is_empty() {
        println!("scrub: clean");
        Ok(())
    } else {
        Err(Box::new(ScrubFailed {
            detail: fatal.join("; "),
        }))
    }
}

/// `betty eval`.
pub fn eval(args: &Args) -> CmdResult {
    let ds = load(args)?;
    let config = experiment_config(args)?;
    let ckpt = args.require("checkpoint")?.to_string();
    let mut runner = Runner::new(&ds, &config, args.get_or("seed", 0u64)?);
    betty_nn::load_checkpoint(runner.trainer_mut().model_mut(), &ckpt)?;
    let acc = betty::accuracy_full_graph(
        runner.trainer().model(),
        &ds,
        &ds.test_idx,
        args.get_or("chunk", 1024usize)?,
    );
    println!(
        "exact full-graph test accuracy: {:.2}% ({} nodes)",
        acc * 100.0,
        ds.test_idx.len()
    );
    Ok(())
}

//! `betty` — command-line interface for the Betty GNN training system.
//!
//! ```text
//! betty generate  --preset ogbn-arxiv --scale 0.01 --out data.btd
//! betty info      --data data.btd
//! betty partition --data data.btd --k 8 --strategy betty
//! betty train     --data data.btd --epochs 20 --k auto --capacity-mib 64
//! betty eval      --data data.btd --checkpoint model.ckpt
//! ```

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
betty — batch-level graph partitioning for GNN training (ASPLOS'23 reproduction)

USAGE: betty <command> [--flag value]...

COMMANDS:
  generate   synthesize a dataset            --preset <name> [--scale F]
             [--feature-dim D] [--seed N] --out <file>
  info       describe a dataset              --data <file>
  partition  split one batch, report quality --data <file> [--k N]
             [--strategy betty|range|random|metis] [--fanouts 10,25]
             [--compare  (run all four strategies side by side)]
  train      train a GNN with Betty          --data <file> [--epochs N]
             [--k auto|N] [--strategy S] [--model sage|gat|gcn|gin]
             [--aggregator mean|sum|pool|lstm] [--fanouts 10,25]
             [--hidden H] [--lr F] [--capacity-mib M] [--devices D]
             [--checkpoint <out.ckpt>] [--seed N]
             durability / resume:
             [--checkpoint-dir <dir>  (write a durable, CRC-checksummed
              session checkpoint after each epoch; atomic, kill-safe)]
             [--checkpoint-every N  (checkpoint cadence in epochs; the
              final epoch is always saved)]
             [--resume  (continue from the newest checkpoint in
              --checkpoint-dir; losses are bit-identical to a run that
              was never interrupted)]
             fault injection / recovery (with --k auto):
             [--fault-seed N] [--fault-alloc-rate F] [--fault-oom-steps 3,17]
             [--fault-nan-steps 4,9  (poison the loss at these steps to
              exercise the numeric-anomaly sentinel)]
             [--retries N] [--retry-growth F] [--retry-headroom F]
             [--fault-jitter F] [--fault-stall-rate F] [--fault-stall-sec F]
             elastic multi-device (with --devices D > 1):
             [--fault-device-fail d:s,...  (kill device d after it
              completes s micro-batches; survivors absorb its queue)]
             [--fault-straggler d:f,...  (slow device d by factor f ≥ 1;
              flagged when it exceeds the straggler threshold)]
             [--fault-link-rate F] [--fault-link-stall-sec F  (transient
              all-reduce stalls; at/above the timeout they are retried
              with seeded exponential backoff)]
             storage chaos (with --feature-store paged):
             [--fault-io-rate F  (probability a shard read fails with a
              transient I/O error; retried with seeded jittered backoff)]
             [--fault-io-stall-rate F] [--fault-io-stall-sec F  (seeded
              NVMe-style read-stall jitter, accounted — never slept)]
             [--fault-shard-corrupt s:e,...  (flip one payload byte of
              shard s before epoch e; repaired bit-identically from the
              XOR parity sidecar when --feature-parity is on)]
             [--io-retries N  (transient-read retry budget per shard
              read; default 3. Exhaustion is a structured storage error)]
             Losses and parameters are bit-identical with and without
             injected storage faults; only the I/O counters differ.
             [--allreduce-timeout-ms M  (sync round timeout; default 100)]
             [--max-device-retries N  (timed-out rounds retried before a
              rank is declared lost; default 3)]
             [--straggler-threshold F  (multiple of the median time per
              unit work that flags a device; default 1.5)]
             [--anomaly-retries N  (epoch rollbacks allowed on NaN/Inf
              loss or gradients before aborting; default 1)]
             [--no-sentinel  (disable NaN/Inf detection and rollback)]
             observability:
             [--trace-out <trace.jsonl>  (step spans, memory timeline,
              estimator-drift records as JSON-lines)]
             [--trace-summary  (print per-phase totals, the worst peak's
              category breakdown, and the estimator-drift envelope)]
  eval       exact full-graph accuracy       --data <file> --checkpoint
             <file> [--model ...same shape flags as train]
  scrub      offline integrity pass          betty scrub <dir>
             verifies every feature shard, parity shard, and checkpoint
             slot CRC in <dir>; repairs single-shard damage from the XOR
             parity sidecar (bit-identical, re-persisted) and rebuilds
             damaged parity shards. Exits 7 when unrepairable damage
             remains (two bad shards in one parity group, no parity
             sidecar, or every checkpoint slot corrupt).

GLOBAL FLAGS (accepted by every command, after the command name):
  --feature-store dense|paged
                 where node features live (default dense, fully in memory).
                 'paged' spills the feature matrix into row-range shards on
                 disk and serves gathers through a pinned hot-set cache, so
                 graphs whose features exceed host memory still train.
                 Losses and parameters are bit-identical to dense; only the
                 timing and the paging counters differ.
  --feature-cache-bytes N
                 hot-set cache budget for --feature-store paged (default
                 unbounded). The reservation actually charged to the device
                 ledger is min(N, total feature bytes) under the dedicated
                 'feature cache' category, and the planner charges exactly
                 the same constant, so estimator drift stays exact.
  --feature-page-rows N
                 rows per on-disk shard for --feature-store paged (default
                 1024) — the paging granularity and the unit of eviction.
  --feature-dir <dir>
                 where --feature-store paged writes its shards (default: a
                 per-process directory under the system temp dir)
  --feature-parity N
                 interleave one XOR parity shard per N data shards of the
                 paged store (default 0 = none). A mid-run CRC mismatch on
                 one shard of a group is then reconstructed bit-identically
                 in place and re-persisted; two bad shards in one group are
                 a structured storage error. Parity shards ride the same
                 CRC-checksummed atomic-write container as data shards.
  --threads N    worker threads for parallel stages (REG build, micro-batch
                 extraction, large matmuls); 1 is exactly serial. Defaults
                 to the BETTY_THREADS env var, then the core count. Every
                 thread count produces bit-identical results.
  --backend scalar|simd
                 compute backend for the tensor kernels (default simd, or
                 the BETTY_BACKEND env var). 'scalar' is the portable
                 reference; 'simd' dispatches AVX-512/AVX2 kernels at
                 runtime. f32 results are bit-identical across backends
                 and thread counts — this is a speed knob, not a numerics
                 knob.
  --precision f32|bf16|f16
                 storage dtype for node features and forward activations
                 (default f32, the paper's configuration). 16-bit storage
                 halves the feature and activation byte terms the memory
                 estimator sees, so auto-planning picks fewer partitions
                 on the same budget; compute still accumulates in f32.
                 Changes the trained function (values round through a
                 16-bit grid), so checkpoints are precision-specific and
                 --resume rejects a checkpoint from another precision.
  --no-prefetch  disable double-buffered transfer prefetch during training
                 (prefetch is on by default; losses are identical either
                 way, only timing and the device-memory schedule change)
  --no-pool      disable the pooled tensor workspace: every micro-batch
                 rebuilds its autograd tape from fresh heap allocations
                 (pooling is on by default; losses and parameters are
                 bit-identical either way — this is an escape hatch for
                 allocator-level debugging and the alloc benchmarks)
  --plan-ahead N stage up to N future epochs' sampling + REG partitioning
                 on spare worker threads while the current epoch trains
                 (default 0 = synchronous). Losses, parameters, and every
                 deterministic stat are bit-identical at any depth; only
                 where the planning time is spent changes. Degrades to
                 the synchronous path under --threads 1, and composes
                 with --no-prefetch (prefetch overlaps transfers *within*
                 an epoch; plan-ahead overlaps planning *across* epochs —
                 they hide different costs and can be toggled freely)

Presets: cora, pubmed, reddit, ogbn-arxiv, ogbn-products.

EXIT CODES: 0 success, 1 usage/IO error, 2 no partitioning fits the
device, 3 OOM recovery retries exhausted, 4 unrecoverable OOM or
storage damage beyond what parity can repair, 5 numeric anomaly
persisted past the rollback budget, 6 every device of the elastic
group was lost with work outstanding, 7 scrub found unrepairable
damage in the store.
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `scrub` takes a positional directory, which the flag parser
    // (correctly) rejects — peel it off before parsing the rest.
    if command == "scrub" {
        let rest: Vec<String> = argv.collect();
        let (Some(dir), true) = (rest.first(), rest.len() == 1) else {
            eprintln!("error: usage: betty scrub <dir>\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        };
        return match commands::scrub(dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                exit_code_for(e.as_ref())
            }
        };
    }
    let parsed = match args::Args::parse(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // --threads pins the worker-thread count for every parallel stage
    // before any command runs; 0 (the default) keeps the BETTY_THREADS /
    // core-count resolution.
    match parsed.get_or("threads", 0usize) {
        Ok(0) => {}
        Ok(n) => betty_runtime::set_thread_override(Some(n)),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    // --backend pins the compute backend for every kernel before any
    // command runs; the default resolution (BETTY_BACKEND env, then simd)
    // applies when the flag is absent.
    if let Some(raw) = parsed.get("backend") {
        match betty_tensor::Backend::parse(raw) {
            Some(b) => betty_tensor::set_backend_override(Some(b)),
            None => {
                eprintln!("error: --backend: unknown backend '{raw}' (try: scalar, simd)\n");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&parsed),
        "info" => commands::info(&parsed),
        "partition" => commands::partition(&parsed),
        "train" => commands::train(&parsed),
        "eval" => commands::eval(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: unknown command '{other}'\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            exit_code_for(e.as_ref())
        }
    }
}

/// Maps failures onto distinct exit codes so scripts can tell apart:
/// 1 usage/IO errors (including unreadable/corrupt checkpoints),
/// 2 planning failure (no K fits), 3 recovery attempted but the retry
/// budget ran out, 4 unrecoverable OOM or storage damage (no retry was
/// possible), 5 a numeric anomaly survived its rollback budget, 6 the
/// elastic device group ran out of survivors, 7 `scrub` left
/// unrepairable damage behind.
fn exit_code_for(top: &(dyn std::error::Error + 'static)) -> ExitCode {
    let mut cursor = Some(top);
    while let Some(err) = cursor {
        if err.downcast_ref::<commands::ScrubFailed>().is_some() {
            return ExitCode::from(7);
        }
        if let Some(run) = err.downcast_ref::<betty::RunError>() {
            return match run {
                betty::RunError::Plan(_) => ExitCode::from(2),
                betty::RunError::RetryExhausted { .. } => ExitCode::from(3),
                betty::RunError::Train(_) => ExitCode::from(4),
                betty::RunError::Anomaly { .. } => ExitCode::from(5),
                betty::RunError::Checkpoint(_) => ExitCode::FAILURE,
                betty::RunError::DevicesExhausted(_) => ExitCode::from(6),
            };
        }
        if err.downcast_ref::<betty::TrainError>().is_some() {
            return ExitCode::from(4);
        }
        cursor = err.source();
    }
    ExitCode::FAILURE
}

//! End-to-end tests of the `betty` binary.

use std::path::PathBuf;
use std::process::Command;

fn betty() -> Command {
    Command::new(env!("CARGO_BIN_EXE_betty"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("betty-cli-test-{name}-{}", std::process::id()))
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = betty().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = betty().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_strategy_is_reported() {
    let out = betty()
        .args([
            "partition",
            "--preset",
            "cora",
            "--scale",
            "0.05",
            "--strategy",
            "zigzag",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn generate_info_partition_train_eval_pipeline() {
    let data = tmp("pipeline.btd");
    let ckpt = tmp("pipeline.ckpt");

    let out = betty()
        .args([
            "generate",
            "--preset",
            "cora",
            "--scale",
            "0.1",
            "--feature-dim",
            "12",
            "--out",
        ])
        .arg(&data)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = betty().arg("info").arg("--data").arg(&data).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classes    7"), "{stdout}");

    let out = betty()
        .args(["partition", "--k", "3", "--fanouts", "4,6", "--data"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("micro-batches"));

    let out = betty()
        .args([
            "train", "--epochs", "4", "--k", "2", "--fanouts", "4,6", "--hidden", "12",
            "--lr", "0.02", "--dropout", "0.0",
        ])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let out = betty()
        .args(["eval", "--fanouts", "4,6", "--hidden", "12"])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("full-graph test accuracy"));

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&ckpt);
}

/// Shared shape flags for the durability tests; every invocation must
/// agree on these or the config-fingerprint check rejects the resume.
const SHAPE: &[&str] = &[
    "--preset", "cora", "--scale", "0.1", "--feature-dim", "12", "--fanouts", "4,6",
    "--hidden", "12", "--lr", "0.02", "--dropout", "0.0", "--k", "2",
];

#[test]
fn sigkill_then_resume_matches_uninterrupted_run() {
    let dir_a = tmp("resume-baseline");
    let dir_b = tmp("resume-killed");
    let model_a = tmp("resume-a.ckpt");
    let model_b = tmp("resume-b.ckpt");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let epochs = ["--epochs", "20"];

    // Uninterrupted baseline.
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_a)
        .arg("--checkpoint")
        .arg(&model_a)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let baseline = String::from_utf8_lossy(&out.stdout).to_string();

    // Same run, SIGKILLed once a few epochs' checkpoints exist.
    let mut child = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_b)
        .arg("--checkpoint")
        .arg(&model_b)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let marker = dir_b.join("ckpt-000002.btc");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !marker.exists() && std::time::Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            break; // finished before we could kill it — resume still must agree
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(marker.exists(), "no checkpoint appeared before the deadline");
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    // Resume from the newest surviving checkpoint and finish the run.
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_b)
        .arg("--checkpoint")
        .arg(&model_b)
        .arg("--resume")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let resumed = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(resumed.contains("resumed from"), "{resumed}");

    // The final reported epoch line (loss, K, peak, val acc) must match
    // the uninterrupted run exactly — the losses are bit-identical, so
    // even the formatted digits agree.
    let final_line = |s: &str| {
        s.lines()
            .find(|l| l.split_whitespace().next() == Some("19"))
            .map(str::to_string)
    };
    let base_line = final_line(&baseline).expect("baseline reported epoch 19");
    assert_eq!(final_line(&resumed).as_ref(), Some(&base_line), "\n{baseline}\nvs\n{resumed}");

    // And the exported model checkpoints are byte-for-byte identical.
    let bytes_a = std::fs::read(&model_a).unwrap();
    let bytes_b = std::fs::read(&model_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "resumed model differs from baseline");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_file(&model_a);
    let _ = std::fs::remove_file(&model_b);
}

#[test]
fn resume_without_checkpoint_dir_is_a_usage_error() {
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(["--epochs", "1", "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint-dir"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn injected_nan_is_rolled_back_and_the_run_completes() {
    let out = betty()
        .arg("train")
        .args(SHAPE[..SHAPE.len() - 2].iter()) // drop "--k 2": recovery needs auto-K
        .args(["--epochs", "3", "--k", "auto", "--fault-nan-steps", "1"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("anomaly rollbacks"), "{stdout}");
    assert!(stdout.contains("test accuracy"), "{stdout}");
    // Every reported per-epoch loss is finite — the poisoned step was
    // rolled back, not trained through.
    let losses: Vec<f64> = stdout
        .lines()
        .filter(|l| l.split_whitespace().next().is_some_and(|w| w.parse::<usize>().is_ok()))
        .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
        .collect();
    assert!(!losses.is_empty(), "{stdout}");
    assert!(losses.iter().all(|l| l.is_finite()), "{stdout}");
}

#[test]
fn exhausted_anomaly_budget_exits_5() {
    let out = betty()
        .arg("train")
        .args(SHAPE[..SHAPE.len() - 2].iter())
        .args([
            "--epochs", "3", "--k", "auto", "--fault-nan-steps", "1", "--anomaly-retries", "0",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("anomaly"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn train_from_preset_without_file() {
    let out = betty()
        .args([
            "train",
            "--preset",
            "pubmed",
            "--scale",
            "0.02",
            "--feature-dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "2",
            "--fanouts",
            "3,5",
            "--hidden",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

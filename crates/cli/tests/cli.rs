//! End-to-end tests of the `betty` binary.

use std::path::PathBuf;
use std::process::Command;

fn betty() -> Command {
    Command::new(env!("CARGO_BIN_EXE_betty"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("betty-cli-test-{name}-{}", std::process::id()))
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = betty().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = betty().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_strategy_is_reported() {
    let out = betty()
        .args([
            "partition",
            "--preset",
            "cora",
            "--scale",
            "0.05",
            "--strategy",
            "zigzag",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn generate_info_partition_train_eval_pipeline() {
    let data = tmp("pipeline.btd");
    let ckpt = tmp("pipeline.ckpt");

    let out = betty()
        .args([
            "generate",
            "--preset",
            "cora",
            "--scale",
            "0.1",
            "--feature-dim",
            "12",
            "--out",
        ])
        .arg(&data)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = betty().arg("info").arg("--data").arg(&data).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classes    7"), "{stdout}");

    let out = betty()
        .args(["partition", "--k", "3", "--fanouts", "4,6", "--data"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("micro-batches"));

    let out = betty()
        .args([
            "train", "--epochs", "4", "--k", "2", "--fanouts", "4,6", "--hidden", "12",
            "--lr", "0.02", "--dropout", "0.0",
        ])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let out = betty()
        .args(["eval", "--fanouts", "4,6", "--hidden", "12"])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("full-graph test accuracy"));

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn train_from_preset_without_file() {
    let out = betty()
        .args([
            "train",
            "--preset",
            "pubmed",
            "--scale",
            "0.02",
            "--feature-dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "2",
            "--fanouts",
            "3,5",
            "--hidden",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

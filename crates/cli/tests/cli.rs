//! End-to-end tests of the `betty` binary.

use std::path::PathBuf;
use std::process::Command;

fn betty() -> Command {
    Command::new(env!("CARGO_BIN_EXE_betty"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("betty-cli-test-{name}-{}", std::process::id()))
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = betty().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = betty().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("COMMANDS"));
}

#[test]
fn unknown_strategy_is_reported() {
    let out = betty()
        .args([
            "partition",
            "--preset",
            "cora",
            "--scale",
            "0.05",
            "--strategy",
            "zigzag",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn generate_info_partition_train_eval_pipeline() {
    let data = tmp("pipeline.btd");
    let ckpt = tmp("pipeline.ckpt");

    let out = betty()
        .args([
            "generate",
            "--preset",
            "cora",
            "--scale",
            "0.1",
            "--feature-dim",
            "12",
            "--out",
        ])
        .arg(&data)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = betty().arg("info").arg("--data").arg(&data).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classes    7"), "{stdout}");

    let out = betty()
        .args(["partition", "--k", "3", "--fanouts", "4,6", "--data"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("micro-batches"));

    let out = betty()
        .args([
            "train", "--epochs", "4", "--k", "2", "--fanouts", "4,6", "--hidden", "12",
            "--lr", "0.02", "--dropout", "0.0",
        ])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("test accuracy"));

    let out = betty()
        .args(["eval", "--fanouts", "4,6", "--hidden", "12"])
        .arg("--data")
        .arg(&data)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("full-graph test accuracy"));

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&ckpt);
}

/// Shared shape flags for the durability tests; every invocation must
/// agree on these or the config-fingerprint check rejects the resume.
const SHAPE: &[&str] = &[
    "--preset", "cora", "--scale", "0.1", "--feature-dim", "12", "--fanouts", "4,6",
    "--hidden", "12", "--lr", "0.02", "--dropout", "0.0", "--k", "2",
];

#[test]
fn sigkill_then_resume_matches_uninterrupted_run() {
    let dir_a = tmp("resume-baseline");
    let dir_b = tmp("resume-killed");
    let model_a = tmp("resume-a.ckpt");
    let model_b = tmp("resume-b.ckpt");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let epochs = ["--epochs", "20"];

    // Uninterrupted baseline.
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_a)
        .arg("--checkpoint")
        .arg(&model_a)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let baseline = String::from_utf8_lossy(&out.stdout).to_string();

    // Same run, SIGKILLed once a few epochs' checkpoints exist.
    let mut child = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_b)
        .arg("--checkpoint")
        .arg(&model_b)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let marker = dir_b.join("ckpt-000002.btc");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !marker.exists() && std::time::Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            break; // finished before we could kill it — resume still must agree
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(marker.exists(), "no checkpoint appeared before the deadline");
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    // Resume from the newest surviving checkpoint and finish the run.
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(epochs)
        .arg("--checkpoint-dir")
        .arg(&dir_b)
        .arg("--checkpoint")
        .arg(&model_b)
        .arg("--resume")
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let resumed = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(resumed.contains("resumed from"), "{resumed}");

    // The final reported epoch line (loss, K, peak, val acc) must match
    // the uninterrupted run exactly — the losses are bit-identical, so
    // even the formatted digits agree.
    let final_line = |s: &str| {
        s.lines()
            .find(|l| l.split_whitespace().next() == Some("19"))
            .map(str::to_string)
    };
    let base_line = final_line(&baseline).expect("baseline reported epoch 19");
    assert_eq!(final_line(&resumed).as_ref(), Some(&base_line), "\n{baseline}\nvs\n{resumed}");

    // And the exported model checkpoints are byte-for-byte identical.
    let bytes_a = std::fs::read(&model_a).unwrap();
    let bytes_b = std::fs::read(&model_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "resumed model differs from baseline");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_file(&model_a);
    let _ = std::fs::remove_file(&model_b);
}

#[test]
fn resume_without_checkpoint_dir_is_a_usage_error() {
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(["--epochs", "1", "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint-dir"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn injected_nan_is_rolled_back_and_the_run_completes() {
    let out = betty()
        .arg("train")
        .args(SHAPE[..SHAPE.len() - 2].iter()) // drop "--k 2": recovery needs auto-K
        .args(["--epochs", "3", "--k", "auto", "--fault-nan-steps", "1"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("anomaly rollbacks"), "{stdout}");
    assert!(stdout.contains("test accuracy"), "{stdout}");
    // Every reported per-epoch loss is finite — the poisoned step was
    // rolled back, not trained through.
    let losses: Vec<f64> = stdout
        .lines()
        .filter(|l| l.split_whitespace().next().is_some_and(|w| w.parse::<usize>().is_ok()))
        .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
        .collect();
    assert!(!losses.is_empty(), "{stdout}");
    assert!(losses.iter().all(|l| l.is_finite()), "{stdout}");
}

#[test]
fn exhausted_anomaly_budget_exits_5() {
    let out = betty()
        .arg("train")
        .args(SHAPE[..SHAPE.len() - 2].iter())
        .args([
            "--epochs", "3", "--k", "auto", "--fault-nan-steps", "1", "--anomaly-retries", "0",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("anomaly"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Flips one byte well past the header of `path`, simulating silent
/// media corruption that only a CRC check can see.
fn flip_byte(path: &std::path::Path, offset: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    assert!(bytes.len() > offset, "{} too short", path.display());
    bytes[offset] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}

/// Spills a small paged feature store (with parity) into `dir` and
/// returns the flags that produced it.
fn spill_store(dir: &std::path::Path, parity: &str) {
    let _ = std::fs::remove_dir_all(dir);
    let out = betty()
        .args([
            "info", "--preset", "cora", "--scale", "0.1", "--feature-dim", "12",
            "--feature-store", "paged", "--feature-page-rows", "64", "--feature-parity", parity,
        ])
        .arg("--feature-dir")
        .arg(dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn storage_faults_with_dense_store_are_a_usage_error() {
    let out = betty()
        .arg("train")
        .args(SHAPE)
        .args(["--epochs", "1", "--fault-io-rate", "0.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--feature-store paged"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn storage_chaos_run_is_bit_identical_to_fault_free_run() {
    let quiet_dir = tmp("chaos-quiet-store");
    let chaos_dir = tmp("chaos-noisy-store");
    let model_quiet = tmp("chaos-quiet.ckpt");
    let model_chaos = tmp("chaos-noisy.ckpt");
    let paged: &[&str] = &[
        "--feature-store", "paged", "--feature-page-rows", "64", "--feature-parity", "2",
    ];
    let run = |dir: &PathBuf, model: &PathBuf, chaos: bool| {
        let _ = std::fs::remove_dir_all(dir);
        let mut cmd = betty();
        cmd.arg("train")
            .args(SHAPE)
            .args(["--epochs", "4"])
            .args(paged)
            .arg("--feature-dir")
            .arg(dir)
            .arg("--checkpoint")
            .arg(model);
        if chaos {
            cmd.args([
                "--fault-io-rate", "0.3", "--fault-io-stall-rate", "0.2",
                "--fault-io-stall-sec", "0.002", "--fault-shard-corrupt", "1:1",
                "--io-retries", "4",
            ]);
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let quiet = run(&quiet_dir, &model_quiet, false);
    let chaos = run(&chaos_dir, &model_chaos, true);

    // Losses are bit-identical under injected storage chaos: every
    // reported per-epoch line (loss digits included) must agree.
    let epoch_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.split_whitespace().next().is_some_and(|w| w.parse::<usize>().is_ok()))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(epoch_lines(&quiet), epoch_lines(&chaos), "\n{quiet}\nvs\n{chaos}");
    assert!(!epoch_lines(&quiet).is_empty(), "{quiet}");

    // And the exported parameters are byte-for-byte identical.
    let a = std::fs::read(&model_quiet).unwrap();
    let b = std::fs::read(&model_chaos).unwrap();
    assert_eq!(a, b, "storage chaos perturbed the trained parameters");

    let _ = std::fs::remove_dir_all(&quiet_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_file(&model_quiet);
    let _ = std::fs::remove_file(&model_chaos);
}

#[test]
fn scrub_repairs_single_shard_damage_and_exits_clean() {
    let dir = tmp("scrub-repair-store");
    spill_store(&dir, "2");
    flip_byte(&dir.join("shard-00001.bfs"), 40);

    let out = betty().arg("scrub").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("repaired shard 1"), "{stdout}");
    assert!(stdout.contains("scrub: clean"), "{stdout}");

    // A second pass finds nothing left to repair.
    let out = betty().arg("scrub").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout.contains("all shards verify clean"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_unrepairable_store_exits_7() {
    let dir = tmp("scrub-unrepairable-store");
    spill_store(&dir, "2");
    // Two damaged shards in the same parity group exceed what one XOR
    // parity shard can reconstruct.
    flip_byte(&dir.join("shard-00000.bfs"), 40);
    flip_byte(&dir.join("shard-00001.bfs"), 40);

    let out = betty().arg("scrub").arg(&dir).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(7),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unrepairable"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_of_missing_dir_is_a_usage_error() {
    let out = betty().arg("scrub").arg(tmp("scrub-no-such-dir")).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = betty().arg("scrub").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("betty scrub <dir>"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn resume_falls_back_past_corrupt_newest_slot_bit_identically() {
    let dir_a = tmp("fallback-baseline");
    let dir_b = tmp("fallback-corrupt");
    let model_a = tmp("fallback-a.ckpt");
    let model_b = tmp("fallback-b.ckpt");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let epochs = ["--epochs", "8"];

    let run = |dir: &PathBuf, model: &PathBuf, resume: bool| {
        let mut cmd = betty();
        cmd.arg("train")
            .args(SHAPE)
            .args(epochs)
            .arg("--checkpoint-dir")
            .arg(dir)
            .arg("--checkpoint")
            .arg(model);
        if resume {
            cmd.arg("--resume");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    run(&dir_a, &model_a, false);
    run(&dir_b, &model_b, false);

    // Silently corrupt the newest slot of run B, then resume: the CLI
    // must fall back to the next-older valid slot, retrain the lost
    // epoch, and land on exactly the baseline parameters.
    flip_byte(&dir_b.join("ckpt-000007.btc"), 64);
    let resumed = run(&dir_b, &model_b, true);
    assert!(resumed.contains("skipping corrupt checkpoint"), "{resumed}");
    assert!(resumed.contains("ckpt-000007.btc"), "{resumed}");
    assert!(resumed.contains("resumed from"), "{resumed}");
    assert!(resumed.contains("checkpoint fallback"), "{resumed}");

    let a = std::fs::read(&model_a).unwrap();
    let b = std::fs::read(&model_b).unwrap();
    assert_eq!(a, b, "fallback resume diverged from the uninterrupted run");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_file(&model_a);
    let _ = std::fs::remove_file(&model_b);
}

#[test]
fn train_from_preset_without_file() {
    let out = betty()
        .args([
            "train",
            "--preset",
            "pubmed",
            "--scale",
            "0.02",
            "--feature-dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "2",
            "--fanouts",
            "3,5",
            "--hidden",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

//! `cargo bench --bench paper` — regenerates every table and figure of the
//! paper at quick scale (set `BETTY_PROFILE=full` for the full runs, or use
//! the per-exhibit binaries in `src/bin/`).

fn main() {
    // Criterion-style benches measure kernels (see `kernels.rs`); this
    // harness-free target exists so `cargo bench --workspace` reproduces
    // the complete evaluation in one command.
    let profile = match std::env::var("BETTY_PROFILE").as_deref() {
        Ok("full") => betty_bench::Profile::Full,
        _ => betty_bench::Profile::Quick,
    };
    // `cargo bench` passes flags like `--bench`; ignore them.
    betty_bench::experiments::run_all(profile);
}

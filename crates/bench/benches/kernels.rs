//! Criterion micro-benchmarks of Betty's hot kernels: REG construction,
//! multilevel partitioning, micro-batch extraction, and the aggregator
//! forward/backward passes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use betty_data::DatasetSpec;
use betty_graph::{dependency_reg, sample_batch, shared_neighbor_graph, Batch};
use betty_nn::{Aggregator, AggregatorSpec, Session};
use betty_partition::{MultilevelPartitioner, OutputPartitioner, Partitioner, RegPartitioner};

fn bench_batch() -> (betty_data::Dataset, Batch) {
    let ds = DatasetSpec::ogbn_arxiv()
        .scaled(0.01)
        .with_feature_dim(32)
        .generate(1);
    let mut rng = Pcg64Mcg::seed_from_u64(0);
    let batch = sample_batch(&ds.graph, &ds.train_idx, &[10, 25], &mut rng);
    (ds, batch)
}

fn reg_construction(c: &mut Criterion) {
    let (_, batch) = bench_batch();
    let last = batch.blocks().last().unwrap().clone();
    c.bench_function("reg/last_layer_spgemm", |b| {
        b.iter(|| shared_neighbor_graph(&last))
    });
    c.bench_function("reg/full_dependency", |b| {
        b.iter(|| dependency_reg(&batch, 32))
    });
}

fn partitioning(c: &mut Criterion) {
    let (_, batch) = bench_batch();
    let reg = dependency_reg(&batch, 32);
    c.bench_function("partition/multilevel_k8", |b| {
        b.iter(|| MultilevelPartitioner::new(0).partition(&reg, 8))
    });
    c.bench_function("partition/betty_end_to_end_k8", |b| {
        b.iter(|| RegPartitioner::new(0).split_outputs(&batch, 8))
    });
}

fn micro_batch_extraction(c: &mut Criterion) {
    let (_, batch) = bench_batch();
    let parts = RegPartitioner::new(0).split_outputs(&batch, 8);
    c.bench_function("batch/restrict_one_of_8", |b| {
        b.iter(|| batch.restrict(&parts[0]))
    });
}

fn aggregators(c: &mut Criterion) {
    let (ds, batch) = bench_batch();
    let block = batch.blocks().last().unwrap().clone();
    let idx: Vec<usize> = block.src_globals().iter().map(|&v| v as usize).collect();
    let feats = ds.features.gather_rows(&idx);
    let mut rng = Pcg64Mcg::seed_from_u64(3);
    for spec in [
        AggregatorSpec::Mean,
        AggregatorSpec::Pool,
        AggregatorSpec::Lstm,
    ] {
        let agg = Aggregator::new(spec, feats.cols(), &mut rng);
        c.bench_function(&format!("aggregator/{}_fwd_bwd", spec.name()), |b| {
            b.iter_batched(
                Session::new,
                |mut sess| {
                    let x = sess.graph.leaf(feats.clone());
                    let out = agg.forward(&mut sess, &block, x);
                    let loss = sess.graph.sum(out);
                    sess.graph.backward(loss);
                    sess.graph.grad(x).map(|g| g.sum_all())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = reg_construction, partitioning, micro_batch_extraction, aggregators
}
criterion_main!(kernels);

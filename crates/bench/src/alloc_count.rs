//! Heap-allocation counting for the `ext_alloc` exhibit.
//!
//! [`CountingAllocator`] is a zero-sized proxy around the system allocator
//! that bumps process-wide counters on every allocation request. It only
//! counts once a binary installs it as the global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: betty_bench::alloc_count::CountingAllocator =
//!     betty_bench::alloc_count::CountingAllocator;
//! ```
//!
//! The counters use relaxed atomics — they measure traffic volume, not
//! a synchronization-precise event order, and the exhibit only reads
//! them from quiesced before/after points. When the allocator is *not*
//! installed (library tests, other binaries) the counters simply stay at
//! zero, which [`installed`] exposes so measurements can degrade to
//! wall-clock-only comparisons instead of asserting on dead counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Zero-sized proxy allocator: delegates to [`System`], counting each
/// `alloc`/`alloc_zeroed`/`realloc` call and its requested bytes.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocation requests observed so far (0 unless the counting
/// allocator is installed as the process's global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the heap so far (0 unless installed).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Whether the counting allocator is actually serving this process. Any
/// Rust program performs heap work long before `main`, so installed ⇔
/// non-zero counters by the time any measurement code can run.
pub fn installed() -> bool {
    allocations() > 0
}

//! Benchmark harness reproducing every table and figure of the Betty paper.
//!
//! Each exhibit of the paper's evaluation (§3 workload analysis and §6) has
//! a module under [`experiments`] and a thin binary under `src/bin/`; the
//! `paper` bench target (`cargo bench --bench paper`) runs every exhibit at
//! quick scale in one go. Raw rows are also written as JSON under
//! `experiments_out/` for EXPERIMENTS.md bookkeeping.
//!
//! Substrates are simulated (see DESIGN.md): graphs are scaled synthetic
//! stand-ins and the device is a byte-accurate ledger, so absolute numbers
//! differ from the paper while orderings, ratios, and crossovers are the
//! reproduction targets.

pub mod alloc_count;
pub mod experiments;
pub mod presets;
pub mod report;

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds per exhibit; used by `cargo bench --bench paper` and CI.
    Quick,
    /// The default for the standalone binaries: minutes per exhibit,
    /// larger graphs and more epochs/seeds.
    Full,
}

impl Profile {
    /// Reads `BETTY_PROFILE=quick|full` (default `full` for binaries).
    pub fn from_env() -> Self {
        match std::env::var("BETTY_PROFILE").as_deref() {
            Ok("quick") => Profile::Quick,
            _ => Profile::Full,
        }
    }

    /// Scales an epoch/iteration count down in quick mode.
    pub fn epochs(&self, full: usize) -> usize {
        match self {
            Profile::Quick => (full / 4).max(2),
            Profile::Full => full,
        }
    }

    /// Scales a dataset size factor down in quick mode.
    pub fn scale(&self, full: f64) -> f64 {
        match self {
            Profile::Quick => full * 0.35,
            Profile::Full => full,
        }
    }
}

//! Table rendering and JSON row dumps for the experiment harness.

use std::fs;
use std::path::PathBuf;

/// A printable experiment table that also persists its rows as JSON under
/// `experiments_out/<id>.json`. Tables whose id starts with `BENCH_`
/// (the `ext_*` perf-trajectory exhibits) are additionally written to
/// `<id>.json` at the repo root, so successive PRs overwrite the same
/// tracked file and the trajectory shows up in diffs.
#[derive(Debug, Clone)]
pub struct Table {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table for exhibit `id` (e.g. `"fig12"`).
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells, one per column).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell/column mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stdout and writes `experiments_out/<id>.json`.
    pub fn finish(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n=== {} — {} ===", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        self.write_json();
    }

    fn write_json(&self) {
        let dir = PathBuf::from("experiments_out");
        if fs::create_dir_all(&dir).is_err() {
            return; // reporting must never fail the experiment
        }
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let obj: serde_json::Map<String, serde_json::Value> = self
                    .columns
                    .iter()
                    .zip(row)
                    .map(|(c, v)| (c.clone(), serde_json::Value::String(v.clone())))
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        let doc = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "rows": rows,
        });
        let pretty = serde_json::to_string_pretty(&doc).expect("static structure serializes");
        let _ = fs::write(dir.join(format!("{}.json", self.id)), &pretty);
        if self.id.starts_with("BENCH_") {
            let _ = fs::write(repo_root().join(format!("{}.json", self.id)), &pretty);
        }
    }
}

/// The workspace root, resolved from this crate's compile-time manifest
/// directory (`crates/bench` → two levels up) so `BENCH_*.json` lands in
/// the same tracked location no matter where the binary is invoked from.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats seconds with three decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_tracked() {
        let mut t = Table::new("t", "test", &["a", "b"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cell/column mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new("t", "test", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(mib(1 << 20), "1.0");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(secs(1.23456), "1.235");
    }
}

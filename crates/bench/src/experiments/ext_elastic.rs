//! Extension exhibit: elastic multi-device failover overhead.
//!
//! For each group size D ∈ {2, 4, 8}, one epoch runs fault-free and
//! then with 1, …, D−1 devices killed mid-epoch (device d dies after
//! completing d micro-batches of its queue). Reported: epoch wall
//! time, the failover overhead versus the fault-free wall time of the
//! same run, micro-batches migrated, and surviving ranks. Losses are
//! bit-identical across every row of a given D — failover only moves
//! *timing*, never numerics.

use betty::{DeviceGroup, RecoveryLog, Runner, StrategyKind};
use betty_device::FaultPlan;

use crate::presets::products_3layer;
use crate::report::{secs, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    config.fanouts = vec![10, 15];
    let k = 16;
    let mut table = Table::new(
        "BENCH_elastic",
        &format!("elastic failover overhead, K = {k} micro-batches"),
        &[
            "devices",
            "killed",
            "wall sec",
            "failover overhead sec",
            "migrated",
            "live ranks",
            "loss",
        ],
    );
    for devices in [2usize, 4, 8] {
        for killed in 0..devices {
            let fault_plan = (killed > 0).then(|| FaultPlan {
                seed: 0,
                // Device d dies after completing d steps of its own
                // queue; device 0 always survives to absorb the load.
                device_fail_steps: (1..=killed).map(|d| (d, d)).collect(),
                ..FaultPlan::default()
            });
            let mut cfg = config.clone();
            cfg.fault_plan = fault_plan;
            let mut runner = Runner::new(&ds, &cfg, 0);
            let mut log = RecoveryLog::new();
            let epoch = runner
                .train_epoch_elastic(
                    &ds,
                    StrategyKind::Betty,
                    k,
                    &DeviceGroup::new(devices),
                    &mut log,
                )
                .expect("device 0 always survives");
            table.row(vec![
                devices.to_string(),
                killed.to_string(),
                secs(epoch.wall_sec()),
                secs(epoch.failover_overhead_sec()),
                epoch.combined.migrated_steps.to_string(),
                epoch.live_ranks.to_string(),
                format!("{:.6}", epoch.combined.loss),
            ]);
        }
    }
    table.finish();
}

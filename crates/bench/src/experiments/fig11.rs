//! Figure 11: reduction of max memory consumption vs the full batch, for
//! range/random/Metis/Betty across datasets and micro-batch counts.

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_datasets;
use crate::report::{mib, pct, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let ks: &[usize] = match profile {
        Profile::Quick => &[4, 8],
        Profile::Full => &[2, 4, 8, 16, 32],
    };
    let mut table = Table::new(
        "fig11",
        "measured max memory per strategy (reduction vs full batch)",
        &["dataset", "K", "full MiB", "range", "random", "metis", "betty", "betty cut"],
    );
    for ds in bench_datasets(profile) {
        let mut runner = Runner::new(&ds, &config, 0);
        let batch = runner.sample_full_batch(&ds);
        let full = runner
            .train_micro_batches(&ds, std::slice::from_ref(&batch))
            .expect("ample capacity")
            .max_peak_bytes;
        for &k in ks {
            let mut peaks = Vec::new();
            for strategy in StrategyKind::ALL {
                let plan = runner.plan_fixed(&batch, strategy, k);
                let stats = runner
                    .train_micro_batches(&ds, &plan.micro_batches)
                    .expect("ample capacity");
                peaks.push(stats.max_peak_bytes);
            }
            let betty = peaks[3];
            table.row(vec![
                ds.name.clone(),
                k.to_string(),
                mib(full),
                mib(peaks[0]),
                mib(peaks[1]),
                mib(peaks[2]),
                mib(betty),
                pct(1.0 - betty as f64 / full as f64),
            ]);
        }
    }
    table.finish();
}

//! Table 2: load imbalance across REG-partitioned micro-batches
//! (GraphSAGE on ogbn-arxiv; 2-way and 4-way examples).

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::{mib, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-arxiv", profile);
    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 64,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let mut table = Table::new(
        "table2",
        "per-micro-batch estimated memory under REG partitioning (load imbalance)",
        &["example", "batch id", "mem MiB", "spread vs min"],
    );
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    for (example, k) in [("1 (2 batches)", 2usize), ("2 (4 batches)", 4)] {
        let plan = runner.plan_fixed(&batch, StrategyKind::Betty, k);
        let peaks: Vec<usize> = plan.estimates.iter().map(|e| e.peak_bytes()).collect();
        let min = *peaks.iter().min().expect("k >= 1") as f64;
        for (id, &peak) in peaks.iter().enumerate() {
            table.row(vec![
                example.to_string(),
                id.to_string(),
                mib(peak),
                format!("+{:.1}%", (peak as f64 / min - 1.0) * 100.0),
            ]);
        }
    }
    table.finish();
    println!(
        "note: REG minimizes redundancy, not balance — the spread above is why \
         §4.4's memory-aware re-partitioning sizes K by the *largest* micro-batch."
    );
}

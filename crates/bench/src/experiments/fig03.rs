//! Figure 3: GPU memory breakdown of a 1-layer GraphSAGE (Mean, fanout 10,
//! hidden 64) training step — input features dominate (~55% in the paper).

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::report::{mib, pct, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    // The paper's real 100-dim feature width matters here: input features
    // are the dominant share precisely because they are wide. Density is
    // kept at the preset default so sampled neighborhoods stay distinct.
    let ds = betty_data::DatasetSpec::ogbn_products()
        .scaled(profile.scale(0.012))
        .with_uniform_attachment(0.6)
        .generate(2024);
    let config = ExperimentConfig {
        fanouts: vec![10],
        hidden_dim: 64,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    let plan = runner.plan_fixed(&batch, StrategyKind::Betty, 1);
    let est = &plan.estimates[0];

    let items: [(&str, usize); 8] = [
        ("output node labels", est.labels),
        ("input node features", est.input_features),
        ("edges (blocks)", est.blocks),
        ("hidden layer output", est.hidden_outputs),
        ("aggregator + layer workspace", est.aggregator_intermediate),
        ("optimizer states", est.optimizer_states),
        ("gradients", est.gradients),
        ("model parameters", est.parameters),
    ];
    let total: usize = items.iter().map(|(_, b)| b).sum();
    let mut table = Table::new(
        "fig03",
        "memory breakdown, 1-layer SAGE Mean, fanout 10, hidden 64",
        &["component", "MiB", "share"],
    );
    for (name, bytes) in items {
        table.row(vec![
            name.to_string(),
            mib(bytes),
            pct(bytes as f64 / total as f64),
        ]);
    }
    table.row(vec!["total".into(), mib(total), pct(1.0)]);
    table.finish();
}

//! Table 7: memory-estimation error of the analytical model against the
//! measured device peak, LSTM aggregator, five datasets × K ∈ {4, 8}.

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_datasets;
use crate::report::Table;
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let config = ExperimentConfig {
        fanouts: vec![10], // the paper's 1-layer LSTM setting, fanout 10
        hidden_dim: 64,
        aggregator: AggregatorSpec::Lstm,
        dropout: 0.0,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let mut table = Table::new(
        "table7",
        "memory estimation error (LSTM aggregator): |estimate − measured| / measured",
        &["dataset", "K", "worst error", "mean error"],
    );
    for ds in bench_datasets(profile) {
        let mut runner = Runner::new(&ds, &config, 0);
        let batch = runner.sample_full_batch(&ds);
        for k in [4usize, 8] {
            let plan = runner.plan_fixed(&batch, StrategyKind::Betty, k);
            let mut errors = Vec::new();
            for (mb, est) in plan.micro_batches.iter().zip(&plan.estimates) {
                let stats = runner
                    .train_micro_batches(&ds, std::slice::from_ref(mb))
                    .expect("24 GiB is ample");
                let measured = stats.max_peak_bytes as f64;
                errors.push((est.peak_bytes() as f64 - measured).abs() / measured);
            }
            let worst = errors.iter().cloned().fold(0.0f64, f64::max);
            let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
            table.row(vec![
                ds.name.clone(),
                k.to_string(),
                format!("{:.1}%", worst * 100.0),
                format!("{:.1}%", mean * 100.0),
            ]);
        }
    }
    table.finish();
    println!("note: the paper reports < 8% error in all cases.");
}

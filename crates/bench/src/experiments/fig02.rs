//! Figure 2: the GNN memory-capacity wall.
//!
//! Four panels of full-batch peak-memory estimates on the products-like
//! graph, each sweeping one axis (aggregator, depth, hidden size, fanout)
//! against the scaled device capacity. Configurations whose peak exceeds
//! the capacity are the paper's OOM cases — Fig. 10 rescues exactly these.

use betty::{Runner, StrategyKind};
use betty_nn::AggregatorSpec;

use crate::presets::{bench_dataset, wall_capacity, wall_config};
use crate::report::{mib, Table};
use crate::Profile;

/// A single sweep point: panel label, setting, config, and whether it
/// runs on the wide-feature (100-dim, faithful to ogbn-products) dataset —
/// panel (d)'s 1-layer LSTM footprint scales with the raw feature width.
pub(crate) fn sweep(
    profile: Profile,
) -> Vec<(&'static str, String, betty::ExperimentConfig, bool)> {
    let mut cases = Vec::new();
    // (a) aggregators, 2-layer (10, 25), hidden 256.
    for agg in [AggregatorSpec::Mean, AggregatorSpec::Pool, AggregatorSpec::Lstm] {
        cases.push((
            "a:aggregator",
            agg.name().to_string(),
            wall_config(vec![10, 25], 256, agg, profile),
            false,
        ));
    }
    // (b) depth 2–5, Mean, hidden 256, paper fanouts (10, 25, 30, 40, +40).
    let deep = [10usize, 25, 30, 40, 40];
    for layers in 2..=5 {
        cases.push((
            "b:layers",
            format!("{layers}"),
            wall_config(deep[..layers].to_vec(), 256, AggregatorSpec::Mean, profile),
            false,
        ));
    }
    // (c) hidden 64–256 (the Fig. 2c sweep), like (b) at 4 layers.
    for hidden in [64usize, 128, 256] {
        cases.push((
            "c:hidden",
            format!("{hidden}"),
            wall_config(deep[..4].to_vec(), hidden, AggregatorSpec::Mean, profile),
            false,
        ));
    }
    // (d) fanout sweep, 1-layer LSTM, hidden 256.
    for fanout in [10usize, 20, 100, 800] {
        cases.push((
            "d:fanout",
            format!("{fanout}"),
            wall_config(vec![fanout], 256, AggregatorSpec::Lstm, profile),
            true,
        ));
    }
    cases
}

/// The wide-feature variant used by panel (d): the paper's real 100-dim
/// ogbn-products features and its ~25 mean degree, so the fanout sweep has
/// neighborhood mass to expand into.
pub(crate) fn wide_products(profile: Profile) -> betty_data::Dataset {
    betty_data::DatasetSpec::ogbn_products()
        .scaled(profile.scale(0.0018))
        .with_edges_per_node(25)
        .generate(2024)
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-products", profile);
    let ds_wide = wide_products(profile);
    let capacity = wall_capacity(profile);
    let mut table = Table::new(
        "fig02",
        &format!(
            "memory wall: full-batch peak vs {} MiB capacity (ogbn-products-like, {} nodes)",
            mib(capacity),
            ds.num_nodes()
        ),
        &["panel", "setting", "peak MiB", "fits?"],
    );
    for (panel, setting, config, wide) in sweep(profile) {
        let data = if wide { &ds_wide } else { &ds };
        let mut runner = Runner::new(data, &config, 0);
        let batch = runner.sample_full_batch(data);
        let peak = runner
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        table.row(vec![
            panel.to_string(),
            setting,
            mib(peak),
            if peak <= capacity { "yes".into() } else { "OOM".into() },
        ]);
    }
    table.finish();
}

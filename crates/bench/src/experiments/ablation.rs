//! Ablations of Betty's design choices (not a paper exhibit, but the
//! design-space evidence DESIGN.md calls out):
//!
//! 1. **REG scope** — Algorithm 1's last-layer REG vs this repo's
//!    full-dependency REG vs the baselines, measured by input redundancy.
//! 2. **Refinement** — the multilevel cutter with and without KL passes.
//! 3. **Memory-aware planning** — estimator-guided K selection vs
//!    trial-and-error (how many aborted training attempts the estimator
//!    saves).

use betty::{Runner, StrategyKind};
use betty_partition::{
    input_redundancy, MultilevelPartitioner, OutputPartitioner, RegPartitioner, RegScope,
};

use crate::presets::products_3layer;
use crate::report::{secs, Table};
use crate::Profile;

/// Runs all four ablations.
pub fn run(profile: Profile) {
    reg_scope(profile);
    hub_cap(profile);
    refinement(profile);
    memory_aware(profile);
}

/// How the full-dependency REG's hub cap affects redundancy: too small
/// discards useful sharing signal, too large wastes time on ubiquitous
/// nodes whose duplication no cut can avoid.
fn hub_cap(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    let k = 8;
    let mut table = Table::new(
        "ablation_hub_cap",
        "full-dependency REG hub cap sweep (K = 8)",
        &["hub cap", "input nodes", "ratio", "partition ms"],
    );
    for cap in [4usize, 8, 16, 32, 64, 128] {
        let strategy = RegPartitioner::new(0).with_hub_cap(cap);
        let started = std::time::Instant::now();
        let parts = strategy.split_outputs(&batch, k);
        let elapsed = started.elapsed().as_secs_f64();
        let micros: Vec<_> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let r = input_redundancy(&micros);
        table.row(vec![
            cap.to_string(),
            r.total_input_nodes.to_string(),
            format!("{:.3}", r.redundancy_ratio()),
            format!("{:.1}", elapsed * 1e3),
        ]);
    }
    table.finish();
}

fn reg_scope(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    let k = 8;
    let mut table = Table::new(
        "ablation_reg_scope",
        "REG construction: last-layer (Algorithm 1) vs full-dependency",
        &["variant", "input nodes", "redundant", "ratio"],
    );
    let variants: Vec<(String, Box<dyn OutputPartitioner>)> = vec![
        (
            "last-layer REG".into(),
            Box::new(RegPartitioner::new(0).with_scope(RegScope::LastLayer)),
        ),
        (
            "full-dependency REG".into(),
            Box::new(RegPartitioner::new(0).with_scope(RegScope::FullDependency)),
        ),
    ];
    for (name, strategy) in variants {
        let parts = strategy.split_outputs(&batch, k);
        let micros: Vec<_> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let r = input_redundancy(&micros);
        table.row(vec![
            name,
            r.total_input_nodes.to_string(),
            r.redundant_nodes().to_string(),
            format!("{:.3}", r.redundancy_ratio()),
        ]);
    }
    table.finish();
}

fn refinement(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    let runner = Runner::new(&ds, &config, 0);
    let mut sample_runner = Runner::new(&ds, &config, 0);
    let batch = sample_runner.sample_full_batch(&ds);
    drop(runner);
    let k = 8;
    let mut table = Table::new(
        "ablation_refinement",
        "multilevel cutter: KL refinement on vs off (full-dependency REG)",
        &["refinement passes", "input nodes", "ratio"],
    );
    for passes in [0usize, 4] {
        let cutter = MultilevelPartitioner::new(0).with_refinement_passes(passes);
        let strategy = RegPartitioner::new(0).with_cutter(cutter);
        let parts = strategy.split_outputs(&batch, k);
        let micros: Vec<_> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| batch.restrict(p))
            .collect();
        let r = input_redundancy(&micros);
        table.row(vec![
            passes.to_string(),
            r.total_input_nodes.to_string(),
            format!("{:.3}", r.redundancy_ratio()),
        ]);
    }
    table.finish();
}

fn memory_aware(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    // A capacity that needs several partitions.
    let mut probe = Runner::new(&ds, &config, 0);
    let batch = probe.sample_full_batch(&ds);
    let full = probe
        .plan_fixed(&batch, StrategyKind::Betty, 1)
        .max_estimated_peak();
    config.capacity_bytes = (full as f64 * 0.45) as usize;

    let mut table = Table::new(
        "ablation_memory_aware",
        "K selection: estimator-guided planning vs trial-and-error training",
        &["method", "K found", "training attempts", "wasted OOM sec"],
    );

    // Estimator-guided: zero aborted training runs.
    let mut planned = Runner::new(&ds, &config, 0);
    let (_, k_planned) = planned
        .train_epoch_auto(&ds, StrategyKind::Betty)
        .expect("planning finds a fitting K");
    table.row(vec![
        "memory-aware (Betty)".into(),
        k_planned.to_string(),
        "1".into(),
        secs(0.0),
    ]);

    // Trial-and-error: train at K = 1, 2, … until one fits, timing the
    // aborted attempts.
    let mut attempts = 0usize;
    let mut wasted = 0.0f64;
    let mut k_found = 0usize;
    let mut trial = Runner::new(&ds, &config, 0);
    for k in 1..=config.max_partitions {
        attempts += 1;
        let started = std::time::Instant::now();
        match trial.train_epoch_betty(&ds, StrategyKind::Betty, k) {
            Ok(_) => {
                k_found = k;
                break;
            }
            Err(_) => wasted += started.elapsed().as_secs_f64(),
        }
    }
    table.row(vec![
        "trial-and-error".into(),
        k_found.to_string(),
        attempts.to_string(),
        secs(wasted),
    ]);
    table.finish();
}

//! Extension exhibit: OOM recovery under fault injection.
//!
//! The paper assumes the memory estimator keeps training clear of OOM;
//! this exhibit measures what happens when that assumption breaks. A
//! deterministic [`betty_device::FaultPlan`] injects allocation failures
//! and capacity jitter into the simulated device, and the recovering
//! trainer ([`Runner::train_epoch_auto_recovering`]) rolls back to the
//! epoch-start checkpoint and escalates K until the epoch fits. Columns:
//! injected faults observed, checkpointed retries consumed, the final K
//! the run settled on, and validation accuracy — which should survive
//! every recoverable scenario (recovery replays the epoch bit-exactly
//! from the snapshot, so accuracy degradation would mean lost state).

use betty::{RecoveryLog, RetryPolicy, Runner, StrategyKind};
use betty_device::FaultPlan;
use betty_nn::AggregatorSpec;

use crate::presets::{bench_dataset, wall_config};
use crate::report::Table;
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("cora", profile);
    let epochs = profile.epochs(6);
    // The LSTM aggregator is the paper's memory hog (Fig. 2a): against the
    // wall capacity it trains close to the limit, so capacity jitter can
    // actually push a step over the edge. Spurious failures use the lean
    // Mean config — K-escalation shrinks nothing that helps them, so the
    // row shows recovery absorbing transient flakiness (or exhausting the
    // budget when the flakiness persists).
    let scenarios: Vec<(&str, AggregatorSpec, Option<FaultPlan>)> = vec![
        ("no faults", AggregatorSpec::Lstm, None),
        (
            "scheduled OOM at step 0",
            AggregatorSpec::Lstm,
            Some(FaultPlan {
                oom_steps: vec![0],
                ..FaultPlan::default()
            }),
        ),
        (
            "spurious alloc failures (5%)",
            AggregatorSpec::Mean,
            Some(FaultPlan {
                seed: 99,
                alloc_failure_rate: 0.05,
                ..FaultPlan::default()
            }),
        ),
        (
            "capacity jitter (75%)",
            AggregatorSpec::Lstm,
            Some(FaultPlan {
                seed: 7,
                capacity_jitter: 0.75,
                ..FaultPlan::default()
            }),
        ),
        // A poisoned loss is not a capacity problem: the numeric sentinel
        // rolls the epoch back to its snapshot and replays it at the same
        // K, and the injection (keyed to the consumed global step) does
        // not re-fire — so the run completes at the fault-free accuracy.
        (
            "NaN loss at step 1",
            AggregatorSpec::Mean,
            Some(FaultPlan {
                nan_loss_steps: vec![1],
                ..FaultPlan::default()
            }),
        ),
    ];

    let mut table = Table::new(
        "BENCH_recovery",
        &format!("checkpointed OOM recovery over {epochs} epochs (cora, SAGE)"),
        &["scenario", "faults", "retries", "rollbacks", "final K", "val acc"],
    );
    for (name, aggregator, fault_plan) in scenarios {
        let mut config = wall_config(vec![10, 25], 32, aggregator, profile);
        config.fault_plan = fault_plan;
        config.retry = RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        };
        let mut runner = Runner::new(&ds, &config, 0);
        let mut log = RecoveryLog::new();
        let mut final_k = 0usize;
        let mut failed = false;
        for epoch in 0..epochs {
            log.set_epoch(epoch);
            match runner.train_epoch_auto_recovering(&ds, StrategyKind::Betty, &mut log) {
                Ok((_, k)) => final_k = k,
                Err(e) => {
                    println!("scenario '{name}' did not survive: {e}");
                    failed = true;
                    break;
                }
            }
        }
        let val = runner.evaluate(&ds, &ds.val_idx);
        table.row(vec![
            name.to_string(),
            log.injected_faults().to_string(),
            log.oom_retries().to_string(),
            log.anomaly_rollbacks().to_string(),
            if failed {
                "—".to_string()
            } else {
                final_k.to_string()
            },
            format!("{:.1}%", val * 100.0),
        ]);
    }
    table.finish();
    println!(
        "note: every recovery replays the epoch from its checkpoint, so \
         validation accuracy matches the fault-free run wherever the retry \
         budget suffices; only the wasted (rolled-back) work differs."
    );
}

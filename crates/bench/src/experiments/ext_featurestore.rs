//! Extension exhibit: the out-of-core paged feature store.
//!
//! Betty's heterogeneous-memory story (§2.2) keeps the full feature
//! matrix in host memory and ships one micro-batch at a time to the
//! device. The paged [`betty_data::FeatureStore`] extends that ladder one
//! rung down: features live in row-range shards on disk, and training
//! gathers are served through a pinned hot-set cache whose byte budget is
//! charged to the device ledger's dedicated `feature cache` category.
//!
//! This exhibit sweeps the cache budget on the power-law
//! (ogbn-products-like) preset from a deliberately starved cache to an
//! unbounded one, against the dense in-memory baseline. Two properties
//! are hard-asserted, not just reported:
//!
//! 1. **Value identity** — every paged row carries the exact loss bits of
//!    the dense run. Paging moves bytes, never values.
//! 2. **Exact accounting** — each paged row's measured peak is the dense
//!    peak plus exactly `min(budget, total feature bytes)`, i.e. the
//!    planner's reservation and the ledger agree to the byte.
//!
//! The reported columns show the economics: a starved cache pays for its
//! misses in page-ins and exposed NVMe seconds; once the budget covers
//! the working set the hit rate saturates and the page-in column
//! collapses to the cold first touch.

use std::time::Instant;

use betty::{Runner, StrategyKind};

use crate::presets::products_3layer;
use crate::report::Table;
use crate::Profile;

/// Fixed partition count for every run in the sweep.
const K: usize = 8;

/// Aggregate measurements for `epochs` fixed-K epochs on one backend.
struct Run {
    wall: f64,
    losses: Vec<u64>,
    max_peak_bytes: usize,
    hits: u64,
    misses: u64,
    pages_in: u64,
    page_in_bytes: u64,
    page_in_sec: f64,
}

fn run_epochs(runner: &mut Runner, ds: &betty_data::Dataset, epochs: usize) -> Run {
    let mut run = Run {
        wall: 0.0,
        losses: Vec::with_capacity(epochs),
        max_peak_bytes: 0,
        hits: 0,
        misses: 0,
        pages_in: 0,
        page_in_bytes: 0,
        page_in_sec: 0.0,
    };
    let started = Instant::now();
    for _ in 0..epochs {
        let stats = runner
            .train_epoch_betty(ds, StrategyKind::Betty, K)
            .expect("bench capacity fits the paged plan");
        run.losses.push(stats.loss.to_bits());
        run.max_peak_bytes = run.max_peak_bytes.max(stats.max_peak_bytes);
        run.hits += stats.feature_hits;
        run.misses += stats.feature_misses;
        run.pages_in += stats.feature_pages_in;
        run.page_in_bytes += stats.feature_page_in_bytes;
        run.page_in_sec += stats.page_in_sec;
    }
    run.wall = started.elapsed().as_secs_f64();
    run
}

fn hit_rate(run: &Run) -> f64 {
    let total = run.hits + run.misses;
    if total == 0 {
        1.0
    } else {
        run.hits as f64 / total as f64
    }
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, config) = products_3layer(profile);
    let epochs = profile.epochs(6);
    let total_bytes = ds.features.size_bytes();
    // Shards sized so even the bench-scale graph needs dozens of pages.
    let page_rows = (ds.num_nodes() / 64).max(1);

    let mut table = Table::new(
        "BENCH_featurestore",
        "out-of-core feature store: cache budget vs epoch time and hit rate (power-law preset)",
        &[
            "store",
            "cache budget",
            "reserved KiB",
            "hit rate",
            "pages in",
            "paged KiB",
            "page-in (s)",
            "wall (s)",
            "s/epoch",
            "loss bits",
        ],
    );

    // Dense anchor: everything resident, every gather a hit, no ledger
    // reservation. This is the value- and peak-baseline the paged rows
    // are asserted against.
    let dense = run_epochs(&mut Runner::new(&ds, &config, 0), &ds, epochs);
    assert_eq!(dense.misses, 0, "the dense backend never misses");
    table.row(vec![
        "dense".to_string(),
        "-".to_string(),
        "0.0".to_string(),
        "100.0%".to_string(),
        "0".to_string(),
        "0.0".to_string(),
        "0.0000".to_string(),
        format!("{:.4}", dense.wall),
        format!("{:.4}", dense.wall / epochs as f64),
        format!("{:#018x}", dense.losses[epochs - 1]),
    ]);

    // Starved → comfortable → unbounded cache budgets.
    let sweeps = [
        ("starved", total_bytes / 16),
        ("quarter", total_bytes / 4),
        ("unbounded", usize::MAX),
    ];
    for (label, budget) in sweeps {
        let dir = std::env::temp_dir().join(format!(
            "betty-bench-featurestore-{}-{label}",
            std::process::id()
        ));
        let mut paged_ds = ds.clone();
        paged_ds.features = paged_ds
            .features
            .to_paged(&dir, page_rows, budget)
            .expect("spilling bench features to the temp dir");
        let reserved = paged_ds.features.cache_reservation_bytes();
        assert_eq!(
            reserved,
            budget.min(total_bytes),
            "the reservation is min(budget, total feature bytes)"
        );
        let paged = run_epochs(&mut Runner::new(&paged_ds, &config, 0), &paged_ds, epochs);
        assert_eq!(
            dense.losses, paged.losses,
            "cache budget '{label}' changed the training math"
        );
        assert_eq!(
            paged.max_peak_bytes,
            dense.max_peak_bytes + reserved,
            "cache budget '{label}' must shift the peak by exactly its reservation"
        );
        table.row(vec![
            "paged".to_string(),
            label.to_string(),
            format!("{:.1}", reserved as f64 / 1024.0),
            format!("{:.1}%", hit_rate(&paged) * 100.0),
            paged.pages_in.to_string(),
            format!("{:.1}", paged.page_in_bytes as f64 / 1024.0),
            format!("{:.4}", paged.page_in_sec),
            format!("{:.4}", paged.wall),
            format!("{:.4}", paged.wall / epochs as f64),
            format!("{:#018x}", paged.losses[epochs - 1]),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.finish();
    println!(
        "note: every paged row carries the dense row's loss bits and a peak of \
         exactly dense + min(budget, {total_bytes} feature bytes) — both are \
         hard-asserted, so a silent accounting or gather regression fails the \
         exhibit instead of skewing it. 'page-in (s)' is simulated NVMe time \
         paid on the critical path; prefetch-hidden page-ins land in the \
         prefetch overlap, which is why the unbounded row's column shows only \
         the cold first touch."
    );
}

//! Extension exhibit: end-to-end storage fault tolerance.
//!
//! The paged feature store (see `ext_featurestore`) moves the feature
//! matrix onto disk — which makes disk failures part of the training
//! fault model. This exhibit arms the seedable storage fault injector
//! against the paged store and sweeps the transient-I/O failure rate
//! against the XOR-parity group width, with a scheduled single-byte
//! shard corruption landing mid-run in every chaos row.
//!
//! One property is hard-asserted per row, not just reported: **losses
//! are bit-identical to the fault-free dense run**. Transient read
//! errors are retried with seeded, *accounted* (never slept) jittered
//! backoff; a corrupt shard is reconstructed bit-identically from its
//! parity group and re-persisted. Neither may perturb a single loss
//! bit — the chaos shows up only in the I/O columns (`retries`,
//! `repaired`, `repair (s)`).
//!
//! The no-parity corruption row demonstrates the failure mode parity
//! exists to remove: the same scheduled corruption that a parity row
//! absorbs silently becomes a structured storage error that aborts the
//! run (asserted, and reported as `aborted` in the table).

use std::time::Instant;

use betty::{Runner, StrategyKind, TrainError};
use betty_device::FaultPlan;

use crate::presets::products_3layer;
use crate::report::Table;
use crate::Profile;

/// Fixed partition count for every run in the sweep.
const K: usize = 8;

/// Shard scheduled for mid-run corruption, and the epoch it fires before.
const CORRUPT: (usize, usize) = (1, 1);

/// Aggregate measurements for `epochs` fixed-K epochs.
struct Run {
    wall: f64,
    losses: Vec<u64>,
    io_retries: u64,
    shards_repaired: u64,
    repair_sec: f64,
    page_in_sec: f64,
}

fn run_epochs(runner: &mut Runner, ds: &betty_data::Dataset, epochs: usize) -> Run {
    let mut run = Run {
        wall: 0.0,
        losses: Vec::with_capacity(epochs),
        io_retries: 0,
        shards_repaired: 0,
        repair_sec: 0.0,
        page_in_sec: 0.0,
    };
    let started = Instant::now();
    for _ in 0..epochs {
        let stats = runner
            .train_epoch_betty(ds, StrategyKind::Betty, K)
            .expect("bench capacity fits the paged plan");
        run.losses.push(stats.loss.to_bits());
        run.io_retries += stats.io_retries;
        run.shards_repaired += stats.shards_repaired;
        run.repair_sec += stats.repair_sec;
        run.page_in_sec += stats.page_in_sec;
    }
    run.wall = started.elapsed().as_secs_f64();
    run
}

/// A storage fault plan: transient failures + stall jitter at `rate`,
/// plus the scheduled corruption when `corrupt` is set.
fn chaos_plan(rate: f64, corrupt: bool) -> FaultPlan {
    FaultPlan {
        seed: 7,
        io_failure_rate: rate,
        io_stall_rate: rate,
        io_stall_sec: 0.002,
        shard_corrupt: if corrupt { vec![CORRUPT] } else { vec![] },
        ..FaultPlan::default()
    }
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, config) = products_3layer(profile);
    let epochs = profile.epochs(4);
    let page_rows = (ds.num_nodes() / 64).max(1);

    let mut table = Table::new(
        "BENCH_storage_chaos",
        "storage chaos: I/O fault rate x parity width vs repairs (losses bit-identical, hard-asserted)",
        &[
            "store",
            "fault rate",
            "parity",
            "corrupt",
            "retries",
            "repaired",
            "repair (s)",
            "page-in (s)",
            "wall (s)",
            "loss bits",
        ],
    );

    // Dense anchor: no disk, no faults — the loss-bits baseline every
    // chaos row is asserted against.
    let dense = run_epochs(&mut Runner::new(&ds, &config, 0), &ds, epochs);
    table.row(vec![
        "dense".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0.0000".to_string(),
        "0.0000".to_string(),
        format!("{:.4}", dense.wall),
        format!("{:#018x}", dense.losses[epochs - 1]),
    ]);

    // (label, io fault rate, parity width, scheduled corruption).
    let sweeps: [(&str, f64, usize, bool); 6] = [
        ("quiet", 0.0, 0, false),
        ("faults", 0.2, 0, false),
        ("faults", 0.2, 2, true),
        ("faults", 0.2, 4, true),
        ("storm", 0.5, 2, true),
        ("storm", 0.5, 4, true),
    ];
    for (label, rate, parity, corrupt) in sweeps {
        let dir = std::env::temp_dir().join(format!(
            "betty-bench-storage-chaos-{}-{label}-r{}-p{parity}",
            std::process::id(),
            (rate * 10.0) as usize,
        ));
        let mut paged_ds = ds.clone();
        paged_ds.features = paged_ds
            .features
            .to_paged_with_parity(&dir, page_rows, usize::MAX, parity)
            .expect("spilling bench features to the temp dir");
        let mut chaos_config = config.clone();
        if rate > 0.0 || corrupt {
            chaos_config.fault_plan = Some(chaos_plan(rate, corrupt));
            // Backoff is accounted, never slept, so a deep retry budget
            // costs nothing: at a 0.5 per-read failure rate the sweep
            // performs thousands of reads, and the budget must make
            // exhaustion (p = rate^(budget+1) per read) negligible.
            chaos_config.retry.max_io_retries = 25;
        }
        let paged = run_epochs(
            &mut Runner::new(&paged_ds, &chaos_config, 0),
            &paged_ds,
            epochs,
        );
        assert_eq!(
            dense.losses, paged.losses,
            "storage chaos (rate {rate}, parity {parity}) changed the training math"
        );
        if rate > 0.0 {
            assert!(
                paged.io_retries > 0,
                "a {rate} failure rate must force at least one retry"
            );
        }
        if corrupt {
            assert!(
                paged.shards_repaired >= 1,
                "the scheduled corruption (parity {parity}) must be repaired mid-run"
            );
        }
        table.row(vec![
            "paged".to_string(),
            format!("{rate:.1}"),
            if parity == 0 { "-".into() } else { parity.to_string() },
            if corrupt { "1:1".into() } else { "-".into() },
            paged.io_retries.to_string(),
            paged.shards_repaired.to_string(),
            format!("{:.4}", paged.repair_sec),
            format!("{:.4}", paged.page_in_sec),
            format!("{:.4}", paged.wall),
            format!("{:#018x}", paged.losses[epochs - 1]),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Negative control: the same scheduled corruption with no parity
    // sidecar is *unrepairable*, and must surface as a structured
    // storage error instead of training on damaged bytes.
    let dir = std::env::temp_dir().join(format!(
        "betty-bench-storage-chaos-{}-noparity",
        std::process::id()
    ));
    let mut paged_ds = ds.clone();
    paged_ds.features = paged_ds
        .features
        .to_paged_with_parity(&dir, page_rows, usize::MAX, 0)
        .expect("spilling bench features to the temp dir");
    let mut bare_config = config.clone();
    bare_config.fault_plan = Some(chaos_plan(0.0, true));
    let mut runner = Runner::new(&paged_ds, &bare_config, 0);
    let mut aborted = false;
    for _ in 0..epochs {
        match runner.train_epoch_betty(&paged_ds, StrategyKind::Betty, K) {
            Ok(_) => {}
            Err(TrainError::Storage { shard, .. }) => {
                assert_eq!(shard, CORRUPT.0, "the corrupted shard is named in the error");
                aborted = true;
                break;
            }
            Err(other) => panic!("expected a storage error, got {other}"),
        }
    }
    assert!(
        aborted,
        "corruption without parity must abort with a structured storage error"
    );
    table.row(vec![
        "paged".to_string(),
        "0.0".to_string(),
        "-".to_string(),
        "1:1".to_string(),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
        "-".to_string(),
        "aborted".to_string(),
        "storage error".to_string(),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    table.finish();
    println!(
        "note: every completed paged row carries the dense row's loss bits — \
         hard-asserted per row, so a fault-injection path that leaks into the \
         training math fails the exhibit instead of skewing it. Retried reads \
         pay seeded jittered backoff and repairs pay reconstruction transfer \
         time, but both are *accounted* into 'repair (s)', never slept and \
         never mixed into the deterministic stats. The final row shows the \
         counterfactual: the same corruption without a parity sidecar is a \
         structured storage error, not silent damage."
    );
}

//! Extension exhibit: the deterministic parallel batch-preparation
//! pipeline.
//!
//! Three optimizations share the `betty-runtime` thread pool, and this
//! exhibit measures each one end to end:
//!
//! 1. **Sharded REG construction** — the shared-neighbor / dependency REG
//!    build (`betty-graph::spgemm`) shards destination rows across worker
//!    threads with per-worker sparse accumulators; the merged CSR is
//!    bit-identical for every thread count, so the serial-vs-parallel rows
//!    below are pure wall-clock comparisons of the same output.
//! 2. **Parallel micro-batch materialization** — all `K` restrictions of
//!    the sampled batch run concurrently inside planning.
//! 3. **Double-buffered transfer prefetch** — while micro-batch `i`
//!    computes, micro-batch `i + 1`'s host→device transfer is staged (and
//!    charged against the device budget), hiding link time behind compute.
//!
//! Speedup columns depend on real cores: on a single-core host the
//! parallel REG rows hover near 1.0×, while the prefetch rows still show
//! overlap because transfer time is simulated. The detected core count is
//! reported with every row so CI artifacts are self-describing.

use std::time::Instant;

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_graph::dependency_reg_with_threads;
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::Table;
use crate::Profile;

/// Median wall seconds over `reps` runs of `f`.
fn time_sec<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        out = Some(f());
        times.push(started.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out.expect("reps >= 1"))
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = match profile {
        Profile::Quick => 2,
        Profile::Full => 3,
    };

    let mut table = Table::new(
        "BENCH_pipeline",
        "parallel batch-preparation pipeline (REG build + prefetched epochs)",
        &["section", "setting", "time (s)", "baseline (s)", "speedup", "cores"],
    );

    // --- Sharded REG construction, serial vs forced thread counts. ---
    let reg_ds = bench_dataset("reddit", profile);
    let reg_config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        ..ExperimentConfig::default()
    };
    let batch = Runner::new(&reg_ds, &reg_config, 0).sample_full_batch(&reg_ds);
    let hub_cap = 32;
    let (serial_sec, serial_reg) =
        time_sec(reps, || dependency_reg_with_threads(&batch, hub_cap, 1));
    for threads in [2usize, 4, 8] {
        let (par_sec, par_reg) =
            time_sec(reps, || dependency_reg_with_threads(&batch, hub_cap, threads));
        assert_eq!(
            serial_reg, par_reg,
            "REG must be bit-identical at {threads} threads"
        );
        table.row(vec![
            "REG build".to_string(),
            format!("{threads} threads"),
            format!("{par_sec:.4}"),
            format!("{serial_sec:.4}"),
            format!("{:.2}x", serial_sec / par_sec.max(1e-12)),
            cores.to_string(),
        ]);
    }

    // --- End-to-end epochs: prefetch on vs off at K ∈ {2, 4, 8}. ---
    let ds = bench_dataset("ogbn-arxiv", profile);
    let epochs = profile.epochs(4);
    for k in [2usize, 4, 8] {
        let mut timings = [0.0f64; 2]; // [off, on]
        let mut losses = [0u64; 2];
        let mut overlap = 0.0f64;
        for (slot, prefetch) in [(0usize, false), (1usize, true)] {
            let config = ExperimentConfig {
                fanouts: vec![5, 10],
                hidden_dim: 32,
                aggregator: AggregatorSpec::Mean,
                dropout: 0.0,
                prefetch,
                ..ExperimentConfig::default()
            };
            let mut runner = Runner::new(&ds, &config, 0);
            let mut total = 0.0;
            let mut last_loss = 0.0f64;
            for _ in 0..epochs {
                let stats = runner
                    .train_epoch_betty(&ds, StrategyKind::Betty, k)
                    .expect("default capacity fits the bench batch");
                total += stats.total_sec();
                last_loss = stats.loss;
                if prefetch {
                    overlap += stats.prefetch_overlap_sec;
                }
            }
            timings[slot] = total;
            losses[slot] = last_loss.to_bits();
        }
        assert_eq!(
            losses[0], losses[1],
            "prefetch must not change the training math at K={k}"
        );
        table.row(vec![
            format!("epoch K={k}"),
            "prefetch on".to_string(),
            format!("{:.4}", timings[1]),
            format!("{:.4}", timings[0]),
            format!("{:.2}x", timings[0] / timings[1].max(1e-12)),
            cores.to_string(),
        ]);
        println!(
            "K={k}: {epochs} epochs, {:.4}s transfer time hidden behind compute",
            overlap
        );
    }

    table.finish();
    println!(
        "note: REG rows compare identical (bit-equal) outputs; their speedup \
         tracks the physical core count ({cores} detected here). Prefetch rows \
         overlap simulated transfer with measured compute, so they improve \
         even on one core."
    );
}

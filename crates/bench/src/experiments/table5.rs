//! Table 5: training accuracy parity — full-batch ("DGL") vs Betty
//! micro-batch training, five datasets × {GraphSAGE, GAT}, mean ± std over
//! seeds. (The paper also skips GAT on ogbn-products.)

use betty::{ExperimentConfig, ModelKind, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_datasets;
use crate::report::Table;
use crate::Profile;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn train_to_accuracy(
    ds: &betty_data::Dataset,
    config: &ExperimentConfig,
    seed: u64,
    epochs: usize,
    k: usize,
) -> f64 {
    let mut runner = Runner::new(ds, config, seed);
    for _ in 0..epochs {
        runner
            .train_epoch_betty(ds, StrategyKind::Betty, k)
            .expect("24 GiB is ample at bench scale");
    }
    runner.evaluate(ds, &ds.test_idx) * 100.0
}

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let seeds: &[u64] = match profile {
        Profile::Quick => &[0],
        Profile::Full => &[0, 1, 2],
    };
    let epochs = profile.epochs(40);
    let mut table = Table::new(
        "table5",
        "test accuracy (%): full-batch vs Betty micro-batch (K = 4)",
        &["dataset", "model", "full-batch", "betty"],
    );
    for ds in bench_datasets(profile) {
        for model in [ModelKind::GraphSage, ModelKind::Gat] {
            if model == ModelKind::Gat && ds.name.starts_with("ogbn-products") {
                // GAT cannot use ogbn-products in the paper either.
                table.row(vec![
                    ds.name.clone(),
                    "GAT".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let config = ExperimentConfig {
                fanouts: vec![10, 25],
                hidden_dim: 32,
                aggregator: AggregatorSpec::Mean,
                model,
                num_heads: 4,
                dropout: 0.0,
                learning_rate: if model == ModelKind::Gat { 2e-2 } else { 1e-2 },
                capacity_bytes: gib(24),
                ..ExperimentConfig::default()
            };
            let (mut full, mut betty) = (Vec::new(), Vec::new());
            for &seed in seeds {
                full.push(train_to_accuracy(&ds, &config, seed, epochs, 1));
                betty.push(train_to_accuracy(&ds, &config, seed, epochs, 4));
            }
            let (fm, fs) = mean_std(&full);
            let (bm, bs) = mean_std(&betty);
            table.row(vec![
                ds.name.clone(),
                match model {
                    ModelKind::GraphSage => "SAGE".into(),
                    ModelKind::Gat => "GAT".into(),
                    other => format!("{other:?}"),
                },
                format!("{fm:.2} ± {fs:.2}"),
                format!("{bm:.2} ± {bs:.2}"),
            ]);
        }
    }
    table.finish();
}

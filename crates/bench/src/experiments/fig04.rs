//! Figure 4: full-batch vs small-mini-batch training divergence.
//!
//! The paper splits ogbn-products' 196,615-node full batch into 16
//! mini-batches and shows the loss fluctuates and test accuracy degrades
//! versus full-batch training with identical hyperparameters — the reason
//! batch-level partitioning (not batch shrinking) is the right fix.

use betty::{ExperimentConfig, Runner};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::{pct, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-products", profile);
    let config = ExperimentConfig {
        fanouts: vec![10, 25],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        learning_rate: 2e-2,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let epochs = profile.epochs(30);
    let mut table = Table::new(
        "fig04",
        "full-batch vs 16 mini-batches: loss and test accuracy per epoch",
        &["epoch", "full loss", "full acc", "mini loss", "mini acc"],
    );
    let mut full = Runner::new(&ds, &config, 7);
    let mut mini = Runner::new(&ds, &config, 7);
    for epoch in 0..epochs {
        let f = full
            .train_epoch_betty(&ds, betty::StrategyKind::Betty, 1)
            .expect("24 GiB is ample at bench scale");
        let m = mini.train_epoch_mini(&ds, 16).expect("ample capacity");
        let fa = full.evaluate(&ds, &ds.test_idx);
        let ma = mini.evaluate(&ds, &ds.test_idx);
        table.row(vec![
            epoch.to_string(),
            format!("{:.4}", f.loss),
            pct(fa),
            format!("{:.4}", m.loss),
            pct(ma),
        ]);
    }
    table.finish();
    println!(
        "note: with the same learning rate, the mini-batch run takes 16x more \
         optimizer steps per epoch — its different trajectory is the §3.3 \
         effective-batch-size effect Betty avoids."
    );
}

//! Figure 10: Betty breaks the memory wall of Figure 2.
//!
//! Every Fig. 2 configuration is re-run with memory-aware batch-level
//! partitioning: the planner grows K until the largest estimated
//! micro-batch fits, then one training epoch verifies the *measured* peak
//! stays under capacity.

use betty::Runner;
use betty::StrategyKind;

use crate::experiments::fig02;
use crate::presets::{bench_dataset, wall_capacity};
use crate::report::{mib, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-products", profile);
    let ds_wide = fig02::wide_products(profile);
    let capacity = wall_capacity(profile);
    let mut table = Table::new(
        "fig10",
        &format!(
            "breaking the wall: memory-aware K per Fig. 2 config (capacity {} MiB)",
            mib(capacity)
        ),
        &["panel", "setting", "full MiB", "K", "measured MiB", "fits?"],
    );
    for (panel, setting, config, wide) in fig02::sweep(profile) {
        let data = if wide { &ds_wide } else { &ds };
        let mut runner = Runner::new(data, &config, 0);
        let batch = runner.sample_full_batch(data);
        let full_peak = runner
            .plan_fixed(&batch, StrategyKind::Betty, 1)
            .max_estimated_peak();
        match runner.train_epoch_auto(data, StrategyKind::Betty) {
            Ok((stats, k)) => table.row(vec![
                panel.to_string(),
                setting,
                mib(full_peak),
                k.to_string(),
                mib(stats.max_peak_bytes),
                if stats.max_peak_bytes <= capacity {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]),
            Err(_) => table.row(vec![
                panel.to_string(),
                setting,
                mib(full_peak),
                "-".into(),
                "-".into(),
                "no fit".into(),
            ]),
        }
    }
    table.finish();
}

//! Figure 13: convergence curves of full-batch training vs micro-batch
//! training with 2/4/8 micro-batches coincide (3-layer GraphSAGE + Mean on
//! ogbn-arxiv).

use betty::{ExperimentConfig, Runner, StrategyKind};
use betty_device::gib;
use betty_nn::AggregatorSpec;

use crate::presets::bench_dataset;
use crate::report::{pct, Table};
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let ds = bench_dataset("ogbn-arxiv", profile);
    let config = ExperimentConfig {
        fanouts: vec![10, 15, 20],
        hidden_dim: 32,
        aggregator: AggregatorSpec::Mean,
        dropout: 0.0,
        learning_rate: 1e-2,
        capacity_bytes: gib(24),
        ..ExperimentConfig::default()
    };
    let epochs = profile.epochs(40);
    let ks = [1usize, 2, 4, 8];
    let mut runners: Vec<Runner> = ks.iter().map(|_| Runner::new(&ds, &config, 5)).collect();
    let mut table = Table::new(
        "fig13",
        "test accuracy per epoch: full batch vs 2/4/8 micro-batches",
        &["epoch", "full", "K=2", "K=4", "K=8"],
    );
    for epoch in 0..epochs {
        let mut cells = vec![epoch.to_string()];
        for (runner, &k) in runners.iter_mut().zip(&ks) {
            runner
                .train_epoch_betty(&ds, StrategyKind::Betty, k)
                .expect("24 GiB is ample");
            cells.push(pct(runner.evaluate(&ds, &ds.test_idx)));
        }
        table.row(cells);
    }
    table.finish();
    println!(
        "note: identical seeds + gradient accumulation ⇒ the four curves \
         should be indistinguishable (micro-batching is mathematically \
         equivalent to full-batch training)."
    );
}

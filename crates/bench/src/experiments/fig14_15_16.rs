//! Figures 14–16: the products-like 3-layer GraphSAGE sweep.
//!
//! One pass over K ∈ {1..64} × four strategies measures everything the
//! three figures report: epoch compute time + simulated data-movement time
//! (Fig. 14), computation efficiency — total nodes / epoch time —
//! (Fig. 15), and input-node redundancy (Fig. 16).

use betty::{Runner, StrategyKind};
use betty_partition::input_redundancy;

use crate::presets::products_3layer;
use crate::report::Table;
use crate::Profile;

/// Runs the exhibit.
pub fn run(profile: Profile) {
    let (ds, mut config) = products_3layer(profile);
    config.capacity_bytes = usize::MAX;
    let ks: &[usize] = match profile {
        Profile::Quick => &[1, 4, 16],
        Profile::Full => &[1, 2, 4, 8, 16, 32, 64],
    };
    let mut t14 = Table::new(
        "fig14",
        "epoch time and data-movement time per strategy (3-layer SAGE Mean)",
        &["K", "strategy", "train ms", "transfer ms", "total ms"],
    );
    let mut t15 = Table::new(
        "fig15",
        "computation efficiency: total src nodes / epoch second",
        &["K", "strategy", "total nodes", "efficiency"],
    );
    let mut t16 = Table::new(
        "fig16",
        "input-node redundancy per strategy",
        &["K", "strategy", "input nodes", "redundant", "ratio"],
    );
    let mut runner = Runner::new(&ds, &config, 0);
    let batch = runner.sample_full_batch(&ds);
    for &k in ks {
        for strategy in StrategyKind::ALL {
            if k == 1 && strategy != StrategyKind::Betty {
                continue; // K = 1 is strategy-independent
            }
            let plan = runner.plan_fixed(&batch, strategy, k);
            let redundancy = input_redundancy(&plan.micro_batches);
            // Repeat and keep the fastest epoch: wall-clock noise at
            // millisecond scale would otherwise drown the ordering.
            let mut stats = runner
                .train_micro_batches(&ds, &plan.micro_batches)
                .expect("unbounded device");
            for _ in 0..2 {
                let again = runner
                    .train_micro_batches(&ds, &plan.micro_batches)
                    .expect("unbounded device");
                if again.compute_sec < stats.compute_sec {
                    stats = again;
                }
            }
            let name = if k == 1 { "(full)" } else { strategy.name() };
            t14.row(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.2}", stats.compute_sec * 1e3),
                format!("{:.3}", stats.transfer_sec * 1e3),
                format!("{:.2}", stats.total_sec() * 1e3),
            ]);
            t15.row(vec![
                k.to_string(),
                name.to_string(),
                stats.total_src_nodes.to_string(),
                format!("{:.0}", stats.computation_efficiency()),
            ]);
            t16.row(vec![
                k.to_string(),
                name.to_string(),
                redundancy.total_input_nodes.to_string(),
                redundancy.redundant_nodes().to_string(),
                format!("{:.3}", redundancy.redundancy_ratio()),
            ]);
        }
    }
    t14.finish();
    t15.finish();
    t16.finish();
    println!(
        "note: Betty should show the lowest redundancy at every K (Fig. 16), \
         hence the lowest epoch time among partitioners (Fig. 14) and a \
         computation efficiency that stays flat as K grows (Fig. 15)."
    );
}
